//! Analyzer-vs-ground-truth validation: the footprints the pipeline
//! *measures* must contain exactly what the generator *planned* — the
//! static analysis is honest, not a pass-through of generator data.

use std::collections::BTreeSet;

use apistudy::analysis::BinaryAnalysis;
use apistudy::catalog::{wrappers::wrapped_syscalls, Api, Catalog};
use apistudy::core::StudyData;
use apistudy::corpus::{CalibrationSpec, PackageFile, Scale, SynthRepo};
use apistudy::elf::ElfFile;

fn repo() -> SynthRepo {
    SynthRepo::new(
        Scale { packages: 300, installations: 50_000 },
        CalibrationSpec::default(),
        77,
    )
}

/// The planned per-package syscall ground truth: direct syscalls, wrapped
/// libc calls, vectored parents, plus the ubiquitous startup/ld.so sets
/// for dynamically linked packages.
fn expected_syscalls(
    catalog: &Catalog,
    repo: &SynthRepo,
    pkg_index: usize,
) -> BTreeSet<u32> {
    let plan = &repo.plan.packages[pkg_index];
    let nr = |name: &str| catalog.syscalls.number_of(name).unwrap();
    let mut out = BTreeSet::new();
    let mut any_dynamic = false;
    // A libc call contributes its own wrapped syscalls plus those of the
    // functions it calls internally (the analyzer follows libc's internal
    // call graph), transitively.
    let add_call = |out: &mut BTreeSet<u32>, call: &str| {
        let mut stack = vec![call.to_owned()];
        let mut seen = BTreeSet::new();
        while let Some(f) = stack.pop() {
            if !seen.insert(f.clone()) {
                continue;
            }
            for s in wrapped_syscalls(&f) {
                out.insert(nr(s));
            }
            for &(from, to) in apistudy::corpus::libc_gen::INTERNAL_CALLS {
                if from == f {
                    stack.push(to.to_owned());
                }
            }
        }
    };
    for e in &plan.execs {
        out.extend(e.direct_syscalls.iter().copied());
        if !e.is_static {
            any_dynamic = true;
            for call in &e.libc_calls {
                add_call(&mut out, call);
            }
            if !e.ioctl_codes.is_empty() {
                out.insert(nr("ioctl"));
            }
            if !e.fcntl_codes.is_empty() {
                out.insert(nr("fcntl"));
            }
            if !e.prctl_codes.is_empty() {
                out.insert(nr("prctl"));
            }
        }
    }
    for l in &plan.libs {
        for x in &l.exports {
            out.extend(x.direct_syscalls.iter().copied());
            for call in &x.libc_calls {
                add_call(&mut out, call);
            }
        }
    }
    if any_dynamic {
        for call in wrapped_syscalls("__libc_start_main") {
            out.insert(nr(call));
        }
        for call in wrapped_syscalls("__stack_chk_fail") {
            out.insert(nr(call));
        }
    }
    out
}

#[test]
fn measured_footprints_cover_planned_facts() {
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let catalog = Catalog::linux_3_19();
    let mut checked = 0;
    for (i, plan) in repo.plan.packages.iter().enumerate() {
        // Skip script-bearing packages: interpreter inheritance adds the
        // interpreter's footprint on top of the package's own facts.
        if !plan.scripts.is_empty() {
            continue;
        }
        let record = data.package(&plan.name).expect("record");
        let measured: BTreeSet<u32> = record.footprint.syscalls().collect();
        let expected = expected_syscalls(&catalog, &repo, i);
        for nr in &expected {
            assert!(
                measured.contains(nr),
                "{}: planned syscall {} ({:?}) missing from measured footprint",
                plan.name,
                nr,
                catalog.syscalls.by_number(*nr).map(|d| d.name)
            );
        }
        checked += 1;
    }
    assert!(checked > 15, "only {checked} packages were script-free");
}

#[test]
fn measured_footprints_add_nothing_beyond_planned_facts() {
    // For script-free packages the measured set must be a subset of the
    // planned set too: the analyzer must not invent usage.
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let catalog = Catalog::linux_3_19();
    let mut checked = 0;
    for (i, plan) in repo.plan.packages.iter().enumerate() {
        if !plan.scripts.is_empty() || plan.name == "libc6" {
            continue;
        }
        let record = data.package(&plan.name).expect("record");
        let measured: BTreeSet<u32> = record.footprint.syscalls().collect();
        let expected = expected_syscalls(&catalog, &repo, i);
        for nr in &measured {
            assert!(
                expected.contains(nr),
                "{}: analyzer invented syscall {} ({:?})",
                plan.name,
                nr,
                catalog.syscalls.by_number(*nr).map(|d| d.name)
            );
        }
        checked += 1;
    }
    assert!(checked > 15);
}

#[test]
fn planned_vectored_codes_are_recovered() {
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let catalog = Catalog::linux_3_19();
    let mut ioctl_checked = 0;
    for plan in &repo.plan.packages {
        let record = data.package(&plan.name).expect("record");
        for e in &plan.execs {
            for &(code, _) in &e.ioctl_codes {
                if let Some(api) = catalog.ioctl_by_code(code) {
                    assert!(
                        record.footprint.contains(api),
                        "{}: planned ioctl {code:#x} missing",
                        plan.name
                    );
                    ioctl_checked += 1;
                }
            }
            for &(code, _) in &e.prctl_codes {
                if let Some(api) = catalog.prctl_by_code(code) {
                    assert!(
                        record.footprint.contains(api),
                        "{}: planned prctl {code} missing",
                        plan.name
                    );
                }
            }
        }
    }
    assert!(ioctl_checked > 50, "only {ioctl_checked} ioctl codes checked");
}

#[test]
fn planned_paths_are_recovered() {
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let catalog = Catalog::linux_3_19();
    let mut checked = 0;
    for plan in &repo.plan.packages {
        let record = data.package(&plan.name).expect("record");
        for e in &plan.execs {
            for path in &e.paths {
                if let Some(api) = catalog.pseudo_file(path) {
                    assert!(
                        record.footprint.contains(api),
                        "{}: planned path {path} missing",
                        plan.name
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 30, "only {checked} paths checked");
}

#[test]
fn every_binary_in_the_corpus_analyzes_cleanly() {
    let repo = repo();
    for i in 0..repo.package_count() {
        let pkg = repo.package(i);
        for f in &pkg.files {
            if let PackageFile::Elf { name, bytes } = f {
                let elf = ElfFile::parse(bytes)
                    .unwrap_or_else(|e| panic!("{}: {name}: {e}", pkg.name));
                BinaryAnalysis::analyze(&elf)
                    .unwrap_or_else(|e| panic!("{}: {name}: {e}", pkg.name));
            }
        }
    }
}

#[test]
fn libc_symbol_usage_matches_planned_imports() {
    // Package libc-symbol footprints must include every planned libc call.
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let catalog = Catalog::linux_3_19();
    let mut checked = 0;
    for plan in &repo.plan.packages {
        let record = data.package(&plan.name).expect("record");
        for e in &plan.execs {
            if e.is_static {
                continue;
            }
            for call in &e.libc_calls {
                if let Some(id) = catalog.libc.id_of(call) {
                    assert!(
                        record.footprint.contains(Api::LibcSymbol(id)),
                        "{}: planned libc call {call} missing",
                        plan.name
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 500, "only {checked} libc calls checked");
}
