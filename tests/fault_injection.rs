//! Fault-isolation contract: a corpus with deterministically injected
//! corruption must be measured, not aborted — every corrupt binary
//! quarantined and accounted for, every unaffected package bit-identical
//! to the clean run, and the degradation curve monotone in the corruption
//! rate.

use std::collections::HashSet;

use apistudy::analysis::AnalysisOptions;
use apistudy::core::{
    corruption_sweep, corruption_sweep_with, AnalysisCache, CacheMode, StudyData,
};
use apistudy::corpus::{CalibrationSpec, FaultPlan, Scale, SynthRepo};

const FAULT_SEED: u64 = 0x5EED;

fn repo() -> SynthRepo {
    SynthRepo::new(
        Scale { packages: 150, installations: 50_000 },
        CalibrationSpec::default(),
        0xBEEF,
    )
}

#[test]
fn corruption_at_5_percent_quarantines_exactly_the_injected_set() {
    let repo = repo();
    let clean = StudyData::from_synth(&repo);
    assert!(clean.diagnostics.is_clean(), "pristine corpus must run clean");

    let plan = FaultPlan::new(FAULT_SEED, 0.05);
    let faulted =
        StudyData::from_synth_faulted(&repo, AnalysisOptions::default(), &plan);
    let diag = &faulted.diagnostics;
    assert!(!diag.injected.is_empty(), "5% of ~150 packages must inject");
    assert_eq!(
        diag.quarantined_packages, 0,
        "corrupt binaries must not take whole packages down"
    );

    // Every fatal injection is quarantined as a classified skip, keyed by
    // (package name, file name) against the injection ledger...
    let pkg_name = |idx: usize| repo.plan.packages[idx].name.as_str();
    let fatal: HashSet<(String, String)> = diag
        .injected
        .iter()
        .filter(|r| r.fatal)
        .map(|r| (pkg_name(r.package_index).to_owned(), r.file.clone()))
        .collect();
    let skipped: HashSet<(String, String)> = diag
        .skipped
        .iter()
        .map(|s| (s.package.clone(), s.file.clone()))
        .collect();
    assert!(!fatal.is_empty(), "the mix of kinds must include fatal ones");
    for key in &fatal {
        assert!(skipped.contains(key), "injected-corrupt {key:?} not skipped");
    }
    // ...and nothing else was skipped: the rest of the corpus is pristine.
    for key in &skipped {
        assert!(fatal.contains(key), "unexpected skip {key:?}");
    }
    // Every skip is classified under the error taxonomy (corrupt bytes
    // fail with structured errors, not panics).
    for s in &diag.skipped {
        assert!(s.kind.is_some(), "unclassified skip: {s:?}");
    }
    assert_eq!(diag.panics_contained, 0, "no analysis panics expected");

    // Packages shipping a fatal injection are flagged, and their skip
    // counters match the ledger.
    for r in diag.injected.iter().filter(|r| r.fatal) {
        let rec = faulted.package(pkg_name(r.package_index)).unwrap();
        assert!(rec.partial_footprint, "{} not flagged partial", rec.name);
        assert!(rec.skipped_binaries > 0);
    }
}

#[test]
fn unaffected_packages_are_bit_identical_to_the_clean_run() {
    let repo = repo();
    let clean = StudyData::from_synth(&repo);
    let plan = FaultPlan::new(FAULT_SEED, 0.05);
    let faulted =
        StudyData::from_synth_faulted(&repo, AnalysisOptions::default(), &plan);

    // Packages that received a *fatal* injection, per ground truth.
    let fatally_injected: HashSet<&str> = faulted
        .diagnostics
        .injected
        .iter()
        .filter(|r| r.fatal)
        .map(|r| repo.plan.packages[r.package_index].name.as_str())
        .collect();

    let mut compared = 0;
    for (clean_rec, faulted_rec) in clean.packages.iter().zip(&faulted.packages) {
        assert_eq!(clean_rec.name, faulted_rec.name);
        if faulted_rec.partial_footprint
            || faulted_rec.skipped_binaries > 0
            || fatally_injected.contains(faulted_rec.name.as_str())
        {
            continue;
        }
        // Unaffected (including packages whose only injection was the
        // survivable dependency cycle): metrics must be bit-identical.
        assert_eq!(
            clean_rec.footprint, faulted_rec.footprint,
            "{} footprint drifted without any recorded fault",
            clean_rec.name
        );
        assert_eq!(clean_rec.file_counts, faulted_rec.file_counts);
        assert_eq!(
            clean_rec.unresolved_syscall_sites,
            faulted_rec.unresolved_syscall_sites
        );
        compared += 1;
    }
    assert!(
        compared >= 100,
        "only {compared}/150 packages unaffected at a 5% rate"
    );
}

#[test]
fn rate_zero_is_exactly_the_clean_run_and_reruns_are_deterministic() {
    let repo = repo();
    let clean = StudyData::from_synth(&repo);
    let zero = StudyData::from_synth_faulted(
        &repo,
        AnalysisOptions::default(),
        &FaultPlan::new(FAULT_SEED, 0.0),
    );
    assert!(zero.diagnostics.is_clean());
    for (a, b) in clean.packages.iter().zip(&zero.packages) {
        assert_eq!(a.footprint, b.footprint, "{}", a.name);
        assert!(!b.partial_footprint);
    }

    let plan = FaultPlan::new(FAULT_SEED, 0.05);
    let run1 =
        StudyData::from_synth_faulted(&repo, AnalysisOptions::default(), &plan);
    let run2 =
        StudyData::from_synth_faulted(&repo, AnalysisOptions::default(), &plan);
    assert_eq!(run1.diagnostics.injected, run2.diagnostics.injected);
    assert_eq!(
        run1.diagnostics.skipped.len(),
        run2.diagnostics.skipped.len()
    );
    for (a, b) in run1.packages.iter().zip(&run2.packages) {
        assert_eq!(a.footprint, b.footprint, "{}", a.name);
        assert_eq!(a.partial_footprint, b.partial_footprint);
        assert_eq!(a.skipped_binaries, b.skipped_binaries);
    }
}

#[test]
fn degradation_sweep_is_monotone_from_0_to_10_percent() {
    let repo = repo();
    let rates = [0.0, 0.02, 0.05, 0.10];
    let points = corruption_sweep(
        &repo,
        AnalysisOptions::default(),
        FAULT_SEED,
        &rates,
    );
    assert_eq!(points.len(), rates.len());
    assert_eq!(points[0].injected, 0);
    assert_eq!(points[0].skipped_binaries, 0);
    for pair in points.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        assert!(hi.injected >= lo.injected, "nested plans grow");
        assert!(hi.injected_fatal >= lo.injected_fatal);
        assert!(hi.skipped_binaries >= lo.skipped_binaries);
        assert!(hi.partial_packages >= lo.partial_packages);
        assert!(
            hi.distinct_syscalls <= lo.distinct_syscalls,
            "observed API coverage can only shrink as corruption rises"
        );
    }
    assert!(
        points.last().unwrap().skipped_binaries > 0,
        "10% corruption must quarantine something"
    );
}

#[test]
fn cached_sweep_matches_cold_sweep() {
    let repo = repo();
    let rates = [0.0, 0.02, 0.05, 0.10];
    let options = AnalysisOptions::default();

    let cold_cache = AnalysisCache::new(CacheMode::Off);
    let cold =
        corruption_sweep_with(&repo, options, FAULT_SEED, &rates, &cold_cache);
    let warm_cache = AnalysisCache::new(CacheMode::Mem);
    let warm =
        corruption_sweep_with(&repo, options, FAULT_SEED, &rates, &warm_cache);

    // The cache must be invisible in the measured series: every point
    // bit-identical (f64s compared by bit pattern, not tolerance).
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.rate.to_bits(), w.rate.to_bits());
        assert_eq!(c.injected, w.injected, "rate {}", c.rate);
        assert_eq!(c.injected_fatal, w.injected_fatal, "rate {}", c.rate);
        assert_eq!(c.skipped_binaries, w.skipped_binaries, "rate {}", c.rate);
        assert_eq!(c.partial_packages, w.partial_packages, "rate {}", c.rate);
        assert_eq!(
            c.quarantined_packages, w.quarantined_packages,
            "rate {}",
            c.rate
        );
        assert_eq!(c.distinct_syscalls, w.distinct_syscalls, "rate {}", c.rate);
        assert_eq!(
            c.completeness_top.to_bits(),
            w.completeness_top.to_bits(),
            "completeness drifted at rate {}",
            c.rate
        );
    }
    let stats = warm_cache.stats();
    assert!(stats.hits > 0, "the warm sweep must actually reuse analyses");
    assert_eq!(cold_cache.stats().hits + cold_cache.stats().misses, 0);

    // Per-run diagnostics are ledger-exact under the cache: a cached
    // faulted run skips exactly what an un-cached one skips, and every
    // ELF the run looked at is accounted as a hit or a miss.
    let plan = FaultPlan::new(FAULT_SEED, 0.05);
    let uncached =
        StudyData::from_synth_faulted(&repo, options, &plan);
    let cache = AnalysisCache::new(CacheMode::Mem);
    let cached = StudyData::from_synth_faulted_cached(
        &repo,
        options,
        &plan,
        Some(&cache),
    );
    let skips = |d: &apistudy::core::RunDiagnostics| {
        let mut v: Vec<(String, String)> = d
            .skipped
            .iter()
            .map(|s| (s.package.clone(), s.file.clone()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(cached.diagnostics.injected, uncached.diagnostics.injected);
    assert_eq!(skips(&cached.diagnostics), skips(&uncached.diagnostics));
    assert_eq!(
        cached.diagnostics.analyzed_binaries,
        uncached.diagnostics.analyzed_binaries
    );
    assert_eq!(cached.diagnostics.cache_mode, CacheMode::Mem);
    assert_eq!(
        cached.diagnostics.cache_hits + cached.diagnostics.cache_misses,
        cached.diagnostics.analyzed_binaries
            + cached.diagnostics.total_skipped(),
        "every looked-up ELF must be accounted as a hit or a miss"
    );
}

/// Field-by-field bitwise comparison — `PartialEq` would accept
/// `-0.0 == 0.0`; the resume contract is stricter than that.
#[track_caller]
fn assert_points_bitwise(
    got: &[apistudy::core::DegradationPoint],
    want: &[apistudy::core::DegradationPoint],
) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.rate.to_bits(), w.rate.to_bits());
        assert_eq!(g.injected, w.injected, "rate {}", w.rate);
        assert_eq!(g.injected_fatal, w.injected_fatal, "rate {}", w.rate);
        assert_eq!(g.skipped_binaries, w.skipped_binaries, "rate {}", w.rate);
        assert_eq!(g.deadline_skipped, w.deadline_skipped, "rate {}", w.rate);
        assert_eq!(g.partial_packages, w.partial_packages, "rate {}", w.rate);
        assert_eq!(
            g.quarantined_packages, w.quarantined_packages,
            "rate {}",
            w.rate
        );
        assert_eq!(g.distinct_syscalls, w.distinct_syscalls, "rate {}", w.rate);
        assert_eq!(
            g.completeness_top.to_bits(),
            w.completeness_top.to_bits(),
            "completeness drifted at rate {}",
            w.rate
        );
    }
}

/// The write-ahead journal is observation, not perturbation: a journaled
/// sweep, a full replay, and a torn-tail resume all yield points
/// bit-identical to the plain sweep, with ledger-exact replay/append
/// counts — and a journal from a different fault plan is refused.
#[test]
fn journaled_sweep_resumes_bit_identically() {
    use apistudy::core::{corruption_sweep_journaled, JournalError};

    let repo = repo();
    let options = AnalysisOptions::default();
    // A shorter grid than the CLI's: enough to exercise baseline +
    // replay + tail without tripling the suite's runtime.
    let rates: Vec<f64> = (0..=4).map(|i| i as f64 / 100.0).collect();
    let dir = std::env::temp_dir()
        .join(format!("apistudy-journal-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("sweep.journal");

    let plain = corruption_sweep_with(
        &repo,
        options,
        FAULT_SEED,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
    );

    let (fresh, stats) = corruption_sweep_journaled(
        &repo,
        options,
        FAULT_SEED,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
        &jpath,
        false,
    )
    .unwrap();
    // One support-set record plus one record per rate.
    assert_eq!((stats.replayed, stats.appended), (0, 6));
    assert_points_bitwise(&fresh, &plain);
    let complete = std::fs::read(&jpath).unwrap();

    let (replayed, stats) = corruption_sweep_journaled(
        &repo,
        options,
        FAULT_SEED,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
        &jpath,
        true,
    )
    .unwrap();
    assert_eq!((stats.replayed, stats.appended), (6, 0));
    assert_points_bitwise(&replayed, &plain);

    // Tear the tail mid-record: the damaged record is discarded, its
    // point recomputed, and the healed journal is byte-identical to the
    // uninterrupted one.
    std::fs::write(&jpath, &complete[..complete.len() - 5]).unwrap();
    let (resumed, stats) = corruption_sweep_journaled(
        &repo,
        options,
        FAULT_SEED,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
        &jpath,
        true,
    )
    .unwrap();
    assert_eq!((stats.replayed, stats.appended), (5, 1));
    assert_points_bitwise(&resumed, &plain);
    assert_eq!(std::fs::read(&jpath).unwrap(), complete);

    // A different fault seed is a different run: refuse, don't guess.
    let err = corruption_sweep_journaled(
        &repo,
        options,
        FAULT_SEED + 1,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
        &jpath,
        true,
    )
    .unwrap_err();
    assert!(matches!(err, JournalError::FingerprintMismatch { .. }), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}
