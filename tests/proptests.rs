//! Property-based tests on the substrates and the metric algebra.

use std::collections::HashSet;

use proptest::prelude::*;

use apistudy::catalog::Api;
use apistudy::core::{Metrics, Study, StudyData};
use apistudy::corpus::codegen::{
    generate_executable, generate_library, ExecSpec, ExportSpec, LibSpec,
    VectoredVia,
};
use apistudy::corpus::Scale;
use apistudy::elf::ElfFile;
use apistudy::x86::{decode, Asm, Decoder, Insn, Reg};

// ---------------------------------------------------------------------
// x86: the decoder never panics and always makes progress.
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn decoder_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut consumed = 0usize;
        for d in Decoder::new(&bytes, 0x1000) {
            prop_assert!(d.len >= 1, "decoder must make progress");
            consumed += d.len;
        }
        prop_assert_eq!(consumed, bytes.len(), "decoder must consume everything");
    }

    // Encoder output decodes back to the same semantics.
    #[test]
    fn mov_imm_roundtrip(reg in 0u8..12, imm in any::<u32>()) {
        let mut a = Asm::new(0x4000);
        a.mov_imm32(Reg(reg), imm);
        let code = a.finish();
        let d = decode(&code, 0x4000);
        prop_assert_eq!(d.insn, Insn::MovImm { reg: Reg(reg), imm: u64::from(imm) });
        prop_assert_eq!(d.len, code.len());
    }

    #[test]
    fn call_roundtrip(base in 0x1000u64..0x10_0000, off in -200_000i64..200_000) {
        let target = base.wrapping_add(off as u64);
        let mut a = Asm::new(base);
        a.call(target);
        let code = a.finish();
        let d = decode(&code, base);
        prop_assert_eq!(d.insn, Insn::CallRel { target });
    }

    #[test]
    fn lea_roundtrip(base in 0x10_000u64..0x20_000, reg in 0u8..12, off in -30_000i64..30_000) {
        let target = base.wrapping_add(off as u64);
        let mut a = Asm::new(base);
        a.lea_rip(Reg(reg), target);
        let code = a.finish();
        let d = decode(&code, base);
        prop_assert_eq!(d.insn, Insn::LeaRip { reg: Reg(reg), target });
    }

    // Mixed emission streams decode with no Unknown instructions.
    #[test]
    fn emitted_streams_have_no_unknown(ops in proptest::collection::vec(0u8..8, 1..64)) {
        let mut a = Asm::new(0x7000);
        for op in &ops {
            match op {
                0 => a.mov_imm32(Reg::RAX, 7),
                1 => a.syscall(),
                2 => a.push_rbp(),
                3 => a.pop_rbp(),
                4 => a.xor_self(Reg::RDI),
                5 => a.sub_rsp(16),
                6 => a.nops(3),
                _ => a.ret(),
            }
        }
        let code = a.finish();
        for d in Decoder::new(&code, 0x7000) {
            prop_assert!(d.insn != Insn::Unknown, "emitted byte stream must decode");
        }
    }
}

// ---------------------------------------------------------------------
// ELF + codegen: generated objects always parse, and footprint-relevant
// content round-trips.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn generated_executables_roundtrip(
        seed in any::<u64>(),
        n_calls in 0usize..20,
        n_syscalls in 0usize..20,
        helpers in 1u32..6,
        is_static in any::<bool>(),
    ) {
        let spec = ExecSpec {
            is_static,
            needed: if is_static { vec![] } else { vec!["libc.so.6".into()] },
            libc_calls: if is_static {
                vec![]
            } else {
                (0..n_calls).map(|i| format!("fn_{i}")).collect()
            },
            direct_syscalls: (0..n_syscalls as u32).collect(),
            ioctl_codes: vec![(0x5401, VectoredVia::Inline)],
            paths: vec!["/dev/null".into()],
            helpers,
            seed,
            ..Default::default()
        };
        let bytes = generate_executable(&spec);
        let elf = ElfFile::parse(&bytes).expect("generated ELF parses");
        let ba = apistudy::analysis::BinaryAnalysis::analyze(&elf).expect("analyzes");
        let fp = ba.entry_facts();
        for nr in 0..n_syscalls as u32 {
            let have = fp.syscalls.contains(&nr);
            prop_assert!(have, "syscall {} lost", nr);
        }
        prop_assert!(fp.ioctl_codes.contains(&0x5401));
        prop_assert!(fp.paths.contains("/dev/null"));
        if !is_static {
            for i in 0..n_calls {
                let name = format!("fn_{i}");
                prop_assert!(fp.imports.contains(&name));
            }
        }
        prop_assert_eq!(fp.unresolved_syscall_sites, 0);
    }

    #[test]
    fn generated_libraries_roundtrip(
        n_exports in 1usize..12,
        n_syscalls in 0u32..8,
    ) {
        let spec = LibSpec {
            soname: "libprop.so.1".into(),
            needed: vec![],
            exports: (0..n_exports)
                .map(|i| ExportSpec {
                    name: format!("export_{i}"),
                    direct_syscalls: (0..n_syscalls).collect(),
                    pad_to: 64 * (i as u32 % 4),
                    ..Default::default()
                })
                .collect(),
        };
        let bytes = generate_library(&spec);
        let elf = ElfFile::parse(&bytes).expect("parses");
        let ba = apistudy::analysis::BinaryAnalysis::analyze(&elf).expect("analyzes");
        for i in 0..n_exports {
            let idx = ba.export(&format!("export_{i}")).expect("export found");
            let fp = ba.reachable_facts([idx]);
            prop_assert_eq!(fp.syscalls.len(), n_syscalls as usize);
        }
    }
}

// ---------------------------------------------------------------------
// Metric algebra over a real (small) study.
// ---------------------------------------------------------------------

fn small_study() -> &'static StudyData {
    use std::sync::OnceLock;
    static STUDY: OnceLock<Box<Study>> = OnceLock::new();
    STUDY
        .get_or_init(|| {
            Box::new(Study::run(
                Scale { packages: 120, installations: 20_000 },
                9,
            ))
        })
        .data()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Weighted completeness is monotone under adding supported APIs.
    #[test]
    fn completeness_monotone(mut supported in proptest::collection::hash_set(0u32..323, 0..200),
                             extra in 0u32..323) {
        let data = small_study();
        let metrics = Metrics::new(data);
        let before = metrics.syscall_completeness(&supported);
        supported.insert(extra);
        let after = metrics.syscall_completeness(&supported);
        prop_assert!(after >= before - 1e-12);
    }

    // Importance is bounded and consistent with dependents.
    #[test]
    fn importance_bounds(nr in 0u32..323) {
        let data = small_study();
        let metrics = Metrics::new(data);
        let api = Api::Syscall(nr);
        let imp = metrics.importance(api);
        prop_assert!((0.0..=1.0).contains(&imp));
        let deps = metrics.dependents(api);
        if deps.is_empty() {
            prop_assert_eq!(imp, 0.0);
        } else {
            // Importance is at least the best single dependent's probability.
            let best = deps.iter().map(|p| p.prob).fold(0.0, f64::max);
            prop_assert!(imp >= best - 1e-12);
        }
        let unweighted = metrics.unweighted_importance(api);
        prop_assert!((0.0..=1.0).contains(&unweighted));
        prop_assert_eq!(
            unweighted == 0.0,
            imp == 0.0,
            "weighted and unweighted agree on zero"
        );
    }
}

#[test]
fn full_and_empty_support_bound_the_metric() {
    let data = small_study();
    let metrics = Metrics::new(data);
    let all: HashSet<u32> = (0..400).collect();
    assert!((metrics.syscall_completeness(&all) - 1.0).abs() < 1e-9);
    let none: HashSet<u32> = HashSet::new();
    let c = metrics.syscall_completeness(&none);
    assert!(c < 0.05, "no syscalls -> (almost) nothing works: {c}");
}

// ---------------------------------------------------------------------
// Condensation and the incremental completeness engine over *random*
// dependency graphs, cycles very much included. The oracles are the
// pre-condensation fixed-point loops, re-implemented here verbatim; the
// single-pass and incremental paths must match them bit-for-bit.
// ---------------------------------------------------------------------

/// Builds a study whose package `i` has weight `weights[i]`, own
/// footprint = the syscalls of `masks[i]`'s set bits (numbers 0..8), and
/// the dependency edges of `edges` (taken mod the package count;
/// self-edges and duplicates are left in deliberately).
fn random_dep_study(
    weights: &[u32],
    masks: &[u8],
    edges: &[(usize, usize)],
) -> StudyData {
    use apistudy::core::{ApiFootprint, Attribution, PackageRecord};
    let n = weights.len();
    let packages: Vec<PackageRecord> = (0..n)
        .map(|i| {
            let mut fp = ApiFootprint::default();
            for bit in 0..8u32 {
                if masks[i] & (1 << bit) != 0 {
                    fp.apis.insert(Api::Syscall(bit));
                }
            }
            let depends: Vec<String> = edges
                .iter()
                .filter(|&&(from, _)| from % n == i)
                .map(|&(_, to)| format!("pkg{}", to % n))
                .collect();
            PackageRecord {
                name: format!("pkg{i}"),
                prob: f64::from(weights[i]) / 100.0,
                install_count: u64::from(weights[i]),
                depends,
                footprint: fp,
                script_interpreters: vec![],
                file_counts: (1, 0, 0),
                unresolved_syscall_sites: 0,
                skipped_binaries: 0,
                partial_footprint: false,
            }
        })
        .collect();
    let by_name = packages
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i))
        .collect();
    StudyData {
        catalog: apistudy::catalog::Catalog::linux_3_19(),
        packages,
        by_name,
        total_installations: 100,
        census: apistudy::corpus::MixCensus::default(),
        attribution: Attribution::default(),
        unresolved_syscall_sites: 0,
        resolved_syscall_sites: 1,
        diagnostics: apistudy::core::RunDiagnostics::default(),
    }
}

/// The replaced implementation of weighted completeness: per-package
/// support flags, dependency-failure propagation iterated to a fixed
/// point, then the canonical package-order mass sum.
fn fixpoint_completeness(data: &StudyData, supported: &HashSet<u32>) -> f64 {
    let n = data.packages.len();
    let mut ok: Vec<bool> = data
        .packages
        .iter()
        .map(|p| p.footprint.syscalls().all(|nr| supported.contains(&nr)))
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !ok[i] {
                continue;
            }
            let broken_dep = data.packages[i].depends.iter().any(|dep| {
                data.by_name.get(dep).is_some_and(|&d| !ok[d])
            });
            if broken_dep {
                ok[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let total_mass = data.total_mass();
    if total_mass == 0.0 {
        return 0.0;
    }
    let supported_mass: f64 = data
        .packages
        .iter()
        .enumerate()
        .filter(|&(i, _)| ok[i])
        .map(|(_, p)| p.prob)
        .sum();
    supported_mass / total_mass
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The condensation single pass equals the fixed point, bitwise, on
    // arbitrary graphs (cycles, self-edges, duplicate edges).
    #[test]
    fn single_pass_completeness_matches_fixpoint_on_random_graphs(
        weights in proptest::collection::vec(1u32..100, 2..10),
        masks in proptest::collection::vec(any::<u8>(), 10..11),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
        supported_mask in any::<u8>(),
    ) {
        let data = random_dep_study(&weights, &masks, &edges);
        let metrics = Metrics::new(&data);
        let supported: HashSet<u32> = (0..8u32)
            .filter(|bit| supported_mask & (1 << bit) != 0)
            .collect();
        let fast = metrics.syscall_completeness(&supported);
        let oracle = fixpoint_completeness(&data, &supported);
        prop_assert_eq!(
            fast.to_bits(), oracle.to_bits(),
            "single-pass {} vs fixpoint {}", fast, oracle
        );
    }

    // The SCC single-pass closure equals the OR fixed point it replaced.
    #[test]
    fn scc_closure_matches_or_fixpoint_on_random_graphs(
        weights in proptest::collection::vec(1u32..100, 2..10),
        masks in proptest::collection::vec(any::<u8>(), 10..11),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
    ) {
        use apistudy::catalog::ApiSet;
        let data = random_dep_study(&weights, &masks, &edges);
        let metrics = Metrics::new(&data);
        let n = data.packages.len();
        let mut closed: Vec<ApiSet> = data
            .packages
            .iter()
            .map(|p| p.footprint.apis.clone())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                for dep in &data.packages[i].depends {
                    let Some(&d) = data.by_name.get(dep) else { continue };
                    if d == i {
                        continue;
                    }
                    let dep_set = closed[d].clone();
                    changed |= closed[i].union_with(&dep_set);
                }
            }
            if !changed {
                break;
            }
        }
        for (i, expected) in closed.iter().enumerate() {
            prop_assert!(
                *metrics.closed_footprint(i) == *expected,
                "closure of package {} diverges from the OR fixed point", i
            );
        }
    }

    // An engine driven through an arbitrary add/remove sequence reports
    // exactly what a from-scratch evaluation of the final set reports —
    // after every single operation, and each op's delta accounts for the
    // completeness movement exactly.
    #[test]
    fn engine_matches_scratch_after_every_op(
        weights in proptest::collection::vec(1u32..100, 2..10),
        masks in proptest::collection::vec(any::<u8>(), 10..11),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
        ops in proptest::collection::vec((any::<bool>(), 0u32..8), 1..30),
    ) {
        use apistudy::core::CompletenessEngine;
        let data = random_dep_study(&weights, &masks, &edges);
        let metrics = Metrics::new(&data);
        let mut supported: HashSet<u32> = HashSet::new();
        let mut engine = CompletenessEngine::for_syscalls(&metrics, &supported);
        for &(add, nr) in &ops {
            let before = engine.completeness();
            let delta = if add {
                supported.insert(nr);
                engine.add_api(Api::Syscall(nr))
            } else {
                supported.remove(&nr);
                engine.remove_api(Api::Syscall(nr))
            };
            let scratch = metrics.syscall_completeness(&supported);
            prop_assert_eq!(
                engine.completeness().to_bits(), scratch.to_bits(),
                "after {} {}: engine {} vs scratch {}",
                if add { "add" } else { "remove" }, nr,
                engine.completeness(), scratch
            );
            prop_assert_eq!(
                (engine.completeness() - before).to_bits(), delta.to_bits(),
                "delta must account for the movement"
            );
        }
    }

    // Probing never perturbs the engine: an add/remove round trip lands
    // on the exact starting bit pattern.
    #[test]
    fn probe_round_trip_is_bitwise_exact(
        weights in proptest::collection::vec(1u32..100, 2..10),
        masks in proptest::collection::vec(any::<u8>(), 10..11),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
        supported_mask in any::<u8>(),
        probes in proptest::collection::vec(0u32..10, 1..20),
    ) {
        use apistudy::core::CompletenessEngine;
        let data = random_dep_study(&weights, &masks, &edges);
        let metrics = Metrics::new(&data);
        let supported: HashSet<u32> = (0..8u32)
            .filter(|bit| supported_mask & (1 << bit) != 0)
            .collect();
        let mut engine = CompletenessEngine::for_syscalls(&metrics, &supported);
        let start = engine.completeness().to_bits();
        for &nr in &probes {
            let gain = engine.probe_gain(Api::Syscall(nr));
            prop_assert!(gain >= 0.0);
            prop_assert_eq!(engine.completeness().to_bits(), start);
        }
    }
}

// ---------------------------------------------------------------------
// ELF robustness: the parser is total over corrupted inputs — it returns
// an error or a harmless parse, never panics (the paper's trust-the-
// disassembler assumption must not extend to trusting the container).
// ---------------------------------------------------------------------

fn valid_elf_bytes() -> Vec<u8> {
    let spec = ExecSpec {
        needed: vec!["libc.so.6".into()],
        libc_calls: vec!["printf".into(), "open".into()],
        direct_syscalls: vec![0, 1, 2],
        paths: vec!["/dev/null".into()],
        helpers: 2,
        seed: 5,
        ..Default::default()
    };
    generate_executable(&spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_survives_truncation(cut in 0usize..4096) {
        let bytes = valid_elf_bytes();
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..cut];
        // Must not panic; errors are fine. A successful parse must also
        // survive the full analysis path.
        if let Ok(elf) = ElfFile::parse(truncated) {
            let _ = apistudy::analysis::BinaryAnalysis::analyze(&elf);
        }
    }

    #[test]
    fn parser_survives_byte_flips(
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..16)
    ) {
        let mut bytes = valid_elf_bytes();
        for (pos, val) in flips {
            let n = bytes.len();
            bytes[pos % n] = val;
        }
        if let Ok(elf) = ElfFile::parse(&bytes) {
            let _ = elf.symtab();
            let _ = elf.dynsym();
            let _ = elf.needed_libraries();
            let _ = elf.plt_map();
            let _ = apistudy::analysis::BinaryAnalysis::analyze(&elf);
        }
    }

    #[test]
    fn parser_survives_random_header_fields(
        words in proptest::collection::vec(any::<u8>(), 64..256)
    ) {
        let mut bytes = words;
        bytes[0..4].copy_from_slice(&[0x7f, b'E', b'L', b'F']);
        bytes[4] = 2;
        bytes[5] = 1;
        bytes[18] = 62; // EM_X86_64
        bytes[19] = 0;
        if let Ok(elf) = ElfFile::parse(&bytes) {
            let _ = apistudy::analysis::BinaryAnalysis::analyze(&elf);
        }
    }

    // The fault corruptor's own mutations are a biased sampler of exactly
    // the corruption the robustness pipeline must absorb: no kind, salt,
    // or kind-combination may panic the parser, the analyzer, or the
    // decoder underneath them.
    #[test]
    fn injected_faults_never_panic_parse_or_analysis(
        kinds in proptest::collection::vec(0usize..8, 1..4),
        salt in any::<u64>(),
    ) {
        use apistudy::corpus::fault::{inject, FaultKind};
        let mut bytes = valid_elf_bytes();
        for k in kinds {
            let _ = inject(FaultKind::ALL[k], salt, &mut bytes);
        }
        if let Ok(elf) = ElfFile::parse(&bytes) {
            let _ = elf.symtab();
            let _ = elf.dynsym();
            let _ = elf.needed_libraries();
            let _ = elf.plt_map();
            let _ = apistudy::analysis::BinaryAnalysis::analyze(&elf);
        }
    }

    // Resource guards are total: arbitrarily tiny budgets classify the
    // binary (ResourceLimit errors), never panic or hang.
    #[test]
    fn tiny_resource_budgets_never_panic(
        max_functions in 0u32..8,
        decode_budget in 0u64..16,
    ) {
        let bytes = valid_elf_bytes();
        let elf = ElfFile::parse(&bytes).expect("pristine ELF parses");
        let options = apistudy::analysis::AnalysisOptions {
            max_functions,
            decode_budget,
            ..Default::default()
        };
        match apistudy::analysis::BinaryAnalysis::analyze_with(&elf, options) {
            Ok(ba) => prop_assert!(ba.instructions <= decode_budget),
            Err(e) => prop_assert_eq!(
                e.kind(),
                apistudy::elf::ErrorKind::ResourceLimit
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Content hash: the incremental cache's identity function must be a
// pure, thread-independent function of the bytes, and every mutation the
// fault injector records must move it (otherwise a corrupted binary
// could silently reuse the clean baseline's analysis).
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn content_hash_is_deterministic_across_threads(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        use apistudy::analysis::content_hash;
        let serial = content_hash(&bytes);
        let concurrent: Vec<u64> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| content_hash(&bytes)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("hash thread"))
                .collect()
        });
        for h in concurrent {
            prop_assert_eq!(h, serial);
        }
    }

    #[test]
    fn content_hash_separates_lengths_and_tails(
        bytes in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        use apistudy::analysis::content_hash;
        let full = content_hash(&bytes);
        let truncated = content_hash(&bytes[..bytes.len() - 1]);
        prop_assert!(full != truncated, "dropping the tail byte must move the hash");
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        prop_assert!(full != content_hash(&flipped), "one tail bit must move the hash");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Whenever the injector reports a mutation (the same signal the
    // pipeline's FaultRecord ledger is built from), the corrupted image
    // must hash differently from the clean one — for every FaultKind.
    #[test]
    fn every_recorded_fault_kind_moves_the_content_hash(
        kind_index in 0usize..8,
        salt in any::<u64>(),
    ) {
        use apistudy::analysis::content_hash;
        use apistudy::corpus::fault::{inject, FaultKind};
        let clean = valid_elf_bytes();
        let clean_hash = content_hash(&clean);
        let mut mutated = clean.clone();
        if inject(FaultKind::ALL[kind_index], salt, &mut mutated).is_some() {
            prop_assert!(
                mutated != clean,
                "a recorded injection must change the bytes"
            );
            prop_assert!(
                content_hash(&mutated) != clean_hash,
                "kind {:?} salt {:#x} mutated the bytes without moving the hash",
                FaultKind::ALL[kind_index], salt
            );
        } else {
            prop_assert!(mutated == clean, "a refused injection must not mutate");
        }
    }
}

#[test]
fn legacy_int80_binaries_are_analyzed() {
    // A legacy binary issuing syscalls through `int $0x80` is measured
    // exactly like one using the `syscall` instruction.
    use apistudy::elf::ElfBuilder;
    let mut b = ElfBuilder::static_executable();
    let emit = |base: u64| {
        let mut a = Asm::new(base);
        a.mov_imm32(Reg::RAX, 1);
        a.int80();
        a.mov_imm32(Reg::RAX, 60);
        a.int80();
        a.ret();
        a.finish()
    };
    let probe = emit(0);
    let layout = b.layout(probe.len() as u64, 0);
    let code = emit(layout.text_addr);
    let len = code.len() as u64;
    b.set_text(code);
    b.set_entry(0);
    b.local_symbol("main", 0, len);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    let ba = apistudy::analysis::BinaryAnalysis::analyze(&elf).unwrap();
    let fp = ba.entry_facts();
    assert!(fp.syscalls.contains(&1));
    assert!(fp.syscalls.contains(&60));
}

// ---------------------------------------------------------------------
// seccomp-BPF: for arbitrary allow-sets, the assembled filter agrees with
// set membership for every syscall number.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn bpf_filter_matches_set_semantics(
        allow in proptest::collection::btree_set(0u32..330, 0..120)
    ) {
        use apistudy::core::seccomp_bpf::{
            run_filter, BpfProgram, SeccompData, AUDIT_ARCH_X86_64,
            RET_ALLOW, RET_KILL,
        };
        let sorted: Vec<u32> = allow.iter().copied().collect();
        let program = BpfProgram::allow_list(&sorted);
        for nr in 0..340u32 {
            let verdict = run_filter(
                &program,
                SeccompData { nr, arch: AUDIT_ARCH_X86_64 },
            );
            let expected = if allow.contains(&nr) { RET_ALLOW } else { RET_KILL };
            prop_assert_eq!(verdict, Some(expected), "nr {}", nr);
        }
        // Wrong architecture is always killed.
        let foreign = run_filter(
            &program,
            SeccompData { nr: sorted.first().copied().unwrap_or(0), arch: 1 },
        );
        prop_assert_eq!(foreign, Some(RET_KILL));
    }
}

// ---------------------------------------------------------------------
// seccomp-BPF: the binary-search tree layout agrees with the linear
// chain and with reference set membership for EVERY syscall number in
// 0..=4096, over random fragmented allow-lists — including ones whose
// fragmentation overflows the linear chain's 8-bit jump offsets (the
// former FilterTooLarge trigger), where the tree must still be exact.
// The executed depth must also stay logarithmic.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn bpf_tree_matches_linear_and_reference_up_to_4096(
        allow in proptest::collection::btree_set(0u32..4097, 0..700)
    ) {
        use apistudy::core::seccomp_bpf::{
            run_filter_traced, BpfProgram, FilterTooLarge, SeccompData,
            AUDIT_ARCH_X86_64, RET_ALLOW, RET_KILL,
        };
        let sorted: Vec<u32> = allow.iter().copied().collect();
        let tree = BpfProgram::try_allow_tree(&sorted).unwrap();
        let linear = match BpfProgram::try_allow_list(&sorted) {
            Ok(p) => Some(p),
            // Fragmentation past the 8-bit offsets is exactly the case
            // the tree exists for; the error stays classified.
            Err(FilterTooLarge::JumpSpan { span }) => {
                prop_assert!(span > 255, "unclassified span {}", span);
                None
            }
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("unexpected linear failure: {e}"),
            )),
        };
        let ranges = {
            let mut r = 0u32;
            let mut prev = None::<u32>;
            for &n in &sorted {
                if prev != Some(n.wrapping_sub(1)) {
                    r += 1;
                }
                prev = Some(n);
            }
            r.max(1)
        };
        let bound = 2 * (32 - (ranges - 1).max(1).leading_zeros()) + 8;
        let mut max_depth = 0u32;
        for nr in 0..=4096u32 {
            let data = SeccompData { nr, arch: AUDIT_ARCH_X86_64 };
            let expected =
                if allow.contains(&nr) { RET_ALLOW } else { RET_KILL };
            let (tv, steps) = run_filter_traced(&tree, data)
                .expect("well-formed tree");
            prop_assert_eq!(tv, expected, "tree at nr {}", nr);
            max_depth = max_depth.max(steps);
            if let Some(lin) = &linear {
                let (lv, _) = run_filter_traced(lin, data)
                    .expect("well-formed chain");
                prop_assert_eq!(lv, expected, "linear at nr {}", nr);
            }
        }
        prop_assert!(
            max_depth <= bound,
            "depth {} over bound {} at {} ranges", max_depth, bound, ranges
        );
        // Wrong architecture is always killed, both layouts.
        let foreign = SeccompData { nr: 0, arch: 1 };
        prop_assert_eq!(run_filter_traced(&tree, foreign).unwrap().0, RET_KILL);
        if let Some(lin) = &linear {
            prop_assert_eq!(
                run_filter_traced(lin, foreign).unwrap().0, RET_KILL);
        }
    }
}

// ---------------------------------------------------------------------
// Streaming: shard-fold determinism. Whatever the shard geometry and
// whatever order the partials are handed to the fold, the result — and
// every metric computed from it — is bit-identical to the in-memory
// pipeline over the same corpus.
// ---------------------------------------------------------------------

fn stream_baseline() -> &'static Study {
    use std::sync::OnceLock;
    static STUDY: OnceLock<Box<Study>> = OnceLock::new();
    STUDY.get_or_init(|| {
        Box::new(Study::run(
            Scale { packages: 150, installations: 30_000 },
            2016,
        ))
    })
}

proptest! {
    // Each case re-analyzes the 150-package corpus; a few geometries
    // already exercise every shard-count/short-tail combination.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shard_fold_is_boundary_and_order_independent(
        shard_size in 1usize..151,
        shuffle_seed in any::<u64>(),
    ) {
        use apistudy::analysis::AnalysisOptions;
        use apistudy::core::{fold_partials, shard_partials};

        let baseline = stream_baseline();
        let mut partials = shard_partials(
            baseline.repo(),
            AnalysisOptions::default(),
            shard_size,
            None,
        );
        // Hand the partials to the fold in an arbitrary order (the
        // vendored proptest mirror has no shuffle strategy; a seeded
        // LCG Fisher–Yates stands in).
        let mut state = shuffle_seed | 1;
        for i in (1..partials.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            partials.swap(i, j);
        }
        let folded = fold_partials(
            baseline.data().total_installations,
            partials,
        );

        prop_assert!(
            folded.packages == baseline.data().packages,
            "shard size {} diverged on package records", shard_size
        );
        prop_assert!(
            folded.attribution == baseline.data().attribution,
            "shard size {} diverged on attribution", shard_size
        );
        prop_assert_eq!(&folded.census, &baseline.data().census);
        prop_assert_eq!(
            folded.unresolved_syscall_sites,
            baseline.data().unresolved_syscall_sites
        );

        let mb = Metrics::new(baseline.data());
        let mf = Metrics::new(&folded);
        for def in baseline.data().catalog.syscalls.iter() {
            let api = Api::Syscall(def.number);
            prop_assert_eq!(
                mb.importance(api).to_bits(),
                mf.importance(api).to_bits(),
                "shard size {}: importance bits moved for {}",
                shard_size, def.name
            );
        }
        let supported: HashSet<u32> = (0..160).collect();
        prop_assert_eq!(
            mb.syscall_completeness(&supported).to_bits(),
            mf.syscall_completeness(&supported).to_bits(),
            "shard size {}: completeness bits moved", shard_size
        );
    }
}

// ---------------------------------------------------------------------
// Dataset codec: on canonical (normalized) data, parse ∘ to_csv is the
// identity — including the probability bit patterns.
// ---------------------------------------------------------------------

/// Derives a canonical dataset row from one random word. Names stay in
/// the CSV-safe ident alphabet; probabilities cover the full finite-f64
/// space (the codec prints with `{}`, whose shortest-repr output parses
/// back to the exact same bits).
fn dataset_row_from_word(i: usize, w: u64) -> apistudy::core::DatasetRow {
    use apistudy::catalog::ApiKind;
    use std::collections::HashMap;
    let mut probability = f64::from_bits(w);
    if !probability.is_finite() {
        probability = (w % 997) as f64 / 997.0;
    }
    let depends: Vec<String> =
        (0..w % 4).map(|k| format!("dep{}", (w >> k) % 13)).collect();
    let mut apis: HashMap<ApiKind, Vec<String>> = HashMap::new();
    apis.insert(
        ApiKind::Syscall,
        (0..(w >> 8) % 5).map(|k| format!("sys_{}", (w >> k) % 41)).collect(),
    );
    if w & 1 == 0 {
        apis.insert(
            ApiKind::LibcSymbol,
            (0..(w >> 16) % 3).map(|k| format!("fn_{k}")).collect(),
        );
    }
    apistudy::core::DatasetRow {
        name: format!("pkg{i}w{}", w % 89),
        install_count: w % 5_000_000,
        probability,
        depends,
        apis,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonical_datasets_roundtrip_bit_exactly(
        installations in 1u64..100_000_000,
        row_words in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        use apistudy::core::Dataset;
        let rows = row_words
            .iter()
            .enumerate()
            .map(|(i, &w)| dataset_row_from_word(i, w))
            .collect();
        let mut d = Dataset { installations, rows };
        d.normalize();
        let parsed =
            Dataset::parse_csv(&d.to_csv()).expect("canonical CSV parses");
        prop_assert_eq!(&parsed, &d, "parse ∘ to_csv must be the identity");
        for (a, b) in parsed.rows.iter().zip(&d.rows) {
            prop_assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "probability bits moved for {}", b.name
            );
        }
        // And the codec is idempotent from here on.
        prop_assert_eq!(
            Dataset::parse_csv(&parsed.to_csv()).expect("reparses"),
            parsed
        );
    }
}

// ---------------------------------------------------------------------
// Wire protocol: Batch frames round-trip bit-exactly; nesting past depth
// one, count caps, torn prefixes, and trailing bytes are all rejected
// whole (the decoder accepts exactly the canonical encodings).
// ---------------------------------------------------------------------

/// Derives one non-batch sub-request from two random words, covering
/// every batchable tag including variable-length list payloads.
fn sub_request_from_words(tag: u8, w: u64) -> apistudy::core::Request {
    use apistudy::core::Request;
    let nrs = |n: u64| -> Vec<u32> {
        (0..n).map(|k| ((w >> (k % 32)) & 0x3ff) as u32).collect()
    };
    match tag % 8 {
        0 => Request::Ping,
        1 => Request::Importance { nr: w as u32 },
        2 => Request::Completeness { supported: nrs(w % 9) },
        3 => Request::Suggest {
            supported: nrs(w % 5),
            limit: (w >> 32) as u32,
        },
        4 => Request::SessionOpen { supported: nrs(w % 7) },
        5 => Request::SessionAdd { nr: w as u32 },
        6 => Request::SessionProbe { nr: w as u32 },
        _ => Request::Reload { expect_fingerprint: w },
    }
}

/// Derives one non-batch sub-response from two random words.
fn sub_response_from_words(tag: u8, w: u64) -> apistudy::core::Response {
    use apistudy::core::{ErrorCode, Response};
    match tag % 8 {
        0 => Response::Pong {
            fingerprint: w,
            generation: w >> 8,
            packages: w as u32,
        },
        1 => Response::Importance {
            importance_bits: w,
            unweighted_bits: !w,
        },
        2 => Response::Completeness { bits: w },
        3 => Response::Suggest {
            picks: (0..w % 5).map(|k| ((w >> k) as u32, w ^ k)).collect(),
        },
        4 => Response::Session {
            delta_bits: w,
            completeness_bits: w.rotate_left(17),
        },
        5 => Response::Reload { fingerprint: w, generation: w >> 4 },
        6 => Response::Bye,
        _ => Response::Err {
            code: ErrorCode::Internal,
            msg: format!("w{:x}", w % 0x1000),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_requests_roundtrip_bit_exactly(
        words in proptest::collection::vec(
            (any::<u8>(), any::<u64>()), 1..65,
        ),
    ) {
        use apistudy::core::Request;
        let subs: Vec<Request> = words
            .iter()
            .map(|&(t, w)| sub_request_from_words(t, w))
            .collect();
        let batch = Request::Batch(subs);
        let bytes = batch.encode();
        let decoded =
            Request::decode(&bytes).expect("canonical batch decodes");
        prop_assert_eq!(&decoded, &batch);
        prop_assert_eq!(decoded.encode(), bytes.clone(), "re-encode identity");
        // Sub-requests are self-delimiting, so a torn batch can never
        // half-decode: every strict prefix is refused whole.
        for cut in 0..bytes.len() {
            prop_assert!(
                Request::decode(&bytes[..cut]).is_none(),
                "prefix of {} bytes decoded", cut
            );
        }
        // Trailing bytes are refused whole (non-canonical frame).
        let mut padded = bytes;
        padded.push(words[0].0);
        prop_assert!(Request::decode(&padded).is_none(), "trailing byte");
    }

    #[test]
    fn nested_empty_and_overlong_batches_are_rejected(
        tag in any::<u8>(),
        w in any::<u64>(),
        over in 65u32..200,
    ) {
        use apistudy::core::Request;
        let sub = sub_request_from_words(tag, w);
        // Nesting depth two: an outer batch whose single element is
        // itself a batch. The bytes are well-formed at every other
        // level; only the depth rule can reject them.
        let mut nested = vec![11u8];
        nested.extend_from_slice(&1u32.to_le_bytes());
        nested.extend_from_slice(
            &Request::Batch(vec![sub.clone()]).encode(),
        );
        prop_assert!(
            Request::decode(&nested).is_none(),
            "nested batch decoded"
        );
        // Count over MAX_BATCH, with that many real sub-encodings
        // present, so only the cap can reject it.
        let mut too_many = vec![11u8];
        too_many.extend_from_slice(&over.to_le_bytes());
        for _ in 0..over {
            too_many.extend_from_slice(&sub.encode());
        }
        prop_assert!(
            Request::decode(&too_many).is_none(),
            "batch of {} decoded past the cap", over
        );
        // The empty batch is refused (count 1..=MAX_BATCH).
        let mut empty = vec![11u8];
        empty.extend_from_slice(&0u32.to_le_bytes());
        prop_assert!(Request::decode(&empty).is_none(), "empty batch");
    }

    #[test]
    fn batch_responses_roundtrip_bit_exactly(
        words in proptest::collection::vec(
            (any::<u8>(), any::<u64>()), 1..65,
        ),
    ) {
        use apistudy::core::Response;
        let subs: Vec<Response> = words
            .iter()
            .map(|&(t, w)| sub_response_from_words(t, w))
            .collect();
        let batch = Response::Batch(subs);
        let bytes = batch.encode();
        let decoded =
            Response::decode(&bytes).expect("canonical batch decodes");
        prop_assert_eq!(&decoded, &batch);
        prop_assert_eq!(decoded.encode(), bytes.clone(), "re-encode identity");
        for cut in 0..bytes.len() {
            prop_assert!(
                Response::decode(&bytes[..cut]).is_none(),
                "prefix of {} bytes decoded", cut
            );
        }
        let mut nested = vec![9u8];
        nested.extend_from_slice(&1u32.to_le_bytes());
        nested.extend_from_slice(&bytes);
        prop_assert!(
            Response::decode(&nested).is_none(),
            "nested response batch decoded"
        );
    }
}

// ---------------------------------------------------------------------
// Incremental frame scan: however the bytes arrive — one at a time, or
// chopped at arbitrary split points — the scanner reports "partial"
// until the exact byte that completes the frame, and the decoded
// payload is bit-identical to the one-shot decode. This is the
// invariant the reactor's accumulation buffer rides on when the fault
// shim clamps socket reads to one byte.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_scan_is_split_invariant(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cut_words in proptest::collection::vec(any::<u64>(), 1..8),
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        use apistudy::core::{encode_frame, scan_frame, FRAME_HEADER};
        let frame = encode_frame(&payload);

        // One-shot reference.
        let total = match scan_frame(&frame) {
            Ok(Some(t)) => t,
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("one-shot scan failed: {other:?}"),
            )),
        };
        prop_assert_eq!(total, frame.len());
        prop_assert_eq!(&frame[FRAME_HEADER..total], &payload[..]);

        // One byte at a time: partial on every strict prefix (except
        // an over-cap header, which cannot happen for a real encode),
        // complete and bit-identical on the final byte.
        let mut buf: Vec<u8> = Vec::with_capacity(frame.len());
        for (i, &b) in frame.iter().enumerate() {
            buf.push(b);
            match scan_frame(&buf) {
                Ok(None) => prop_assert!(
                    i + 1 < frame.len(),
                    "scanner still partial on the complete frame"
                ),
                Ok(Some(t)) => {
                    prop_assert_eq!(
                        i + 1,
                        frame.len(),
                        "scanner completed early at byte {}", i
                    );
                    prop_assert_eq!(t, total);
                    prop_assert_eq!(&buf[FRAME_HEADER..t], &payload[..]);
                }
                Err(e) => return Err(
                    proptest::test_runner::TestCaseError::fail(format!(
                        "byte-wise scan classified a clean frame at {i}: {e}"
                    )),
                ),
            }
        }

        // Arbitrary split points: the same frame chopped into random
        // chunks (with unrelated trailing bytes already buffered after
        // it, as pipelined clients produce) scans to the same boundary
        // and the same payload bits.
        let mut cuts: Vec<usize> = cut_words
            .iter()
            .map(|w| (*w as usize) % (frame.len() + 1))
            .collect();
        cuts.push(0);
        cuts.push(frame.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut buf: Vec<u8> = Vec::with_capacity(frame.len());
        for pair in cuts.windows(2) {
            let chunk = &frame[pair[0]..pair[1]];
            buf.extend_from_slice(chunk);
            let complete = buf.len() == frame.len();
            match scan_frame(&buf) {
                Ok(None) => prop_assert!(!complete, "partial at the end"),
                Ok(Some(t)) => {
                    prop_assert!(complete, "completed before the boundary");
                    prop_assert_eq!(t, total);
                    prop_assert_eq!(&buf[FRAME_HEADER..t], &payload[..]);
                }
                Err(e) => return Err(
                    proptest::test_runner::TestCaseError::fail(format!(
                        "chunked scan classified a clean frame: {e}"
                    )),
                ),
            }
        }
        buf.extend_from_slice(&trailer);
        match scan_frame(&buf) {
            Ok(Some(t)) => {
                prop_assert_eq!(t, total, "trailing bytes moved the boundary");
                prop_assert_eq!(&buf[FRAME_HEADER..t], &payload[..]);
            }
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("buffered trailer broke the scan: {other:?}"),
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Journal: recovery from arbitrary damage yields a valid prefix of what
// was written — never a wrong record, never a guess.
// ---------------------------------------------------------------------

/// Decodes a raw word stream into journal records (the vendored proptest
/// mirror has no `prop_oneof`/`prop_map`, so structure is derived here).
/// Exhausted draws default to zero; every word pattern is a valid log.
fn journal_records_from_words(
    words: &[u64],
) -> Vec<apistudy::core::JournalRecord> {
    use apistudy::core::{DegradationPoint, JournalRecord};
    let mut it = words.iter().copied();
    let mut out = Vec::new();
    while let Some(tag) = it.next() {
        let mut n = || it.next().unwrap_or(0);
        out.push(match tag % 3 {
            0 => {
                let count = (n() % 20) as usize;
                let mut set = Vec::with_capacity(count);
                for _ in 0..count {
                    set.push(n() as u32);
                }
                JournalRecord::SupportSet(set)
            }
            1 => JournalRecord::SweepPoint(DegradationPoint {
                rate: f64::from_bits(n()),
                injected: n() as u32,
                injected_fatal: n() as u32,
                skipped_binaries: n() as u32,
                deadline_skipped: n() as u32,
                partial_packages: n() as u32,
                quarantined_packages: n() as u32,
                distinct_syscalls: n() as usize,
                completeness_top: f64::from_bits(n()),
            }),
            _ => JournalRecord::GreedyPick {
                nr: n() as u32,
                gain_bits: n(),
                after_bits: n(),
            },
        });
    }
    out
}

/// Bit-pattern equality: `PartialEq` on the embedded `f64`s would treat
/// `-0.0 == 0.0` and reject `NaN == NaN`; the journal round-trips bits.
fn journal_records_bits_eq(
    a: &apistudy::core::JournalRecord,
    b: &apistudy::core::JournalRecord,
) -> bool {
    use apistudy::core::JournalRecord::{GreedyPick, SupportSet, SweepPoint};
    match (a, b) {
        (SupportSet(x), SupportSet(y)) => x == y,
        (SweepPoint(x), SweepPoint(y)) => {
            x.rate.to_bits() == y.rate.to_bits()
                && x.injected == y.injected
                && x.injected_fatal == y.injected_fatal
                && x.skipped_binaries == y.skipped_binaries
                && x.deadline_skipped == y.deadline_skipped
                && x.partial_packages == y.partial_packages
                && x.quarantined_packages == y.quarantined_packages
                && x.distinct_syscalls == y.distinct_syscalls
                && x.completeness_top.to_bits() == y.completeness_top.to_bits()
        }
        (
            GreedyPick { nr: an, gain_bits: ag, after_bits: aa },
            GreedyPick { nr: bn, gain_bits: bg, after_bits: ba },
        ) => an == bn && ag == bg && aa == ba,
        _ => false,
    }
}

proptest! {
    // Each case replays hundreds of damaged files; a handful of cases
    // already covers every record type in every position.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn journal_recovery_is_a_prefix_never_a_guess(
        words in proptest::collection::vec(any::<u64>(), 4..48),
        fp_seed in any::<u64>(),
    ) {
        use apistudy::core::{Journal, RunFingerprint, RunKind};

        let records = journal_records_from_words(&words);
        prop_assert!(!records.is_empty());
        let kind = if fp_seed.is_multiple_of(2) {
            RunKind::CorruptionSweep
        } else {
            RunKind::GreedyPlan
        };
        let fp = RunFingerprint {
            kind,
            corpus: fp_seed,
            options: fp_seed ^ 0x1111,
            catalog: fp_seed ^ 0x2222,
            plan: fp_seed ^ 0x3333,
        };
        let dir = std::env::temp_dir()
            .join(format!("apistudy-journal-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.journal");

        // Write the pristine journal and learn the layout: the header
        // length (an empty journal is exactly one header) and where each
        // record starts.
        let empty = dir.join("empty.journal");
        let _ = std::fs::remove_file(&empty);
        drop(Journal::create(&empty, &fp).unwrap());
        let header_len = std::fs::metadata(&empty).unwrap().len() as usize;

        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, &fp).unwrap();
        for rec in &records {
            journal.append(rec).unwrap();
        }
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        let mut starts = Vec::with_capacity(records.len());
        let mut at = header_len;
        for _ in &records {
            starts.push(at);
            let len = u32::from_le_bytes(full[at..at + 4].try_into().unwrap());
            at += 4 + 8 + len as usize; // len + checksum + payload
        }
        prop_assert_eq!(at, full.len(), "record walk must cover the file");

        // Truncation at every byte offset: a short header is refused; a
        // torn record tail recovers exactly the records that fit.
        for t in 0..full.len() {
            std::fs::write(&path, &full[..t]).unwrap();
            match Journal::resume(&path, &fp) {
                Ok((_, recovered)) => {
                    prop_assert!(
                        t >= header_len,
                        "cut at {} accepted a partial header", t
                    );
                    let fits = starts
                        .iter()
                        .take_while(|s| {
                            let len = u32::from_le_bytes(
                                full[**s..**s + 4].try_into().unwrap(),
                            );
                            **s + 4 + 8 + len as usize <= t
                        })
                        .count();
                    prop_assert_eq!(
                        recovered.len(), fits,
                        "cut at {} of {}", t, full.len()
                    );
                    for (r, o) in recovered.iter().zip(&records) {
                        prop_assert!(
                            journal_records_bits_eq(r, o),
                            "cut at {} recovered a wrong record", t
                        );
                    }
                }
                Err(_) => prop_assert!(
                    t < header_len,
                    "cut at {} lost an intact header", t
                ),
            }
        }

        // A single flipped bit at every byte offset: header damage is
        // refused outright; record damage discards that record and the
        // (now unanchored) tail, keeping every record before it.
        for i in 0..full.len() {
            let mut bytes = full.clone();
            bytes[i] ^= 1 << (i % 8);
            std::fs::write(&path, &bytes).unwrap();
            match Journal::resume(&path, &fp) {
                Ok((_, recovered)) => {
                    prop_assert!(
                        i >= header_len,
                        "flip at {} in the header went unnoticed", i
                    );
                    let damaged =
                        starts.iter().filter(|s| **s <= i).count() - 1;
                    prop_assert_eq!(
                        recovered.len(), damaged,
                        "flip at {} (record {})", i, damaged
                    );
                    for (r, o) in recovered.iter().zip(&records) {
                        prop_assert!(
                            journal_records_bits_eq(r, o),
                            "flip at {} recovered a wrong record", i
                        );
                    }
                }
                Err(_) => prop_assert!(
                    i < header_len,
                    "flip at {} should tear the tail, not refuse the log", i
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
