//! Crash–resume contract, end to end through the real binary: a
//! `faults --journal` run killed mid-sweep by the
//! `APISTUDY_JOURNAL_CRASH_AFTER` fail-point must resume to a journal
//! byte-identical — and a printed table character-identical — to an
//! uninterrupted run, with the footer accounting for every replayed and
//! appended record.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const FAULT_SEED: &str = "77";

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-crash-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_faults(
    dir: &Path,
    journal: &str,
    cache: &str,
    resume: bool,
    crash_after: Option<u32>,
) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_apistudy"));
    cmd.args(["--scale", "150", "--seed", "2016", "--cache", "disk"]);
    cmd.args(["faults", FAULT_SEED, "--journal"]);
    cmd.arg(dir.join(journal));
    if resume {
        cmd.arg("--resume");
    }
    // Isolate from the developer's real cache and from any ambient
    // fail-point or watchdog configuration.
    cmd.env("APISTUDY_CACHE_DIR", dir.join(cache));
    cmd.env_remove("APISTUDY_JOURNAL_CRASH_AFTER");
    cmd.env_remove("APISTUDY_ITEM_DEADLINE_MS");
    cmd.env_remove("APISTUDY_CACHE");
    if let Some(n) = crash_after {
        cmd.env("APISTUDY_JOURNAL_CRASH_AFTER", n.to_string());
    }
    cmd.output().expect("spawn apistudy")
}

#[test]
fn aborted_sweep_resumes_byte_identical_to_an_uninterrupted_run() {
    let dir = scratch();

    // Kill the run after four successful journal appends: the baseline
    // support set plus three sweep points are committed, the rest of the
    // sweep is lost with the process.
    let crashed = run_faults(&dir, "sweep.journal", "cache", false, Some(4));
    assert!(
        !crashed.status.success(),
        "the fail-point must abort the process: {:?}",
        crashed.status
    );
    let torn = std::fs::read(dir.join("sweep.journal"))
        .expect("the journal must survive the crash");
    assert!(!torn.is_empty());

    // Resume finishes the sweep against the same journal and the disk
    // cache the crashed run managed to persist.
    let resumed = run_faults(&dir, "sweep.journal", "cache", true, None);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        resumed_stderr.contains("4 replayed, 8 appended"),
        "footer must account for the ledger, got:\n{resumed_stderr}"
    );

    // The control: the same sweep, never interrupted, on fresh state.
    let control =
        run_faults(&dir, "control.journal", "cache-control", false, None);
    assert!(
        control.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&control.stderr)
    );

    // Bit-identical resume, proven at both layers: the journal files
    // (checksummed f64 bit patterns included) and the rendered table.
    assert_eq!(
        std::fs::read(dir.join("sweep.journal")).unwrap(),
        std::fs::read(dir.join("control.journal")).unwrap(),
        "resumed journal must be byte-identical to the uninterrupted one"
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&control.stdout),
        "resumed table must match the uninterrupted run exactly"
    );
    let control_stderr = String::from_utf8_lossy(&control.stderr);
    assert!(
        control_stderr.contains("0 replayed, 12 appended"),
        "control footer must show a fresh journal, got:\n{control_stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
