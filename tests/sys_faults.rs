//! The exhaustive syscall-fault sweep: PR 5 injected a fault at every
//! byte offset of the journal; this suite injects a fault at every
//! *syscall position* of a live serve session and a journaled append
//! run, and re-proves the invariants under each one:
//!
//! - the daemon never panics and never hangs past its deadlines;
//! - every reply is bit-identical to the fault-free baseline **or** a
//!   classified error — never silent corruption;
//! - after an injected `ENOSPC`/`EIO` append failure the journal and
//!   store fail stop (fsyncgate), and resume recovers the longest
//!   valid prefix byte-identically;
//! - disarmed, the shim observes nothing and changes nothing.
//!
//! The injector is process-global, so every test that arms it
//! serializes on one mutex.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

use apistudy::core::sysfault::{
    self, SysFaultKind, SysFaultPlan,
};
use apistudy::core::{
    Client, ClientError, FrameError, Journal, JournalError, JournalRecord,
    Request, Response, RetryPolicy, RunFingerprint, RunKind, ServeOptions,
    Server, Study,
};
use apistudy::corpus::Scale;

/// The injector is process-global; every armed test holds this.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    match GATE.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    }
}

fn small_study() -> Study {
    Study::run(Scale { packages: 120, installations: 20_000 }, 11)
}

fn serve_opts() -> ServeOptions {
    ServeOptions {
        port: 0,
        max_conns: 16,
        request_deadline: Duration::from_millis(400),
        idle_deadline: Duration::from_millis(400),
        workers: 2,
        cache: true,
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(100),
        seed: 7,
    }
}

fn canonical_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Importance { nr: 1 },
        Request::Completeness { supported: vec![0, 1, 2, 3, 9, 60] },
        Request::Suggest { supported: vec![0, 1, 2, 3], limit: 3 },
    ]
}

/// One canonical client session: connect, issue the fixed request
/// list one call at a time, return each exchange's outcome. Every
/// socket operation is deadline-bounded, so an injected server-side
/// stall surfaces as a classified client error, never a hang.
fn run_session(addr: SocketAddr) -> Vec<Result<Response, ClientError>> {
    let mut out = Vec::new();
    let mut client =
        match Client::connect(addr, policy(), Duration::from_secs(2)) {
            Ok(c) => c,
            Err(e) => {
                out.push(Err(e));
                return out;
            }
        };
    for req in canonical_requests() {
        let res = client.call(&req);
        let failed = res.is_err();
        out.push(res);
        if failed {
            // The connection may be desynchronized; the session ends
            // with a classified failure rather than undefined reads.
            break;
        }
    }
    out
}

/// A fault-free exchange must match the baseline bit-for-bit; under
/// faults it may instead be a classified error (server- or client-side).
fn assert_classified_or_identical(
    k: u64,
    got: &[Result<Response, ClientError>],
    baseline: &[Vec<u8>],
) {
    for (i, res) in got.iter().enumerate() {
        match res {
            Ok(Response::Err { .. }) => {} // classified server error
            Ok(resp) => {
                assert_eq!(
                    resp.encode(),
                    baseline[i],
                    "k={k}: reply {i} diverged from baseline \
                     without being classified"
                );
            }
            Err(_) => {} // classified client error (deadline, reset, busy)
        }
    }
}

/// The headline sweep: measure how many shimmed syscalls one canonical
/// serve session intercepts, then re-run the session once per position
/// k with a site-plausible fault injected at the k-th intercepted call.
/// After every position the daemon must still answer a clean probe.
#[test]
fn serve_session_survives_a_fault_at_every_syscall_position() {
    let _g = gate();
    sysfault::clear();

    let server = Server::start(small_study(), None, serve_opts())
        .expect("server start");
    let addr = server.addr();

    // Fault-free baseline, twice: once unshimmed (proves the counting
    // plan itself changes nothing), once under an empty counting plan
    // to measure the session's syscall count N.
    let bare = run_session(addr);
    sysfault::install(SysFaultPlan::counting());
    let counted = run_session(addr);
    let n = sysfault::intercepted_count();
    assert!(
        sysfault::clear().is_empty(),
        "a counting plan must never inject"
    );
    assert!(n > 10, "a 4-request session must cross the shim (n={n})");

    let baseline: Vec<Vec<u8>> = bare
        .iter()
        .map(|r| match r {
            Ok(resp) => resp.encode(),
            Err(e) => panic!("fault-free baseline failed: {e}"),
        })
        .collect();
    for (i, res) in counted.iter().enumerate() {
        let bytes = match res {
            Ok(resp) => resp.encode(),
            Err(e) => panic!("counted baseline failed: {e}"),
        };
        assert_eq!(
            bytes, baseline[i],
            "an empty plan must leave replies bit-identical"
        );
    }

    // Background reactor activity (epoll ticks) may consume a few
    // positions between install and the session's first syscall; the
    // sweep still covers every position the session itself can reach.
    let sweep_to = n.min(150);
    let mut injected_total = 0u64;
    for k in 1..=sweep_to {
        sysfault::install(
            SysFaultPlan { seed: k, ..SysFaultPlan::default() }
                .at_global(SysFaultKind::Auto, k),
        );
        let got = run_session(addr);
        let ledger = sysfault::clear();
        injected_total += ledger.len() as u64;
        assert!(
            ledger.len() <= 1,
            "k={k}: a once-only trigger fired {} times",
            ledger.len()
        );
        assert_classified_or_identical(k, &got, &baseline);

        // The daemon must have shrugged the fault off entirely: with
        // the shim disarmed, a fresh client with retries gets the
        // bit-exact Ping back.
        let mut probe =
            Client::connect(addr, policy(), Duration::from_secs(2))
                .expect("probe connect after fault k={k}");
        let pong = probe
            .call_retrying(&Request::Ping)
            .unwrap_or_else(|e| panic!("k={k}: daemon unhealthy: {e}"));
        assert_eq!(pong.encode(), baseline[0], "k={k}: ping diverged");
    }
    assert!(
        injected_total > sweep_to / 2,
        "the sweep must actually inject at most positions \
         ({injected_total}/{sweep_to})"
    );

    server.shutdown();
    let stats = server.wait();
    assert!(stats.served > 4 * sweep_to, "sessions were really served");
}

/// Sustained periodic chaos: every 7th syscall fails (site-plausible,
/// three seeds) while full sessions run back to back. Replies stay
/// bit-identical or classified, and the daemon drains cleanly.
#[test]
fn periodic_errno_chaos_keeps_replies_bit_identical_or_classified() {
    let _g = gate();
    sysfault::clear();

    let server = Server::start(small_study(), None, serve_opts())
        .expect("server start");
    let addr = server.addr();
    let baseline: Vec<Vec<u8>> = run_session(addr)
        .iter()
        .map(|r| match r {
            Ok(resp) => resp.encode(),
            Err(e) => panic!("fault-free baseline failed: {e}"),
        })
        .collect();

    for seed in [1u64, 2, 3] {
        sysfault::install(
            SysFaultPlan { seed, ..SysFaultPlan::default() }.every(
                "*",
                SysFaultKind::Auto,
                7,
            ),
        );
        for _ in 0..4 {
            let got = run_session(addr);
            assert_classified_or_identical(seed, &got, &baseline);
        }
        let ledger = sysfault::clear();
        assert!(
            !ledger.is_empty(),
            "seed {seed}: periodic chaos never fired"
        );
        // Every injection was plausible for its site — the ledger is
        // the ground truth the Auto resolver is held to.
        for rec in &ledger {
            assert!(
                sysfault::plausible_faults(rec.site).contains(&rec.kind),
                "{:?} implausible at {}",
                rec.kind,
                rec.site
            );
        }
    }

    let mut probe = Client::connect(addr, policy(), Duration::from_secs(2))
        .expect("probe connect");
    assert_eq!(
        probe.call_retrying(&Request::Ping).expect("ping").encode(),
        baseline[0]
    );
    server.shutdown();
    server.wait();
}

fn fp() -> RunFingerprint {
    RunFingerprint {
        kind: RunKind::CorruptionSweep,
        corpus: 0xAAAA,
        options: 0xBBBB,
        catalog: 0xCCCC,
        plan: 0xDDDD,
    }
}

fn sample_records(n: usize) -> Vec<JournalRecord> {
    (0..n)
        .map(|i| {
            JournalRecord::SupportSet(
                (0..=(i as u32)).map(|x| x * 3 + 1).collect(),
            )
        })
        .collect()
}

/// The journaled sweep: for every fault kind and every append position,
/// an injected write/fsync failure must either be absorbed (EINTR,
/// short write) leaving the file byte-identical, or fail classified
/// with the handle fail-stopped — and resume must recover the longest
/// valid prefix and replay to a byte-identical final file.
#[test]
fn journal_append_sweep_fails_stop_and_resumes_byte_identical() {
    let _g = gate();
    sysfault::clear();

    let dir = std::env::temp_dir().join(format!(
        "apistudy-sysfaults-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let records = sample_records(6);

    // Fault-free control file.
    let control_path = dir.join("control.apsj");
    let mut control =
        Journal::create(&control_path, &fp()).expect("control create");
    for rec in &records {
        control.append(rec).expect("control append");
    }
    drop(control);
    let control_bytes =
        std::fs::read(&control_path).expect("read control");

    let cases = [
        ("journal.write", SysFaultKind::Eintr, false),
        ("journal.write", SysFaultKind::ShortIo, false),
        ("journal.write", SysFaultKind::Enospc, true),
        ("journal.write", SysFaultKind::Eio, true),
        ("journal.fsync", SysFaultKind::Eio, true),
        ("journal.fsync", SysFaultKind::Enospc, true),
    ];
    for (site, kind, fatal) in cases {
        for k in 1..=records.len() as u64 {
            let path = dir.join(format!(
                "sweep-{}-{}-{k}.apsj",
                site.replace('.', "_"),
                kind.label()
            ));
            sysfault::install(
                SysFaultPlan::default().at_site(site, kind, k),
            );
            let mut journal =
                Journal::create(&path, &fp()).expect("create");
            let mut failed_at: Option<usize> = None;
            for (i, rec) in records.iter().enumerate() {
                match journal.append(rec) {
                    Ok(()) => {}
                    Err(JournalError::Io(e)) => {
                        assert!(
                            fatal,
                            "{site}:{kind}@{k}: absorbable fault \
                             surfaced: {e}"
                        );
                        failed_at = Some(i);
                        break;
                    }
                    Err(other) => panic!(
                        "{site}:{kind}@{k}: wrong class: {other}"
                    ),
                }
            }
            if let Some(i) = failed_at {
                // Fsyncgate: the poisoned handle refuses to continue.
                assert!(journal.poisoned());
                assert!(matches!(
                    journal.append(&records[i]),
                    Err(JournalError::FailStop)
                ));
                drop(journal);
                sysfault::clear();
                // Recovery: resume truncates the unknowable tail to the
                // longest valid prefix, replays what survived, and the
                // re-appended remainder lands byte-identical.
                let (mut resumed, recovered) =
                    Journal::resume(&path, &fp()).expect("resume");
                assert!(recovered.len() >= i, "lost a durable record");
                assert!(recovered.len() <= i + 1);
                for rec in &records[recovered.len()..] {
                    resumed.append(rec).expect("re-append");
                }
                drop(resumed);
            } else {
                assert!(
                    !fatal || k > records.len() as u64,
                    "{site}:{kind}@{k}: fatal fault never surfaced"
                );
                drop(journal);
                sysfault::clear();
            }
            let bytes = std::fs::read(&path).expect("read swept");
            assert_eq!(
                bytes, control_bytes,
                "{site}:{kind}@{k}: final file diverged from control"
            );
            std::fs::remove_file(&path).ok();
        }
    }
    std::fs::remove_file(&control_path).ok();
}

/// The same fsyncgate discipline on the footprint store, driven through
/// the real streaming pipeline: an injected `ENOSPC` mid-store fails
/// the run classified, and resuming completes a store byte-identical
/// to an uninterrupted one.
#[test]
fn store_enospc_mid_run_resumes_byte_identical() {
    let _g = gate();
    sysfault::clear();

    let dir = std::env::temp_dir().join(format!(
        "apistudy-sysfaults-store-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let scale = Scale { packages: 150, installations: 30_000 };
    let (seed, shard) = (2016u64, 32usize);

    let control_path = dir.join("control.apsf");
    let (control_study, _) = Study::run_streamed_stored(
        scale,
        seed,
        shard,
        &control_path,
        false,
    )
    .expect("control run");
    let control_bytes =
        std::fs::read(&control_path).expect("read control");

    for kind in [SysFaultKind::Enospc, SysFaultKind::Eio] {
        let path = dir.join(format!("faulted-{}.apsf", kind.label()));
        // The second shard append dies: the first shard is durable, the
        // torn second must be discarded on resume.
        sysfault::install(
            SysFaultPlan::default().at_site("store.write", kind, 2),
        );
        match Study::run_streamed_stored(scale, seed, shard, &path, false)
        {
            Ok(_) => panic!("the injected append failure must surface"),
            Err(JournalError::Io(_)) => {}
            Err(other) => panic!("wrong class: {other}"),
        }
        sysfault::clear();

        let (resumed_study, stats) = Study::run_streamed_stored(
            scale, seed, shard, &path, true,
        )
        .expect("resume");
        assert!(
            stats.replayed_shards >= 1,
            "resume must replay the durable shard"
        );
        assert_eq!(
            std::fs::read(&path).expect("read resumed"),
            control_bytes,
            "resumed store diverged from control"
        );
        assert_eq!(
            resumed_study.data().packages,
            control_study.data().packages,
            "resumed study diverged from control"
        );
        assert_eq!(
            resumed_study.data().census,
            control_study.data().census,
            "resumed census diverged from control"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&control_path).ok();
}

/// Satellite: the retry loop must never replay a malformed reply. A
/// hostile "server" answers every connection with a checksum-broken
/// frame; `call_retrying` must classify and return after ONE attempt
/// instead of burning the whole backoff budget on deterministic
/// corruption.
#[test]
fn retry_never_replays_a_malformed_reply() {
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    let _g = gate();
    sysfault::clear();

    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accepted = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&accepted);
    let hostile = std::thread::spawn(move || {
        // Serve up to the client's full retry budget; a correct client
        // stops after one. An empty connection is the poison pill the
        // test sends to shut this thread down.
        for _ in 0..5 {
            let Ok((mut conn, _)) = listener.accept() else { return };
            let mut buf = [0u8; 256];
            let n = conn.read(&mut buf).unwrap_or(0);
            if n == 0 {
                return;
            }
            counter.fetch_add(1, Ordering::SeqCst);
            let mut frame = apistudy::core::encode_frame(
                &Response::Pong {
                    fingerprint: 7,
                    generation: 1,
                    packages: 2,
                }
                .encode(),
            );
            let last = frame.len() - 1;
            frame[last] ^= 0xFF; // break the checksum, keep the length
            let _ = conn.write_all(&frame);
            let _ = conn.flush();
        }
    });

    let mut client = Client::connect(
        addr,
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(20),
            seed: 3,
        },
        Duration::from_secs(2),
    )
    .expect("connect");
    let err = client
        .call_retrying(&Request::Ping)
        .expect_err("a checksum-broken reply must fail");
    assert!(
        matches!(&err, ClientError::Frame(FrameError::Checksum)),
        "must classify as checksum corruption, got: {err}"
    );
    assert!(!err.is_retryable(), "corruption must be fatal");
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        1,
        "a fatal classified reply must not be retried"
    );
    drop(client);
    // Poison pill: an empty connection tells the hostile thread to exit.
    drop(std::net::TcpStream::connect(addr).expect("poison connect"));
    hostile.join().expect("hostile server thread");
}

/// Disarmed, the shim intercepts nothing: counters stay zero, the
/// ledger stays empty, and a serve session is bit-identical to itself.
#[test]
fn disarmed_shim_is_a_no_op() {
    let _g = gate();
    sysfault::clear();

    assert_eq!(sysfault::intercepted_count(), 0);
    assert_eq!(sysfault::injected_count(), 0);

    let server = Server::start(small_study(), None, serve_opts())
        .expect("server start");
    let addr = server.addr();
    let first: Vec<Vec<u8>> = run_session(addr)
        .iter()
        .map(|r| r.as_ref().expect("fault-free").encode())
        .collect();
    let second: Vec<Vec<u8>> = run_session(addr)
        .iter()
        .map(|r| r.as_ref().expect("fault-free").encode())
        .collect();
    assert_eq!(first, second, "disarmed sessions must be bit-identical");
    assert_eq!(
        sysfault::intercepted_count(),
        0,
        "a disarmed shim must observe nothing"
    );
    assert!(sysfault::ledger().is_empty());
    server.shutdown();
    server.wait();
}
