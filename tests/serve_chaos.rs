//! Chaos harness for the query daemon, end to end through the real
//! binary: fuzzed bytes, truncated frames, slowloris writers, random
//! disconnects, and a mid-query `kill -9` — after every wave the daemon
//! must still answer, its stderr must show **zero panics**, every client
//! operation must complete within a bound (**zero hangs** — every socket
//! read in this file carries a deadline), and every reply must be
//! **bit-identical** to the direct library call.

use std::collections::HashSet;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use apistudy::catalog::Api;
use apistudy::core::proto::encode_frame;
use apistudy::core::{
    greedy_suggestions, Client, ErrorCode, Request, Response, RetryPolicy,
    Study,
};
use apistudy::corpus::Scale;

/// The daemon's corpus recipe — must match the `--scale 150 --seed 2016`
/// command line (`--scale N` implies `installations = 95·N`).
fn reference_study() -> Study {
    Study::run(Scale { packages: 150, installations: 14_250 }, 2016)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
    fingerprint: u64,
    stderr_path: PathBuf,
}

impl Daemon {
    /// Spawns `apistudy … serve …`, waits for the readiness line, and
    /// parses the bound address and snapshot fingerprint from it.
    fn start(dir: &Path, tag: &str, pre: &[&str], serve: &[&str]) -> Self {
        let stderr_path = dir.join(format!("daemon-{tag}.stderr"));
        let stderr_file =
            std::fs::File::create(&stderr_path).expect("stderr file");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_apistudy"));
        cmd.args(["--scale", "150", "--seed", "2016"]);
        cmd.args(pre);
        cmd.arg("serve");
        cmd.args(serve);
        cmd.stdout(Stdio::piped());
        cmd.stderr(Stdio::from(stderr_file));
        cmd.env_remove("APISTUDY_JOURNAL_CRASH_AFTER");
        cmd.env_remove("APISTUDY_ITEM_DEADLINE_MS");
        cmd.env_remove("APISTUDY_CACHE");
        let mut child = cmd.spawn().expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let ready = lines
            .next()
            .and_then(|l| l.ok())
            .unwrap_or_else(|| {
                let err = std::fs::read_to_string(&stderr_path)
                    .unwrap_or_default();
                panic!("daemon exited before readiness line; stderr:\n{err}")
            });
        let addr: SocketAddr = ready
            .strip_prefix("serving on ")
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable readiness line {ready:?}"));
        let fingerprint = ready
            .split("fingerprint ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .unwrap_or_else(|| panic!("no fingerprint in {ready:?}"));
        Self { child, addr, fingerprint, stderr_path }
    }

    fn client(&self) -> Client {
        Client::connect(
            self.addr,
            RetryPolicy::default(),
            Duration::from_secs(10),
        )
        .expect("connect to daemon")
    }

    /// SIGKILL — the unclean death the store must survive.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 daemon");
        let _ = self.child.wait();
    }

    /// Graceful stop through the protocol, then reap the process.
    fn shutdown(mut self) -> String {
        let mut c = self.client();
        assert!(matches!(
            c.call(&Request::Shutdown).expect("shutdown request"),
            Response::Bye
        ));
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(
                        status.success(),
                        "daemon must exit cleanly after drain: {status:?}"
                    );
                    break;
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon hung past the drain deadline");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        std::fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }

    fn stderr_so_far(&self) -> String {
        std::fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }
}

fn assert_no_panics(stderr: &str) {
    assert!(
        !stderr.to_lowercase().contains("panic"),
        "daemon stderr shows a panic:\n{stderr}"
    );
}

/// Deterministic byte noise (no process randomness: every chaos run is
/// reproducible).
struct Noise(u64);

impl Noise {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 16
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

/// A raw socket with every read deadline-bound — the harness itself must
/// never hang on a wedged daemon; it must fail the test instead.
fn raw_conn(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    s.set_write_timeout(Some(Duration::from_secs(10))).expect("timeout");
    s
}

/// The daemon must answer a ping with the expected identity — the
/// liveness probe after each chaos wave.
fn assert_alive(daemon: &Daemon) {
    let mut c = daemon.client();
    match c.call(&Request::Ping).expect("ping after chaos wave") {
        Response::Pong { fingerprint, .. } => {
            assert_eq!(fingerprint, daemon.fingerprint)
        }
        other => panic!("expected Pong, got {other:?}"),
    }
}

#[test]
fn chaos_waves_never_panic_and_answers_stay_bit_identical() {
    let dir = scratch("waves");
    // A short request deadline makes the slowloris wave fast; chaos
    // connections are cut at ~1.5 s instead of the 5 s default.
    let daemon = Daemon::start(
        &dir,
        "waves",
        &[],
        &["--request-deadline-ms", "1500"],
    );

    // Reference answers computed directly in this process.
    let reference = reference_study();
    let m = reference.metrics();
    let supported: HashSet<u32> = [0u32, 1, 2, 3, 9, 60, 231].into();
    let supported_vec: Vec<u32> = {
        let mut v: Vec<u32> = supported.iter().copied().collect();
        v.sort_unstable();
        v
    };

    let bit_identical = |daemon: &Daemon| {
        let mut c = daemon.client();
        for nr in [0u32, 1, 9, 60] {
            let Response::Importance { importance_bits, unweighted_bits } =
                c.call(&Request::Importance { nr }).expect("importance")
            else {
                panic!("expected Importance reply");
            };
            let api = Api::Syscall(nr);
            assert_eq!(
                importance_bits,
                m.importance(api).to_bits(),
                "importance({nr}) drifted from the library"
            );
            assert_eq!(unweighted_bits, m.unweighted_importance(api).to_bits());
        }
        let Response::Completeness { bits } = c
            .call(&Request::Completeness { supported: supported_vec.clone() })
            .expect("completeness")
        else {
            panic!("expected Completeness reply");
        };
        assert_eq!(bits, m.syscall_completeness(&supported).to_bits());
        let Response::Suggest { picks } = c
            .call(&Request::Suggest {
                supported: supported_vec.clone(),
                limit: 5,
            })
            .expect("suggest")
        else {
            panic!("expected Suggest reply");
        };
        let direct = greedy_suggestions(&m, &supported, 5);
        assert_eq!(
            picks,
            direct
                .into_iter()
                .map(|(nr, g)| (nr, g.to_bits()))
                .collect::<Vec<_>>(),
            "greedy picks drifted from the library"
        );
    };
    bit_identical(&daemon);

    // Wave 1: pure fuzz — garbage bytes, read whatever comes back.
    let mut noise = Noise(0xC4A0_5EED);
    for round in 0..24 {
        let mut s = raw_conn(daemon.addr);
        let garbage = noise.bytes(1 + (round * 37) % 513);
        let _ = s.write_all(&garbage);
        let mut sink = [0u8; 256];
        let _ = std::io::Read::read(&mut s, &mut sink);
    }
    assert_alive(&daemon);
    bit_identical(&daemon);

    // Wave 2: truncated frames — every strict prefix of a valid frame,
    // connection dropped mid-frame.
    let frame = encode_frame(&Request::Ping.encode());
    for cut in 1..frame.len() {
        let mut s = raw_conn(daemon.addr);
        let _ = s.write_all(&frame[..cut]);
        drop(s);
    }
    assert_alive(&daemon);

    // Wave 3: slowloris — a frame dribbled one byte at a time, far slower
    // than the request deadline. The daemon must classify and cut us off,
    // not wait forever.
    let mut s = raw_conn(daemon.addr);
    s.write_all(&frame[..1]).expect("first byte");
    let started = Instant::now();
    let reply = apistudy::core::proto::read_frame(
        &s,
        apistudy::core::ReadBudget {
            idle: Duration::from_secs(15),
            request: Duration::from_secs(15),
        },
        &|| false,
    )
    .expect("the daemon must reply before the harness deadline");
    assert!(
        matches!(
            Response::decode(&reply),
            Some(Response::Err { code: ErrorCode::Deadline, .. })
        ),
        "slowloris must earn a classified Deadline reply"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "slowloris cutoff took too long: {:?}",
        started.elapsed()
    );
    assert_alive(&daemon);

    // Wave 4: random disconnects — valid requests, connection dropped
    // without reading the reply; interleaved with half-written frames.
    for round in 0..24 {
        let mut s = raw_conn(daemon.addr);
        let full = encode_frame(
            &Request::Importance { nr: (round % 300) as u32 }.encode(),
        );
        let cut = if round % 3 == 0 {
            1 + (noise.next() as usize) % (full.len() - 1)
        } else {
            full.len()
        };
        let _ = s.write_all(&full[..cut]);
        drop(s);
    }
    assert_alive(&daemon);
    bit_identical(&daemon);

    // Wave 5: a frame that *claims* the maximum possible length.
    let mut s = raw_conn(daemon.addr);
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.extend_from_slice(&0u64.to_le_bytes());
    s.write_all(&huge).expect("oversize header");
    let reply = apistudy::core::proto::read_frame(
        &s,
        apistudy::core::ReadBudget {
            idle: Duration::from_secs(10),
            request: Duration::from_secs(10),
        },
        &|| false,
    )
    .expect("oversize frames get a reply, not a hang");
    assert!(matches!(
        Response::decode(&reply),
        Some(Response::Err { code: ErrorCode::TooLarge, .. })
    ));
    assert_alive(&daemon);
    bit_identical(&daemon);

    assert_no_panics(&daemon.stderr_so_far());
    let stderr = daemon.shutdown();
    assert_no_panics(&stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mixed-framing load across an atomic snapshot reload: single-frame
/// clients, pipelined clients (many frames written back to back), and
/// Batch-frame clients all hammer the daemon while an admin client
/// triggers a `Reload`. The swap must be invisible — every reply before,
/// during, and after the reload stays bit-identical to the library
/// (the rebuild is deterministic, so the new snapshot answers with the
/// same bits), no client sees an error, and the generation bumps.
#[test]
fn reload_under_mixed_pipelined_and_single_frame_load_stays_bit_identical() {
    use std::sync::atomic::AtomicU64;

    let dir = scratch("reload-mix");
    let daemon = Daemon::start(&dir, "mix", &[], &[]);

    let reference = reference_study();
    let m = reference.metrics();
    let probe_nrs = [0u32, 1, 9, 60];
    let imp_bits: Vec<(u64, u64)> = probe_nrs
        .iter()
        .map(|&nr| {
            let api = Api::Syscall(nr);
            (
                m.importance(api).to_bits(),
                m.unweighted_importance(api).to_bits(),
            )
        })
        .collect();
    let supported_vec = vec![0u32, 1, 2, 3, 9, 60, 231];
    let supported: HashSet<u32> = supported_vec.iter().copied().collect();
    let completeness_bits = m.syscall_completeness(&supported).to_bits();

    // One probe-mix request and its bit-exact check, shared by all three
    // client shapes (index-stable so pipelined/batch replies line up).
    let request_at = |i: usize| -> Request {
        match i % 6 {
            0 => Request::Ping,
            5 => Request::Completeness { supported: supported_vec.clone() },
            k => Request::Importance { nr: probe_nrs[k % probe_nrs.len()] },
        }
    };
    let check_at = |i: usize, resp: &Response| match (i % 6, resp) {
        (0, Response::Pong { fingerprint, .. }) => {
            assert_eq!(*fingerprint, daemon.fingerprint, "fingerprint drift")
        }
        (5, Response::Completeness { bits }) => {
            assert_eq!(*bits, completeness_bits, "completeness drifted")
        }
        (k, Response::Importance { importance_bits, unweighted_bits }) => {
            assert_eq!(
                (*importance_bits, *unweighted_bits),
                imp_bits[k % probe_nrs.len()],
                "importance drifted mid-reload"
            );
        }
        (_, other) => panic!("unexpected reply {other:?}"),
    };

    let stop = AtomicBool::new(false);
    let rounds = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let all_past = |floor: [u64; 3]| {
        rounds
            .iter()
            .zip(floor)
            .all(|(r, f)| r.load(Ordering::SeqCst) >= f + 3)
    };

    std::thread::scope(|s| {
        // Shape 0: single-frame clients, one call per round trip.
        for t in 0..2 {
            let (stop, rounds) = (&stop, &rounds);
            let (request_at, check_at) = (&request_at, &check_at);
            let addr = daemon.addr;
            s.spawn(move || {
                let mut c = Client::connect(
                    addr,
                    RetryPolicy::default(),
                    Duration::from_secs(10),
                )
                .expect("single-frame client connects");
                let mut i = t;
                while !stop.load(Ordering::SeqCst) {
                    let resp = c
                        .call(&request_at(i))
                        .expect("single-frame call survives reload");
                    check_at(i, &resp);
                    i += 1;
                    rounds[0].fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Shape 1: pipelined clients — 12 frames written back to back,
        // replies read in order.
        for t in 0..2 {
            let (stop, rounds) = (&stop, &rounds);
            let (request_at, check_at) = (&request_at, &check_at);
            let addr = daemon.addr;
            s.spawn(move || {
                let mut c = Client::connect(
                    addr,
                    RetryPolicy::default(),
                    Duration::from_secs(10),
                )
                .expect("pipelined client connects");
                let reqs: Vec<Request> =
                    (t..t + 12).map(request_at).collect();
                while !stop.load(Ordering::SeqCst) {
                    let replies = c
                        .call_pipelined(&reqs)
                        .expect("pipelined wave survives reload");
                    for (k, resp) in replies.iter().enumerate() {
                        check_at(t + k, resp);
                    }
                    rounds[1].fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        }
        // Shape 2: batch clients — one 16-wide Batch frame per round.
        for t in 0..2 {
            let (stop, rounds) = (&stop, &rounds);
            let (request_at, check_at) = (&request_at, &check_at);
            let addr = daemon.addr;
            s.spawn(move || {
                let mut c = Client::connect(
                    addr,
                    RetryPolicy::default(),
                    Duration::from_secs(10),
                )
                .expect("batch client connects");
                let reqs: Vec<Request> =
                    (t..t + 16).map(request_at).collect();
                while !stop.load(Ordering::SeqCst) {
                    let replies = c
                        .call_batch(&reqs)
                        .expect("batch frame survives reload");
                    for (k, resp) in replies.iter().enumerate() {
                        check_at(t + k, resp);
                    }
                    rounds[2].fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        }

        // Let every shape make progress, then reload mid-flight.
        let flowing = Instant::now() + Duration::from_secs(10);
        while !all_past([0, 0, 0]) {
            assert!(Instant::now() < flowing, "load never started flowing");
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut admin = Client::connect(
            daemon.addr,
            RetryPolicy::default(),
            Duration::from_secs(60),
        )
        .expect("admin client connects");
        let Response::Pong { generation: gen_before, .. } =
            admin.call(&Request::Ping).expect("pre-reload ping")
        else {
            panic!("expected Pong");
        };
        let at_reload = [
            rounds[0].load(Ordering::SeqCst),
            rounds[1].load(Ordering::SeqCst),
            rounds[2].load(Ordering::SeqCst),
        ];
        match admin
            .call(&Request::Reload {
                expect_fingerprint: daemon.fingerprint,
            })
            .expect("reload completes under load")
        {
            Response::Reload { fingerprint, generation } => {
                assert_eq!(
                    fingerprint, daemon.fingerprint,
                    "deterministic rebuild must land on the same identity"
                );
                assert!(generation > gen_before, "generation must bump");
            }
            other => panic!("expected Reload reply, got {other:?}"),
        }
        // Every shape must keep answering bit-identically on the new
        // snapshot before the wave is allowed to stop.
        let recovered = Instant::now() + Duration::from_secs(20);
        while !all_past(at_reload) {
            assert!(
                Instant::now() < recovered,
                "clients stalled after the reload swap"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
    });

    assert_no_panics(&daemon.stderr_so_far());
    let stderr = daemon.shutdown();
    assert_no_panics(&stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Errno chaos through the real binary: the daemon runs with the
/// syscall-fault shim armed (`--sys-faults "*:auto@every7"`, three
/// seeds), injecting a site-plausible errno — `EINTR`, `EAGAIN`, short
/// I/O, `EMFILE`, `ENOMEM` — into every 7th shimmed syscall while
/// clients hammer real queries. Every reply must be bit-identical to
/// the direct library call or a classified error, the daemon must
/// drain cleanly, and its stderr must show zero panics and a non-zero
/// injection ledger.
///
/// The period is deliberately co-prime with the reactor's accept cycle
/// (5 shimmed syscalls per idle accept): a period of 5 *resonates* —
/// the injection lands on `epoll_ctl(ADD)` for every single new
/// connection, each one correctly classified `Busy` but availability
/// pinned at zero. With 7, the phase walks and every path gets hit.
#[test]
fn errno_chaos_replies_stay_bit_identical_or_classified() {
    let reference = reference_study();
    let m = reference.metrics();
    let probe_nrs = [0u32, 1, 9, 60];
    let imp_bits: Vec<u64> = probe_nrs
        .iter()
        .map(|&nr| m.importance(Api::Syscall(nr)).to_bits())
        .collect();

    for seed in [0xC4A0u64, 0xC4A1, 0xC4A2] {
        let dir = scratch(&format!("errno-{seed:x}"));
        let spec = format!("*:auto@every7;seed={seed}");
        let daemon = Daemon::start(
            &dir,
            "errno",
            &[],
            &["--request-deadline-ms", "1500", "--sys-faults", &spec],
        );

        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(200),
            seed,
        };
        let mut clean = 0u32;
        let mut classified = 0u32;
        for round in 0..30u32 {
            // Fresh connections each round keep the accept path (and
            // its EMFILE pause/resume machinery) in the blast radius.
            let Ok(mut c) = Client::connect(
                daemon.addr,
                policy,
                Duration::from_secs(10),
            ) else {
                classified += 1;
                continue;
            };
            let nr = probe_nrs[(round as usize) % probe_nrs.len()];
            match c.call_retrying(&Request::Importance { nr }) {
                Ok(Response::Importance { importance_bits, .. }) => {
                    assert_eq!(
                        importance_bits,
                        imp_bits[(round as usize) % probe_nrs.len()],
                        "seed {seed:#x} round {round}: importance({nr}) \
                         drifted under errno chaos"
                    );
                    clean += 1;
                }
                Ok(Response::Err { .. }) | Err(_) => classified += 1,
                Ok(other) => panic!(
                    "seed {seed:#x}: unexpected reply {other:?}"
                ),
            }
        }
        // Injected faults are absorbable or classified-and-recoverable;
        // with retries the overwhelming majority of rounds must land.
        assert!(
            clean >= 24,
            "seed {seed:#x}: only {clean}/30 rounds succeeded \
             ({classified} classified)"
        );
        // Liveness probe, chaos-tolerant: the shim is still armed, so
        // the probe's own connection registration can eat an injected
        // fault and come back classified (`busy`) — retry on a fresh
        // connection until a Pong lands.
        let mut alive = false;
        for _ in 0..10 {
            let mut c = daemon.client();
            match c.call(&Request::Ping) {
                Ok(Response::Pong { fingerprint, .. }) => {
                    assert_eq!(fingerprint, daemon.fingerprint);
                    alive = true;
                    break;
                }
                Ok(Response::Err { .. }) | Err(_) => continue,
                Ok(other) => panic!(
                    "seed {seed:#x}: liveness probe got {other:?}"
                ),
            }
        }
        assert!(alive, "seed {seed:#x}: no Pong in 10 liveness probes");

        // Graceful stop, retried: the Shutdown call itself can eat an
        // injected fault and come back classified. Bye means this call
        // won the drain; Draining means an earlier attempt already did.
        let mut acked = false;
        for _ in 0..10 {
            let Ok(mut c) = Client::connect(
                daemon.addr,
                policy,
                Duration::from_secs(5),
            ) else {
                break; // refused: the daemon is already exiting
            };
            match c.call(&Request::Shutdown) {
                Ok(Response::Bye)
                | Ok(Response::Err { code: ErrorCode::Draining, .. }) => {
                    acked = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        assert!(acked, "seed {seed:#x}: shutdown never acknowledged");
        let mut daemon = daemon;
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match daemon.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(
                        status.success(),
                        "daemon must drain cleanly under chaos: {status:?}"
                    );
                    break;
                }
                None if Instant::now() > deadline => {
                    daemon.child.kill().ok();
                    panic!("daemon hung past the drain deadline");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let stderr = daemon.stderr_so_far();
        assert_no_panics(&stderr);
        assert!(
            stderr.contains("sys-faults armed"),
            "daemon must log the armed plan:\n{stderr}"
        );
        let injected: u64 = stderr
            .lines()
            .find_map(|l| l.strip_prefix("sys-faults injected: "))
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| {
                panic!("no injection ledger in stderr:\n{stderr}")
            });
        assert!(
            injected > 0,
            "seed {seed:#x}: periodic chaos never fired"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill9_mid_query_then_restart_from_store_reconnects_bit_identical() {
    let dir = scratch("kill9");
    let store = dir.join("footprints.apsf");
    let store_arg = store.to_str().expect("utf8 path");

    // Boot 1 creates the store; boot 2 must replay it after the kill.
    let mut first =
        Daemon::start(&dir, "boot1", &["--store", store_arg], &[]);

    let reference = reference_study();
    let m = reference.metrics();
    let expect_bits = m.importance(Api::Syscall(1)).to_bits();

    // A client hammering queries across the kill: every *successful*
    // reply — before the crash, and after reconnecting via backoff —
    // must carry the exact reference bits.
    let addr_slot = Arc::new(Mutex::new(first.addr));
    let stop = Arc::new(AtomicBool::new(false));
    let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(AtomicBool::new(false));
    let worker = {
        let addr_slot = Arc::clone(&addr_slot);
        let stop = Arc::clone(&stop);
        let results = Arc::clone(&results);
        let failures = Arc::clone(&failures);
        std::thread::spawn(move || {
            let policy = RetryPolicy {
                attempts: 4,
                base: Duration::from_millis(25),
                cap: Duration::from_millis(400),
                seed: 0xC11E,
            };
            while !stop.load(Ordering::SeqCst) {
                let addr = *addr_slot.lock().expect("addr slot");
                let Ok(mut client) =
                    Client::connect(addr, policy, Duration::from_secs(5))
                else {
                    // Daemon down: backoff already applied inside
                    // connect; note the outage and retry.
                    failures.store(true, Ordering::SeqCst);
                    continue;
                };
                while !stop.load(Ordering::SeqCst) {
                    match client.call(&Request::Importance { nr: 1 }) {
                        Ok(Response::Importance { importance_bits, .. }) => {
                            results
                                .lock()
                                .expect("results")
                                .push(importance_bits);
                        }
                        _ => {
                            // Mid-query death: classified on this side as
                            // a transport error, never a hang.
                            failures.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
    };

    // Let queries flow, then kill -9 mid-stream.
    let flowing = Instant::now() + Duration::from_secs(2);
    while results.lock().expect("results").len() < 5 {
        assert!(Instant::now() < flowing, "no queries flowed before kill");
        std::thread::sleep(Duration::from_millis(20));
    }
    first.kill9();
    let killed_at = results.lock().expect("results").len();

    // Restart against the same store; completed shards replay instead of
    // recomputing.
    let second = Daemon::start(
        &dir,
        "boot2",
        &["--resume", "--store", store_arg],
        &[],
    );
    assert_eq!(
        second.fingerprint, first.fingerprint,
        "restart must serve the same sealed world"
    );
    assert!(
        second.stderr_so_far().contains("replayed"),
        "boot 2 must replay the store, not recompute:\n{}",
        second.stderr_so_far()
    );
    *addr_slot.lock().expect("addr slot") = second.addr;

    // The worker must reconnect (via its backoff policy) and produce
    // fresh successful replies.
    let recovered = Instant::now() + Duration::from_secs(30);
    while results.lock().expect("results").len() < killed_at + 5 {
        assert!(
            Instant::now() < recovered,
            "client never recovered after restart"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    worker.join().expect("worker thread");

    assert!(
        failures.load(Ordering::SeqCst),
        "the kill must have been observed as at least one failed call"
    );
    let all = results.lock().expect("results");
    assert!(all.len() >= killed_at + 5);
    for (i, bits) in all.iter().enumerate() {
        assert_eq!(
            *bits, expect_bits,
            "reply {i} drifted from the reference bits"
        );
    }
    drop(all);

    // The first daemon died by SIGKILL — no panic may appear in either
    // log for any other reason.
    assert_no_panics(
        &std::fs::read_to_string(dir.join("daemon-boot1.stderr"))
            .unwrap_or_default(),
    );
    let stderr = second.shutdown();
    assert_no_panics(&stderr);
    let _ = std::fs::remove_dir_all(&dir);
}
