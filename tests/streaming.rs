//! Streaming-pipeline integration: the sharded path must be
//! *bit-identical* to the in-memory path — packages, census,
//! attribution, importance, and weighted completeness — and the on-disk
//! footprint store must replay shards without moving a single bit.

use std::collections::HashSet;
use std::path::PathBuf;

use apistudy::catalog::Api;
use apistudy::core::{JournalError, Metrics, Study, StudyData};
use apistudy::corpus::Scale;

fn tmp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "apistudy-streaming-{}-{tag}.apsf",
        std::process::id()
    ))
}

/// Field-by-field bit equality of two study datasets. Diagnostics are
/// compared only on work accounting (cache counters and the RSS
/// observation legitimately differ between paths).
fn assert_data_identical(a: &StudyData, b: &StudyData, what: &str) {
    assert_eq!(a.packages, b.packages, "{what}: package records");
    for (pa, pb) in a.packages.iter().zip(&b.packages) {
        assert_eq!(
            pa.prob.to_bits(),
            pb.prob.to_bits(),
            "{what}: probability bits for {}",
            pa.name
        );
    }
    assert_eq!(a.by_name, b.by_name, "{what}: name index");
    assert_eq!(a.census, b.census, "{what}: census");
    assert_eq!(a.attribution, b.attribution, "{what}: attribution");
    assert_eq!(
        a.total_installations, b.total_installations,
        "{what}: installations"
    );
    assert_eq!(
        a.unresolved_syscall_sites, b.unresolved_syscall_sites,
        "{what}: unresolved sites"
    );
    assert_eq!(
        a.resolved_syscall_sites, b.resolved_syscall_sites,
        "{what}: resolved sites"
    );
    assert_eq!(
        a.diagnostics.analyzed_binaries, b.diagnostics.analyzed_binaries,
        "{what}: analyzed binaries"
    );
    assert_eq!(
        a.diagnostics.total_skipped(),
        b.diagnostics.total_skipped(),
        "{what}: skips"
    );
}

/// The acceptance gate: importance and weighted completeness agree to
/// the last bit for every syscall in the catalog.
fn assert_metrics_bit_identical(a: &StudyData, b: &StudyData, what: &str) {
    let ma = Metrics::new(a);
    let mb = Metrics::new(b);
    for def in a.catalog.syscalls.iter() {
        let api = Api::Syscall(def.number);
        assert_eq!(
            ma.importance(api).to_bits(),
            mb.importance(api).to_bits(),
            "{what}: importance bits for {}",
            def.name
        );
        assert_eq!(
            ma.unweighted_importance(api).to_bits(),
            mb.unweighted_importance(api).to_bits(),
            "{what}: unweighted importance bits for {}",
            def.name
        );
    }
    for top in [0u32, 50, 150, 250, 323] {
        let supported: HashSet<u32> = (0..top).collect();
        assert_eq!(
            ma.syscall_completeness(&supported).to_bits(),
            mb.syscall_completeness(&supported).to_bits(),
            "{what}: weighted completeness bits at top-{top}"
        );
    }
}

#[test]
fn sharded_matches_in_memory_at_150() {
    let scale = Scale { packages: 150, installations: 30_000 };
    let inmem = Study::run(scale, 2016);
    // 32 does not divide 150: the last shard is short, and libc6's
    // system libraries cross into every other shard via the base.
    let sharded = Study::run_streamed(scale, 2016, 32);
    assert_data_identical(inmem.data(), sharded.data(), "150/shard-32");
    assert_metrics_bit_identical(inmem.data(), sharded.data(), "150/shard-32");
}

#[test]
fn sharded_matches_in_memory_at_600() {
    let scale = Scale { packages: 600, installations: 100_000 };
    let inmem = Study::run(scale, 2016);
    let sharded = Study::run_streamed(scale, 2016, 256);
    assert_data_identical(inmem.data(), sharded.data(), "600/shard-256");
    assert_metrics_bit_identical(inmem.data(), sharded.data(), "600/shard-256");
}

#[test]
fn single_whole_corpus_shard_is_the_in_memory_path() {
    let scale = Scale { packages: 150, installations: 30_000 };
    let inmem = Study::run(scale, 7);
    let one_shard = Study::run_streamed(scale, 7, 0);
    assert_data_identical(inmem.data(), one_shard.data(), "150/one-shard");
}

#[test]
fn store_resume_replays_every_shard_bit_identically() {
    let path = tmp_store("replay");
    std::fs::remove_file(&path).ok();
    let scale = Scale { packages: 150, installations: 30_000 };
    let (first, st1) =
        Study::run_streamed_stored(scale, 2016, 32, &path, false)
            .expect("fresh stored run");
    assert_eq!(st1.replayed_shards, 0);
    assert_eq!(st1.computed_shards, 5, "ceil(150/32)");
    assert_eq!(
        st1.stored_shards, 5,
        "a clean run persists every shard"
    );
    let (second, st2) = Study::run_streamed_stored(scale, 2016, 32, &path, true)
        .expect("resumed run");
    assert_eq!(st2.replayed_shards, 5, "everything replays");
    assert_eq!(st2.computed_shards, 0);
    assert_eq!(st2.replayed_packages, 150);
    assert_data_identical(first.data(), second.data(), "stored-replay");
    assert_metrics_bit_identical(first.data(), second.data(), "stored-replay");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_store_recomputes_only_the_lost_tail() {
    let path = tmp_store("torn");
    std::fs::remove_file(&path).ok();
    let scale = Scale { packages: 150, installations: 30_000 };
    let (first, _) = Study::run_streamed_stored(scale, 2016, 32, &path, false)
        .expect("fresh stored run");
    // Tear the file mid-record: the final shard loses its commit marker
    // and must be recomputed; the earlier shards replay.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let (second, st) = Study::run_streamed_stored(scale, 2016, 32, &path, true)
        .expect("resumed over torn store");
    assert_eq!(st.replayed_shards, 4, "four shards survive the tear");
    assert_eq!(st.computed_shards, 1, "the torn shard recomputes");
    assert_eq!(st.stored_shards, 1, "and is re-persisted");
    assert_data_identical(first.data(), second.data(), "torn-resume");
    assert_metrics_bit_identical(first.data(), second.data(), "torn-resume");
    // The store is whole again: a further resume replays everything.
    let (_, st3) = Study::run_streamed_stored(scale, 2016, 32, &path, true)
        .expect("second resume");
    assert_eq!(st3.replayed_shards, 5);
    std::fs::remove_file(&path).ok();
}

#[test]
fn store_from_a_different_run_is_refused() {
    let path = tmp_store("fingerprint");
    std::fs::remove_file(&path).ok();
    let scale = Scale { packages: 150, installations: 30_000 };
    Study::run_streamed_stored(scale, 2016, 32, &path, false)
        .expect("fresh stored run");
    // Different seed → different corpus fingerprint.
    match Study::run_streamed_stored(scale, 2017, 32, &path, true) {
        Err(JournalError::FingerprintMismatch { .. }) => {}
        other => panic!("expected fingerprint mismatch, got {:?}", other.err()),
    }
    // Different shard geometry → different plan fingerprint (stored
    // shard boundaries would not line up with the resuming run's).
    match Study::run_streamed_stored(scale, 2016, 64, &path, true) {
        Err(JournalError::FingerprintMismatch { .. }) => {}
        other => panic!("expected fingerprint mismatch, got {:?}", other.err()),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn shard_ranges_partition_the_corpus() {
    use apistudy::core::shard_ranges;
    for (n, size) in [(150usize, 32usize), (600, 256), (5, 512), (7, 7), (9, 1)]
    {
        let ranges = shard_ranges(n, size);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous");
            assert_eq!(w[0].len(), size, "only the last shard may be short");
        }
    }
    assert_eq!(shard_ranges(10, 0).len(), 1, "0 means one whole-corpus shard");
    assert!(shard_ranges(0, 16).is_empty());
}
