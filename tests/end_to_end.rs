//! End-to-end integration: generate a corpus, run the full pipeline, and
//! assert the headline shapes of every experiment family — the cross-crate
//! contract the `repro` harness and EXPERIMENTS.md rely on.

use std::collections::HashSet;

use apistudy::catalog::{Api, ApiKind, SyscallStatus};
use apistudy::compat;
use apistudy::core::{
    footprints, libc_restructure::restructure, planner::CompletenessCurve,
    Metrics, Study,
};
use apistudy::corpus::Scale;

fn study() -> Study {
    Study::run(Scale { packages: 600, installations: 100_000 }, 2016)
}

#[test]
fn headline_shapes_hold_end_to_end() {
    let study = study();
    let metrics = study.metrics();
    let data = study.data();

    // ---- Figure 2: the importance bands over system calls -------------
    let ranking = metrics.importance_ranking(ApiKind::Syscall);
    let values: Vec<f64> = ranking.iter().map(|&(_, v)| v).collect();
    let indispensable = values.iter().filter(|&&v| v >= 0.9995).count();
    let above10 = values.iter().filter(|&&v| v >= 0.10).count();
    let unused = values.iter().filter(|&&v| v == 0.0).count();
    assert!(
        (214..=234).contains(&indispensable),
        "indispensable {indispensable} (paper: 224)"
    );
    assert!((245..=270).contains(&above10), "above 10% {above10} (paper: 257)");
    assert_eq!(unused, 18, "unused (paper: 18)");

    // ---- Table 3: the unused calls are exactly the paper's ------------
    for name in ["sysfs", "remap_file_pages", "mq_notify", "lookup_dcookie",
                 "restart_syscall", "move_pages", "get_robust_list",
                 "rt_tgsigqueueinfo"] {
        let nr = data.catalog.syscalls.number_of(name).unwrap();
        assert_eq!(
            metrics.importance(Api::Syscall(nr)),
            0.0,
            "{name} must be unused"
        );
    }
    // Retired calls are still attempted (non-zero importance).
    for def in data.catalog.syscalls.iter() {
        if def.status == SyscallStatus::Retired {
            assert!(
                metrics.importance(Api::Syscall(def.number)) > 0.0,
                "{} retired but should still be attempted",
                def.name
            );
        }
    }

    // ---- Table 1/2 pins ------------------------------------------------
    let mbind = study.syscall("mbind").unwrap();
    let imp = metrics.importance(mbind);
    assert!((0.30..0.45).contains(&imp), "mbind {imp} (paper: 36%)");
    let names: Vec<String> = metrics
        .dependents(mbind)
        .iter()
        .take(2)
        .map(|p| p.name.clone())
        .collect();
    assert!(names.contains(&"libnuma".to_owned()), "mbind via {names:?}");

    let kexec = study.syscall("kexec_load").unwrap();
    let imp = metrics.importance(kexec);
    assert!((0.005..0.05).contains(&imp), "kexec_load {imp} (paper: 1%)");

    // ---- Figure 3: completeness curve knees -----------------------------
    let curve = CompletenessCurve::compute(&metrics);
    assert!(curve.at(30) < 0.01, "nothing runs below ~40 calls");
    let at81 = curve.at(81);
    let at145 = curve.at(145);
    let at202 = curve.at(202);
    assert!((0.03..0.25).contains(&at81), "at 81: {at81} (paper 10.7%)");
    assert!((0.35..0.65).contains(&at145), "at 145: {at145} (paper 50.1%)");
    assert!(at202 > 0.70, "at 202: {at202} (paper 90.6%)");
    assert!((curve.at(323) - 1.0).abs() < 1e-9);

    // ---- Figures 4/5: vectored opcodes ---------------------------------
    let ioctl_vals: Vec<f64> = metrics
        .importance_ranking(ApiKind::Ioctl)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let ioctl_universal = ioctl_vals.iter().filter(|&&v| v >= 0.97).count();
    let ioctl_used = ioctl_vals.iter().filter(|&&v| v > 0.0).count();
    assert!(
        (40..=70).contains(&ioctl_universal),
        "universal ioctls {ioctl_universal} (paper: 52)"
    );
    assert!(
        (240..=320).contains(&ioctl_used),
        "used ioctls {ioctl_used} (paper: 280)"
    );
    assert_eq!(ioctl_vals.len(), 635, "defined ioctls (paper: 635)");

    let fcntl_universal = metrics
        .importance_ranking(ApiKind::Fcntl)
        .into_iter()
        .filter(|&(_, v)| v >= 0.97)
        .count();
    assert!(
        (8..=14).contains(&fcntl_universal),
        "universal fcntl {fcntl_universal} (paper: 11)"
    );

    // ---- Figure 7: libc symbol bands ------------------------------------
    let libc_vals: Vec<f64> = metrics
        .importance_ranking(ApiKind::LibcSymbol)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let n = libc_vals.len() as f64;
    assert_eq!(libc_vals.len(), 1274);
    let at100 = libc_vals.iter().filter(|&&v| v >= 0.97).count() as f64 / n;
    let below1 = libc_vals.iter().filter(|&&v| v < 0.01).count() as f64 / n;
    assert!((0.35..0.55).contains(&at100), "libc @100%: {at100} (paper 42.8%)");
    assert!((0.30..0.50).contains(&below1), "libc <1%: {below1} (paper 39.7%)");

    // ---- §3.5: restructuring -------------------------------------------
    let report = restructure(&metrics, 0.90);
    assert!(
        (500..=1000).contains(&report.retained),
        "retained {} (paper: 889)",
        report.retained
    );
    assert!(
        (0.40..0.85).contains(&report.size_fraction),
        "size {} (paper: 63%)",
        report.size_fraction
    );
    assert!(
        report.completeness > 0.5,
        "stripped completeness {} (paper: 90.7%)",
        report.completeness
    );

    // ---- Table 6 ---------------------------------------------------------
    let uml = compat::user_mode_linux(&metrics).completeness(&metrics);
    let l4 = compat::l4linux(&metrics).completeness(&metrics);
    let bsd = compat::freebsd_emulation(&metrics).completeness(&metrics);
    let gra = compat::graphene(&metrics);
    let gra_base = gra.completeness(&metrics);
    let gra_plus = gra
        .with_added(&metrics, &["sched_setscheduler", "sched_setparam"])
        .completeness(&metrics);
    assert!(uml > 0.85, "UML {uml} (paper 93.1%)");
    assert!(l4 > uml, "L4Linux {l4} above UML (paper 99.3%)");
    assert!((0.45..0.85).contains(&bsd), "FreeBSD {bsd} (paper 62.3%)");
    assert!(gra_base < 0.05, "Graphene {gra_base} (paper 0.42%)");
    assert!(
        gra_plus > gra_base + 0.05,
        "Graphene jump {gra_base} -> {gra_plus} (paper 0.42% -> 21.1%)"
    );

    // ---- Table 7 ----------------------------------------------------------
    let eglibc = compat::eglibc(&metrics);
    assert!((eglibc.completeness(&metrics, false) - 1.0).abs() < 1e-9);
    for v in [compat::uclibc(&metrics), compat::musl(&metrics)] {
        let raw = v.completeness(&metrics, false);
        let norm = v.completeness(&metrics, true);
        assert!(raw < 0.10, "{} raw {raw} (paper 1.1%)", v.name);
        assert!(
            (0.20..0.80).contains(&norm),
            "{} normalized {norm} (paper ~42%)",
            v.name
        );
    }
    let diet = compat::dietlibc(&metrics);
    assert!(diet.completeness(&metrics, true) < 0.02, "dietlibc (paper 0%)");

    // ---- Figure 8 ----------------------------------------------------------
    let mut unweighted: Vec<f64> = data
        .catalog
        .syscalls
        .iter()
        .map(|d| metrics.unweighted_importance(Api::Syscall(d.number)))
        .collect();
    unweighted.sort_by(|a, b| b.total_cmp(a));
    let by_all = unweighted.iter().filter(|&&v| v >= 0.95).count();
    let above10 = unweighted.iter().filter(|&&v| v >= 0.10).count();
    assert!((38..=60).contains(&by_all), "by-all {by_all} (paper: 40)");
    assert!((110..=200).contains(&above10), "≥10% {above10} (paper: 130)");

    // ---- Tables 8–11: every pair keeps the paper's winner ----------------
    let u = |name: &str| {
        metrics.unweighted_importance(study.syscall(name).unwrap())
    };
    assert!(u("setresuid") > u("setuid"), "Table 8 id-management");
    assert!(u("access") > u("faccessat"), "Table 8 TOCTTOU");
    assert!(u("mkdir") > u("mkdirat"));
    assert!(u("getdents") > u("getdents64"), "Table 9");
    assert!(u("clone") > u("fork"));
    assert!(u("wait4") > u("waitid"));
    assert!(u("readv") > u("preadv"), "Table 10");
    assert!(u("poll") > u("ppoll"));
    assert!(u("recvmsg") > u("recvmmsg"));
    assert!(u("read") > u("pread64"), "Table 11");
    assert!(u("dup2") > u("dup3"));
    assert!(u("select") > u("pselect6"));
    assert!(u("chdir") > u("fchdir"));

    // ---- §6: uniqueness ----------------------------------------------------
    let stats = footprints::uniqueness(data);
    assert_eq!(stats.applications, 600);
    assert!(
        stats.distinct as f64 >= 0.25 * stats.applications as f64,
        "distinct {} (paper: ~37%)",
        stats.distinct
    );
    assert!(
        stats.distinct < stats.applications,
        "templates must create duplicate footprints"
    );
    assert!(stats.unique > 0 && stats.unique <= stats.distinct);

    // ---- §2.4: unresolved sites stay rare ----------------------------------
    let total = data.unresolved_syscall_sites + data.resolved_syscall_sites;
    let ratio = data.unresolved_syscall_sites as f64 / total.max(1) as f64;
    assert!(ratio < 0.08, "unresolved ratio {ratio} (paper: 4%)");
}

#[test]
fn qemu_is_the_most_demanding_application() {
    let study = study();
    let data = study.data();
    let qemu = data.package("qemu").expect("qemu exists");
    let qemu_calls = qemu.footprint.syscalls().count();
    assert!(
        (250..=290).contains(&qemu_calls),
        "qemu footprint {qemu_calls} (paper: 270)"
    );
    let max_other = data
        .packages
        .iter()
        .filter(|p| p.name != "qemu")
        .map(|p| p.footprint.syscalls().count())
        .max()
        .unwrap();
    assert!(qemu_calls >= max_other);
}

#[test]
fn seccomp_profiles_are_sound() {
    let study = study();
    let data = study.data();
    // Every generated profile is sorted, deduplicated, and contains the
    // startup set for dynamically linked packages.
    for name in ["coreutils", "dash", "qemu", "kexec-tools"] {
        let profile = footprints::seccomp_profile(data, name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(!profile.is_empty(), "{name} profile empty");
        assert!(profile.windows(2).all(|w| w[0] < w[1]), "{name} not sorted");
        assert!(profile.contains(&"exit_group"), "{name} lacks exit_group");
    }
}

#[test]
fn determinism_across_runs() {
    let a = study();
    let b = study();
    let ma = Metrics::new(a.data());
    let mb = Metrics::new(b.data());
    for name in ["read", "mbind", "access", "nfsservctl"] {
        let api_a = a.syscall(name).unwrap();
        let api_b = b.syscall(name).unwrap();
        assert_eq!(ma.importance(api_a), mb.importance(api_b), "{name}");
        assert_eq!(
            ma.unweighted_importance(api_a),
            mb.unweighted_importance(api_b),
            "{name}"
        );
    }
    let ca = CompletenessCurve::compute(&ma);
    let cb = CompletenessCurve::compute(&mb);
    assert_eq!(ca.ranking, cb.ranking);
    assert_eq!(ca.points, cb.points);
}

#[test]
fn interpreter_inheritance_gates_script_packages() {
    let study = study();
    let data = study.data();
    let metrics = Metrics::new(data);
    // A package with Python scripts cannot be more complete than the
    // Python interpreter itself: if the interpreter breaks, so does it.
    let python = data.package("python2.7").expect("interpreter");
    let python_fp: HashSet<u32> = python.footprint.syscalls().collect();
    let consumer = data
        .packages
        .iter()
        .find(|p| {
            p.script_interpreters.iter().any(|i| i == "python2.7")
                && p.name != "python2.7"
        })
        .expect("some package ships python scripts");
    let consumer_fp: HashSet<u32> = consumer.footprint.syscalls().collect();
    assert!(
        python_fp.is_subset(&consumer_fp),
        "script package must inherit the interpreter footprint"
    );
    // And supporting everything except one python-only call must break it.
    let missing = *python_fp.iter().max().unwrap();
    let supported: HashSet<u32> = (0..400).filter(|&n| n != missing).collect();
    let c = metrics.syscall_completeness(&supported);
    assert!(c < 1.0, "missing interpreter call must cost completeness");
}
