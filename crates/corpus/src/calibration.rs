//! Calibration of the synthetic corpus to the paper's published marginals.
//!
//! Everything the generator needs to know about the *shape* of Ubuntu
//! 15.04 lives here: the Figure 1 language mix, the tier structure of
//! system call importance (224 indispensable / 33 mid / 48 low / 18
//! unused), the canonical importance ranking (anchored on Table 4's stage
//! samples), per-syscall adoption rates (Tables 8–11), libc symbol
//! popularity buckets (§3.5), vectored-opcode tiers (Figures 4–5),
//! pseudo-file prominence (Figure 6), the Figure 3 footprint-breadth
//! distribution, and the Table 1/2 special-purpose package pins.
//!
//! Scale (package and installation counts) is separate from calibration:
//! tests run a small corpus with the same shape.

/// Corpus scale: how many packages and surveyed installations to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of generated packages (the paper's archive has 30,976).
    pub packages: usize,
    /// Number of surveyed installations (the paper's popcon has 2,935,744).
    pub installations: u64,
}

impl Scale {
    /// Small scale for unit/integration tests (same shape, ~2 s to build).
    pub fn test() -> Self {
        Self { packages: 600, installations: 100_000 }
    }

    /// Medium scale for local experimentation.
    pub fn medium() -> Self {
        Self { packages: 4_000, installations: 500_000 }
    }

    /// The paper's full scale.
    pub fn paper() -> Self {
        Self { packages: 30_976, installations: 2_935_744 }
    }
}

/// Figure 1: the executable-type mix across the repository.
#[derive(Debug, Clone, Copy)]
pub struct BinaryMix {
    /// Fraction of executables that are ELF binaries (the rest are
    /// scripts).
    pub elf: f64,
    /// dash (`#!/bin/sh`) scripts.
    pub dash: f64,
    /// Python scripts.
    pub python: f64,
    /// Perl scripts.
    pub perl: f64,
    /// bash scripts.
    pub bash: f64,
    /// Ruby scripts.
    pub ruby: f64,
    /// Other interpreters.
    pub other: f64,
    /// Among ELF binaries: fraction that are shared libraries.
    pub elf_shared_lib: f64,
    /// Among ELF binaries: fraction that are static executables.
    pub elf_static: f64,
}

impl Default for BinaryMix {
    fn default() -> Self {
        // Paper Figure 1.
        Self {
            elf: 0.60,
            dash: 0.15,
            python: 0.09,
            perl: 0.08,
            bash: 0.06,
            ruby: 0.012,
            other: 0.015,
            elf_shared_lib: 0.52,
            elf_static: 0.0038,
        }
    }
}

/// Stage I of the canonical importance ranking: the 40 most important
/// system calls (Table 4's "hello world" set). The first 38 are the libc
/// startup footprint; `open` and `stat` round out the stage.
pub const STAGE1: &[&str] = &[
    "mprotect", "mmap", "munmap", "read", "write", "writev", "close",
    "fstat", "openat", "brk", "exit_group", "getuid", "getgid",
    "getrlimit", "set_tid_address", "set_robust_list", "rt_sigaction",
    "rt_sigprocmask", "rt_sigreturn", "futex", "execve", "getpid",
    "getppid", "gettid", "kill", "tgkill", "clone", "vfork", "dup2",
    "fcntl", "setresuid", "setresgid", "sched_yield", "lseek",
    "sched_setscheduler", "sched_setparam",
    "getcwd", "getdents", "open", "stat",
];

/// Stage II (ranks 41–81): anchored on Table 4's samples (`mremap`,
/// `ioctl`, `access`, `socket`, `poll`, `recvmsg`, `dup`, `unlink`,
/// `wait4`, `select`, `chdir`, `pipe`).
pub const STAGE2: &[&str] = &[
    "ioctl", "access", "lstat", "socket", "connect", "poll", "recvmsg",
    "dup", "unlink", "wait4", "select", "chdir", "pipe", "pipe2",
    "mremap", "madvise", "nanosleep", "gettimeofday", "clock_gettime",
    "sendto", "recvfrom", "bind", "getsockname", "getsockopt",
    "setsockopt", "sendmsg", "rename", "mkdir", "readlink", "chmod",
    "umask", "geteuid", "getegid", "fchmod", "fchown", "chown",
    "ftruncate", "rmdir", "getpgrp", "setpgid", "fdatasync",
];

/// Stage III (ranks 82–145): anchored on Table 4's samples
/// (`sigaltstack`, `shutdown`, `symlink`, `alarm`, `listen`, `pread64`,
/// `getxattr`, `shmget`, `epoll_wait`, `chroot`, `sync`, `getrusage`).
pub const STAGE3: &[&str] = &[
    "sigaltstack", "shutdown", "symlink", "alarm", "listen", "pread64",
    "getxattr", "shmget", "epoll_wait", "chroot", "sync", "getrusage",
    "exit", "uname", "accept", "getpeername",
    "socketpair", "waitid", "fork", "pwrite64", "readv",
    "fsync", "truncate", "link", "mknod", "utime", "utimes", "statfs",
    "fstatfs", "epoll_create", "epoll_ctl", "epoll_create1", "eventfd2",
    "getdents64", "fchdir", "setsid", "getpgid", "getsid",
    "setuid", "setgid", "creat", "setreuid", "setregid", "getgroups",
    "setgroups", "getresuid", "getresgid", "setpriority", "getpriority",
    "shmat", "shmctl", "shmdt", "sysinfo", "times", "getitimer",
    "setitimer", "lchown", "mknodat", "signalfd4", "clock_getres",
    "sched_getaffinity", "sched_setaffinity", "dup3", "tkill",
];

/// Stage IV (ranks 146–202): anchored on Table 4's samples (`flock`,
/// `semget`, `ppoll`, `mount`, `pause`, `getpgid`, `settimeofday`,
/// `capset`, `reboot`, `unshare`, `tkill`).
pub const STAGE4: &[&str] = &[
    "umount2", "inotify_init", "inotify_add_watch", "inotify_rm_watch",
    "timerfd_create", "timerfd_settime", "splice", "timerfd_gettime",
    "inotify_init1", "perf_event_open", "sendmmsg", "recvmmsg",
    "flock", "semget", "ppoll", "mount", "pause", "settimeofday",
    "capset", "reboot", "unshare", "semop", "semctl", "msgget", "msgsnd",
    "msgrcv", "clock_nanosleep", "clock_settime",
    "iopl", "ioperm", "ptrace",
    "capget", "prctl", "arch_prctl",
    "sched_getscheduler", "sched_getparam", "sched_get_priority_max",
    "sched_get_priority_min",
    "name_to_handle_at", "quotactl", "migrate_pages",
    "setrlimit", "prlimit64", "sendfile", "pselect6",
    "utimensat", "faccessat", "fchownat", "fchmodat", "unlinkat", "newfstatat", "renameat", "linkat", "symlinkat",
    "readlinkat", "mkdirat", "accept4",
];

/// The 33 mid-importance system calls (Figure 2's 10–99% band), with
/// their target API importance. Table 1/2 rows appear with the paper's
/// published values.
pub const MID_SYSCALLS: &[(&str, f64)] = &[
    ("mbind", 0.36),
    ("add_key", 0.272),
    ("keyctl", 0.272),
    ("request_key", 0.144),
    ("preadv", 0.117),
    ("pwritev", 0.117),
    ("fanotify_init", 0.12),
    ("fanotify_mark", 0.12),
    ("swapon", 0.30),
    ("swapoff", 0.28),
    ("pivot_root", 0.15),
    ("init_module", 0.40),
    ("delete_module", 0.40),
    ("finit_module", 0.25),
    ("setns", 0.45),
    ("process_vm_readv", 0.20),
    ("process_vm_writev", 0.20),
    ("kcmp", 0.10),
    ("memfd_create", 0.15),
    ("getrandom", 0.40),
    ("set_mempolicy", 0.36),
    ("get_mempolicy", 0.30),
    ("listxattr", 0.45),
    ("lgetxattr", 0.28),
    ("lsetxattr", 0.15),
    ("fsetxattr", 0.20),
    ("removexattr", 0.22),
    ("rt_sigqueueinfo", 0.15),
    ("rt_sigtimedwait", 0.48),
    ("rt_sigpending", 0.38),
    ("timer_create", 0.52),
    ("timer_gettime", 0.32),
    ("mincore", 0.25),
];

/// The 48 low-importance system calls (Figure 2's under-10% band), with
/// target importance. Includes the five officially retired calls that are
/// still attempted (`uselib`, `nfsservctl`, `afs_syscall`, `vserver`,
/// `security`) and the Table 2 single-package calls.
pub const LOW_SYSCALLS: &[(&str, f64)] = &[
    ("uselib", 0.010),
    ("nfsservctl", 0.070),
    ("afs_syscall", 0.005),
    ("vserver", 0.003),
    ("security", 0.003),
    ("seccomp", 0.010),
    ("sched_setattr", 0.010),
    ("sched_getattr", 0.010),
    ("kexec_load", 0.010),
    ("clock_adjtime", 0.040),
    ("renameat2", 0.040),
    ("mq_timedsend", 0.010),
    ("mq_getsetattr", 0.010),
    ("getcpu", 0.040),
    ("mq_open", 0.050),
    ("mq_unlink", 0.050),
    ("mq_timedreceive", 0.010),
    ("kexec_file_load", 0.005),
    ("bpf", 0.020),
    ("open_by_handle_at", 0.010),
    ("io_setup", 0.020),
    ("io_destroy", 0.020),
    ("io_submit", 0.020),
    ("io_cancel", 0.010),
    ("ioprio_set", 0.080),
    ("ioprio_get", 0.060),
    ("acct", 0.020),
    ("vhangup", 0.010),
    ("modify_ldt", 0.020),
    ("_sysctl", 0.020),
    ("readahead", 0.080),
    ("sync_file_range", 0.050),
    ("vmsplice", 0.020),
    ("tee", 0.020),
    ("semtimedop", 0.030),
    ("signalfd", 0.030),
    ("eventfd", 0.030),
    ("timer_getoverrun", 0.020),
    ("timer_settime", 0.080),
    ("lremovexattr", 0.030),
    ("fremovexattr", 0.030),
    ("llistxattr", 0.030),
    ("flistxattr", 0.050),
    ("fadvise64", 0.090),
    ("timer_delete", 0.090),
    ("io_getevents", 0.010),
    ("syncfs", 0.030),
    ("epoll_pwait", 0.030),
];

/// The eight unused system calls with kernel entry points (Table 3);
/// together with the ten no-entry-point slots these are the paper's 18
/// never-used calls.
pub const UNUSED_SYSCALLS: &[&str] = &[
    "sysfs",
    "rt_tgsigqueueinfo",
    "get_robust_list",
    "remap_file_pages",
    "mq_notify",
    "lookup_dcookie",
    "restart_syscall",
    "move_pages",
];

/// Per-syscall package-adoption targets (unweighted importance,
/// Tables 8–11). Calls near 100% come from the libc startup footprint and
/// are not listed here.
pub const ADOPTION: &[(&str, f64)] = &[
    // Table 8: insecure vs secure.
    ("setuid", 0.1567),
    ("setreuid", 0.0188),
    ("setgid", 0.1207),
    ("setregid", 0.0124),
    ("getresuid", 0.3619),
    ("geteuid", 0.5515),
    ("getresgid", 0.3614),
    ("getegid", 0.4887),
    ("access", 0.7424),
    ("faccessat", 0.0063),
    ("mkdir", 0.5207),
    ("mkdirat", 0.0034),
    ("rename", 0.4318),
    ("renameat", 0.0030),
    ("readlink", 0.4638),
    ("readlinkat", 0.0050),
    ("chown", 0.2459),
    ("fchownat", 0.0023),
    ("chmod", 0.3980),
    ("fchmodat", 0.0013),
    // Table 9: old vs new.
    ("getdents64", 0.0008),
    ("utime", 0.0857),
    ("utimes", 0.1790),
    ("fork", 0.0007),
    ("tkill", 0.0051),
    ("wait4", 0.6056),
    ("waitid", 0.0024),
    // Table 10: Linux-specific vs portable.
    ("accept4", 0.0093),
    ("accept", 0.2935),
    ("ppoll", 0.0390),
    ("poll", 0.7107),
    ("recvmmsg", 0.0011),
    ("recvmsg", 0.6882),
    ("sendmmsg", 0.0517),
    ("sendmsg", 0.4249),
    ("pipe2", 0.4033),
    ("pipe", 0.5033),
    ("readv", 0.6223),
    // Table 6 gaps: calls whose absence defines the evaluated systems'
    // completeness (fractions chosen to reproduce the published numbers).
    ("umount2", 0.13),
    ("inotify_init", 0.10),
    ("inotify_add_watch", 0.10),
    ("inotify_rm_watch", 0.09),
    ("inotify_init1", 0.04),
    ("splice", 0.06),
    ("timerfd_create", 0.09),
    ("timerfd_settime", 0.085),
    ("timerfd_gettime", 0.05),
    ("perf_event_open", 0.03),
    ("name_to_handle_at", 0.008),
    ("iopl", 0.012),
    ("ioperm", 0.012),
    ("quotactl", 0.004),
    ("migrate_pages", 0.002),
    // Table 11: simple vs powerful.
    ("pread64", 0.2723),
    ("dup3", 0.0872),
    ("dup", 0.6664),
    ("recvfrom", 0.5380),
    ("sendto", 0.7171),
    ("select", 0.6153),
    ("pselect6", 0.0413),
    ("chdir", 0.4461),
    ("fchdir", 0.0220),
];

/// Figure 3 anchor points: cumulative weighted completeness at the
/// N-most-important supported system calls, as `(mass quantile, rank)`.
/// A package's footprint breadth K is sampled by inverting this curve.
pub const BREADTH_CDF: &[(f64, f64)] = &[
    (0.0, 40.0),
    (0.0112, 40.0),
    (0.1068, 64.0),
    (0.25, 112.0),
    (0.5009, 134.0),
    (0.88, 176.0),
    (0.9061, 182.0),
    (1.0, 224.0),
];


/// Mass quantile of the breadth distribution: the fraction of package
/// mass whose breadth K is at most `k` (linear interpolation over
/// [`BREADTH_CDF`]).
pub fn breadth_quantile(k: f64) -> f64 {
    if k <= BREADTH_CDF[0].1 {
        return 0.0;
    }
    for w in BREADTH_CDF.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if k <= y1 {
            if y1 == y0 {
                return x1;
            }
            return x0 + (x1 - x0) * (k - y0) / (y1 - y0);
        }
    }
    1.0
}

/// The fraction of *eligible* packages (breadth > rank) that inline a
/// non-ubiquitous indispensable call of the given rank (the planner's
/// rank-consistency pass).
pub fn sprinkle_fraction(rank: usize, indispensable: usize) -> f64 {
    (0.55 - 0.30 * rank as f64 / indispensable.max(1) as f64).clamp(0.02, 0.98)
}

/// Expected unweighted importance of a sprinkled call at a rank: the
/// sprinkle fraction times the eligible share of packages. Used to slot
/// adoption-rate calls into the canonical ranking consistently.
pub fn expected_unweighted(rank: usize, indispensable: usize) -> f64 {
    sprinkle_fraction(rank, indispensable) * (1.0 - breadth_quantile(rank as f64))
}

/// libc symbol popularity buckets (§3.5 / Figure 7):
/// 42.8% of the 1,274 symbols at ~100% importance, 39.7% under 1%
/// (222 entirely unused), 50.6% under 50%.
#[derive(Debug, Clone, Copy)]
pub struct LibcBuckets {
    /// Symbols used by core (always-installed) packages: ~100% importance.
    pub universal: usize,
    /// Symbols in the 50–99% importance band.
    pub high: usize,
    /// Symbols in the 1–50% band.
    pub mid: usize,
    /// Symbols under 1% but non-zero.
    pub rare: usize,
    /// Symbols used by no package at all.
    pub unused: usize,
}

impl Default for LibcBuckets {
    fn default() -> Self {
        // 545 + 84 + 139 + 284 + 222 = 1274.
        Self { universal: 545, high: 84, mid: 139, rare: 284, unused: 222 }
    }
}

/// Vectored-opcode tiers (Figures 4 and 5).
#[derive(Debug, Clone, Copy)]
pub struct VectoredTiers {
    /// ioctl operations at ~100% importance (the 47 TTY/generic ops plus
    /// five more).
    pub ioctl_universal: usize,
    /// ioctl operations above 1% importance.
    pub ioctl_above_1pct: usize,
    /// ioctl operations used at all.
    pub ioctl_used: usize,
    /// fcntl commands at ~100%.
    pub fcntl_universal: usize,
    /// prctl options at ~100%.
    pub prctl_universal: usize,
    /// prctl options above 20%.
    pub prctl_above_20pct: usize,
}

impl Default for VectoredTiers {
    fn default() -> Self {
        Self {
            ioctl_universal: 52,
            ioctl_above_1pct: 188,
            ioctl_used: 280,
            fcntl_universal: 11,
            prctl_universal: 9,
            prctl_above_20pct: 18,
        }
    }
}

/// A special-purpose package pinned to specific APIs (Tables 1 and 2).
#[derive(Debug, Clone)]
pub struct Pin {
    /// Package name.
    pub package: &'static str,
    /// Installation probability.
    pub prob: f64,
    /// System calls (by name) the package's tool issues directly.
    pub syscalls: &'static [&'static str],
    /// Hard-coded pseudo-file paths.
    pub paths: &'static [&'static str],
}

/// The Table 1/2 pins, with installation probabilities chosen so the
/// resulting API importance matches the published values.
pub const PINS: &[Pin] = &[
    // Table 1: mbind 36% from libnuma (30%) + libopenblas (8.6%):
    // 1 - 0.70 × 0.914 ≈ 0.36.
    Pin { package: "libnuma", prob: 0.30, syscalls: &["mbind", "set_mempolicy", "get_mempolicy"], paths: &["/sys/devices/system/node"] },
    Pin { package: "libopenblas", prob: 0.086, syscalls: &["mbind", "sched_getaffinity"], paths: &[] },
    // add_key/keyctl 27.2% from libkeyutils (20%) + pam-keyutil (9%).
    Pin { package: "libkeyutils", prob: 0.20, syscalls: &["add_key", "keyctl", "request_key"], paths: &[] },
    Pin { package: "pam-keyutil", prob: 0.09, syscalls: &["add_key", "keyctl"], paths: &[] },
    // Table 2 single-package calls.
    Pin { package: "coop-computing-tools", prob: 0.010, syscalls: &["seccomp", "sched_setattr", "sched_getattr", "renameat2"], paths: &[] },
    Pin { package: "kexec-tools", prob: 0.010, syscalls: &["kexec_load", "kexec_file_load", "reboot"], paths: &["/proc/kcore"] },
    Pin { package: "systemd-timesync", prob: 0.040, syscalls: &["clock_adjtime", "settimeofday", "renameat2"], paths: &["/sys/class/net"] },
    Pin { package: "qemu-user", prob: 0.010, syscalls: &["mq_timedsend", "mq_getsetattr", "mq_open"], paths: &[] },
    Pin { package: "ioping", prob: 0.008, syscalls: &["io_getevents", "io_setup", "io_submit"], paths: &[] },
    Pin { package: "zfs-fuse", prob: 0.004, syscalls: &["io_getevents", "io_setup", "io_destroy"], paths: &["/dev/fuse-zfs"] },
    Pin { package: "valgrind", prob: 0.035, syscalls: &["getcpu", "process_vm_readv", "ptrace"], paths: &["/proc/%d/maps"] },
    Pin { package: "rt-tests", prob: 0.006, syscalls: &["getcpu", "sched_setscheduler", "mlockall"], paths: &[] },
    // Retired calls still attempted (nfsservctl at 7% via NFS tools).
    Pin { package: "nfs-utils", prob: 0.070, syscalls: &["nfsservctl", "mount", "umount2"], paths: &["/proc/filesystems"] },
    Pin { package: "legacy-av", prob: 0.010, syscalls: &["uselib", "security"], paths: &[] },
    Pin { package: "vserver-utils", prob: 0.003, syscalls: &["vserver", "afs_syscall"], paths: &[] },
    // Posix message queues (lower importance than System V, §3.1).
    Pin { package: "mqueue-tools", prob: 0.045, syscalls: &["mq_open", "mq_unlink", "mq_timedreceive"], paths: &["/dev/mqueue"] },
];

/// The complete calibration bundle.
#[derive(Debug, Clone, Default)]
pub struct CalibrationSpec {
    /// Figure 1 mix.
    pub mix: BinaryMix,
    /// libc symbol buckets.
    pub libc_buckets: LibcBuckets,
    /// Vectored-opcode tiers.
    pub vectored: VectoredTiers,
    /// What-if overrides for per-syscall adoption rates: entries replace
    /// (or extend) [`ADOPTION`], letting one simulate e.g. "what if
    /// `faccessat` adoption grew to 50%?" and re-measure.
    pub adoption_overrides: Vec<(String, f64)>,
}

impl CalibrationSpec {
    /// The effective adoption table: [`ADOPTION`] with overrides applied.
    pub fn adoption(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = ADOPTION
            .iter()
            .map(|&(n, r)| (n.to_owned(), r))
            .collect();
        for (name, rate) in &self.adoption_overrides {
            match out.iter_mut().find(|(n, _)| n == name) {
                Some(entry) => entry.1 = *rate,
                None => out.push((name.clone(), *rate)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_catalog::SyscallTable;
    use std::collections::HashSet;

    #[test]
    fn stage_lists_use_real_syscalls() {
        let t = SyscallTable::new();
        for name in STAGE1.iter().chain(STAGE2).chain(STAGE3).chain(STAGE4) {
            assert!(t.by_name(name).is_some(), "unknown syscall {name}");
        }
        for (name, _) in MID_SYSCALLS.iter().chain(LOW_SYSCALLS) {
            assert!(t.by_name(name).is_some(), "unknown syscall {name}");
        }
        for name in UNUSED_SYSCALLS {
            assert!(t.by_name(name).is_some(), "unknown syscall {name}");
        }
    }

    #[test]
    fn stage1_has_40_calls() {
        assert_eq!(STAGE1.len(), 40);
        let set: HashSet<_> = STAGE1.iter().collect();
        assert_eq!(set.len(), 40, "duplicates in stage 1");
    }

    #[test]
    fn tier_sizes_partition_the_table() {
        // Mid and low lists must be disjoint from each other, from the
        // stages, and from the unused list.
        let mid: HashSet<_> = MID_SYSCALLS.iter().map(|&(n, _)| n).collect();
        let low: HashSet<_> = LOW_SYSCALLS.iter().map(|&(n, _)| n).collect();
        let unused: HashSet<_> = UNUSED_SYSCALLS.iter().copied().collect();
        assert_eq!(MID_SYSCALLS.len(), 33);
        assert_eq!(unused.len(), 8);
        assert!(mid.is_disjoint(&low), "mid/low overlap");
        assert!(mid.is_disjoint(&unused));
        assert!(low.is_disjoint(&unused));
        let stages: HashSet<_> =
            STAGE1.iter().chain(STAGE2).chain(STAGE3).chain(STAGE4).copied().collect();
        for name in mid.iter().chain(low.iter()) {
            assert!(!stages.contains(name), "{name} is both staged and tiered");
        }
    }

    #[test]
    fn breadth_cdf_is_monotone() {
        for w in BREADTH_CDF.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn libc_buckets_sum_to_inventory() {
        let b = LibcBuckets::default();
        assert_eq!(
            b.universal + b.high + b.mid + b.rare + b.unused,
            apistudy_catalog::GLIBC_2_21_SYMBOL_COUNT
        );
    }

    #[test]
    fn pin_probabilities_are_probabilities() {
        for pin in PINS {
            assert!(pin.prob > 0.0 && pin.prob < 1.0, "{}", pin.package);
        }
    }

    #[test]
    fn mbind_importance_composes_to_36pct() {
        // 1 - (1-0.30)(1-0.086) ≈ 0.36 (Table 1).
        let p: f64 = 1.0 - (1.0 - 0.30) * (1.0 - 0.086);
        assert!((p - 0.36).abs() < 0.005);
    }
}
