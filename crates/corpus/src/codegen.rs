//! Machine-code generation for synthetic binaries.
//!
//! Every binary in the synthetic repository is a *real* ELF object with
//! real x86-64 code: system call numbers are loaded with `mov eax, imm`,
//! vectored opcodes go through the argument registers, libc calls go
//! through genuine PLT stubs, and pseudo-file paths are `lea`-referenced
//! `.rodata` strings — so the analyzer recovers footprints from instruction
//! bytes exactly as it would on distribution binaries.
//!
//! Generation is deterministic: all structural choices (how facts are
//! distributed across helper functions, call styles) are fixed in an
//! emission plan before any bytes are produced, and every emitted
//! instruction has a target-independent length, so the two-pass layout
//! protocol of [`apistudy_elf::ElfBuilder`] converges in exactly two
//! passes.

use apistudy_elf::{ElfBuilder, Layout};
use apistudy_x86::{Asm, Reg};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// System call numbers of the vectored calls.
const SYS_IOCTL: u32 = 16;
const SYS_FCNTL: u32 = 72;
const SYS_PRCTL: u32 = 157;

/// How a vectored opcode is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectoredVia {
    /// `mov e??, code; call <wrapper>@plt`.
    Wrapper,
    /// `mov e??, code; mov eax, <nr>; syscall`.
    Inline,
}

/// Specification of an executable to generate.
#[derive(Debug, Clone, Default)]
pub struct ExecSpec {
    /// Statically linked (no libc, no PLT) when true.
    pub is_static: bool,
    /// `DT_NEEDED` libraries (normally at least `libc.so.6`).
    pub needed: Vec<String>,
    /// Imported functions called from reachable code.
    pub libc_calls: Vec<String>,
    /// System calls issued inline (`mov eax, nr; syscall`).
    pub direct_syscalls: Vec<u32>,
    /// `ioctl` request codes, with issue style.
    pub ioctl_codes: Vec<(u64, VectoredVia)>,
    /// `fcntl` command codes, with issue style.
    pub fcntl_codes: Vec<(u64, VectoredVia)>,
    /// `prctl` option codes, with issue style.
    pub prctl_codes: Vec<(u64, VectoredVia)>,
    /// Hard-coded pseudo-file paths placed in `.rodata` and referenced.
    pub paths: Vec<String>,
    /// System calls placed in a function that is never referenced
    /// (exercises the reachability-vs-attribution distinction).
    pub dead_syscalls: Vec<u32>,
    /// Number of helper functions to spread the facts over (≥ 1 used).
    pub helpers: u32,
    /// Deterministic seed for structural choices.
    pub seed: u64,
}

/// One exported function of a library to generate.
#[derive(Debug, Clone, Default)]
pub struct ExportSpec {
    /// Exported symbol name.
    pub name: String,
    /// System calls issued in the body.
    pub direct_syscalls: Vec<u32>,
    /// Sibling exports called internally (by name, same library).
    pub calls_exports: Vec<String>,
    /// Functions imported from other libraries.
    pub imports: Vec<String>,
    /// Pad the function body to at least this many bytes (0 = natural).
    pub pad_to: u32,
}

/// Specification of a shared library to generate.
#[derive(Debug, Clone, Default)]
pub struct LibSpec {
    /// `DT_SONAME`.
    pub soname: String,
    /// `DT_NEEDED` libraries.
    pub needed: Vec<String>,
    /// Exported functions.
    pub exports: Vec<ExportSpec>,
}

/// Items of an emission plan, in final order.
#[derive(Debug, Clone)]
enum Item {
    DirectSyscall(u32),
    LibcCall(u32),
    Vectored { code: u64, arg: Reg, nr: u32, via: Option<u32> },
    Path(u32),
    CallHelper { index: usize, via_pointer: bool },
}

#[derive(Debug, Clone)]
struct FuncPlan {
    name: String,
    items: Vec<Item>,
    /// Ends with a tail jump to the previous helper instead of `ret`
    /// (exercises the analyzer's tail-call edge handling).
    tail_to_prev: bool,
}

/// Emits one planned function body at the current position.
fn emit_func(
    a: &mut Asm,
    plan: &FuncPlan,
    layout: &Layout,
    rodata_offsets: &[(u32, u32)],
    helper_addrs: &[u64],
    with_prologue: bool,
    tail_target: Option<u64>,
) {
    if with_prologue {
        a.push_rbp();
        a.mov_rbp_rsp();
    }
    for item in &plan.items {
        match item {
            Item::DirectSyscall(nr) => {
                a.mov_imm32(Reg::RAX, *nr);
                a.syscall();
            }
            Item::LibcCall(import) => {
                a.call(layout.plt_stub_addr(*import));
            }
            Item::Vectored { code, arg, nr, via } => {
                a.mov_imm32(*arg, *code as u32);
                match via {
                    Some(import) => a.call(layout.plt_stub_addr(*import)),
                    None => {
                        a.mov_imm32(Reg::RAX, *nr);
                        a.syscall();
                    }
                }
            }
            Item::Path(rodata_off) => {
                let off = rodata_offsets
                    .iter()
                    .find(|&&(i, _)| i == *rodata_off)
                    .map(|&(_, o)| o)
                    .unwrap_or(0);
                a.lea_rip(Reg::RDI, layout.rodata_addr + u64::from(off));
            }
            Item::CallHelper { index, via_pointer } => {
                let target = helper_addrs[*index];
                if *via_pointer {
                    a.lea_rip(Reg::RAX, target);
                    a.call_reg(Reg::RAX);
                } else {
                    a.call(target);
                }
            }
        }
    }
    if with_prologue {
        a.pop_rbp();
    }
    match (plan.tail_to_prev, tail_target) {
        (true, Some(target)) => a.jmp(target),
        _ => a.ret(),
    }
}

/// Generates an executable from a spec. Returns the ELF image.
pub fn generate_executable(spec: &ExecSpec) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x45584543);
    let mut b = if spec.is_static {
        ElfBuilder::static_executable()
    } else {
        ElfBuilder::executable()
    };
    for lib in &spec.needed {
        b.needed(lib);
    }

    // ---- Imports --------------------------------------------------------
    let start_main = if spec.is_static {
        None
    } else {
        Some(b.declare_import("__libc_start_main"))
    };
    // Fortified binaries reference the stack protector in every epilogue;
    // the Table 7 libc-variant comparison hinges on this being ubiquitous.
    let stack_chk = if spec.is_static {
        None
    } else {
        Some(b.declare_import("__stack_chk_fail"))
    };
    let libc_call_ids: Vec<u32> = spec
        .libc_calls
        .iter()
        .map(|name| b.declare_import(name))
        .collect();
    let vectored_import = |b: &mut ElfBuilder, wrapper: &str, via: VectoredVia| {
        match via {
            VectoredVia::Wrapper if !spec.is_static => {
                Some(b.declare_import(wrapper))
            }
            _ => None,
        }
    };
    let ioctl_items: Vec<(u64, Option<u32>)> = spec
        .ioctl_codes
        .iter()
        .map(|&(c, via)| (c, vectored_import(&mut b, "ioctl", via)))
        .collect();
    let fcntl_items: Vec<(u64, Option<u32>)> = spec
        .fcntl_codes
        .iter()
        .map(|&(c, via)| (c, vectored_import(&mut b, "fcntl", via)))
        .collect();
    let prctl_items: Vec<(u64, Option<u32>)> = spec
        .prctl_codes
        .iter()
        .map(|&(c, via)| (c, vectored_import(&mut b, "prctl", via)))
        .collect();

    // ---- Rodata ----------------------------------------------------------
    let mut rodata = Vec::new();
    let mut rodata_offsets = Vec::new();
    for (i, p) in spec.paths.iter().enumerate() {
        rodata_offsets.push((i as u32, rodata.len() as u32));
        rodata.extend_from_slice(p.as_bytes());
        rodata.push(0);
    }

    // ---- Emission plan ---------------------------------------------------
    let helper_count = spec.helpers.max(1) as usize;
    let mut helpers: Vec<FuncPlan> = (0..helper_count)
        .map(|i| FuncPlan {
            name: format!("helper_{i}"),
            items: Vec::new(),
            tail_to_prev: i > 0 && rng.gen_bool(0.2),
        })
        .collect();
    let mut main_plan = FuncPlan {
        name: "main".to_owned(),
        items: Vec::new(),
        tail_to_prev: false,
    };
    {
        // Round-robin facts across helpers and main, deterministically.
        let mut sink = |item: Item, rng: &mut SmallRng| {
            let slot = rng.gen_range(0..helper_count + 1);
            if slot == helper_count {
                main_plan.items.push(item);
            } else {
                helpers[slot].items.push(item);
            }
        };
        for &nr in &spec.direct_syscalls {
            sink(Item::DirectSyscall(nr), &mut rng);
        }
        for &id in &libc_call_ids {
            sink(Item::LibcCall(id), &mut rng);
        }
        for &(code, via) in &ioctl_items {
            sink(
                Item::Vectored { code, arg: Reg::RSI, nr: SYS_IOCTL, via },
                &mut rng,
            );
        }
        for &(code, via) in &fcntl_items {
            sink(
                Item::Vectored { code, arg: Reg::RSI, nr: SYS_FCNTL, via },
                &mut rng,
            );
        }
        for &(code, via) in &prctl_items {
            sink(
                Item::Vectored { code, arg: Reg::RDI, nr: SYS_PRCTL, via },
                &mut rng,
            );
        }
        for (i, _) in spec.paths.iter().enumerate() {
            sink(Item::Path(i as u32), &mut rng);
        }
    }
    // Main calls every helper (so everything is reachable), with a mix of
    // direct calls and function-pointer formation — except helpers that
    // are reached only through another helper's tail jump.
    for i in 0..helper_count {
        let tail_reached = helpers.get(i + 1).is_some_and(|h| h.tail_to_prev);
        if tail_reached {
            continue;
        }
        main_plan.items.push(Item::CallHelper {
            index: i,
            via_pointer: rng.gen_bool(0.25),
        });
    }
    if let Some(id) = start_main {
        main_plan.items.push(Item::LibcCall(id));
    }
    if let Some(id) = stack_chk {
        main_plan.items.push(Item::LibcCall(id));
    }
    let dead_plan = if spec.dead_syscalls.is_empty() {
        None
    } else {
        Some(FuncPlan {
            name: "unused_code".to_owned(),
            items: spec
                .dead_syscalls
                .iter()
                .map(|&nr| Item::DirectSyscall(nr))
                .collect(),
            tail_to_prev: false,
        })
    };

    // ---- Two-pass emission ----------------------------------------------
    let emit_all = |layout: &Layout| -> (Vec<u8>, Vec<(String, u64, u64)>) {
        let mut a = Asm::new(layout.text_addr);
        let mut spans = Vec::new();
        let mut helper_addrs = Vec::with_capacity(helper_count);
        for h in &helpers {
            a.align(16);
            let start = a.here();
            let tail_target = helper_addrs.last().copied();
            helper_addrs.push(start);
            // Modern toolchains put a CET landing pad at every function
            // that can be reached indirectly.
            a.endbr64();
            emit_func(
                &mut a,
                h,
                layout,
                &rodata_offsets,
                &helper_addrs,
                false,
                tail_target,
            );
            spans.push((h.name.clone(), start, a.here() - start));
        }
        a.align(16);
        let main_start = a.here();
        emit_func(
            &mut a,
            &main_plan,
            layout,
            &rodata_offsets,
            &helper_addrs,
            true,
            None,
        );
        spans.push(("main".to_owned(), main_start, a.here() - main_start));
        if let Some(dead) = &dead_plan {
            a.align(16);
            let start = a.here();
            emit_func(
                &mut a,
                dead,
                layout,
                &rodata_offsets,
                &helper_addrs,
                false,
                None,
            );
            spans.push((dead.name.clone(), start, a.here() - start));
        }
        (a.finish(), spans)
    };

    // Pass 1 against a probe layout to learn the text size.
    let probe_layout = b.clone().layout(1 << 20, rodata.len() as u64);
    let (probe_text, _) = emit_all(&probe_layout);
    let layout = b.layout(probe_text.len() as u64, rodata.len() as u64);
    let (text, spans) = emit_all(&layout);
    debug_assert_eq!(text.len(), probe_text.len(), "two-pass size stable");

    b.set_text(text);
    b.set_rodata(rodata);
    for (name, start, len) in &spans {
        let off = start - layout.text_addr;
        if name == "main" {
            b.set_entry(off);
        }
        b.local_symbol(name, off, *len);
    }
    b.build().expect("executable build cannot fail on planned input")
}

/// Generates a shared library from a spec. Returns the ELF image.
pub fn generate_library(spec: &LibSpec) -> Vec<u8> {
    let mut b = ElfBuilder::shared_library(&spec.soname);
    for lib in &spec.needed {
        b.needed(lib);
    }
    let export_ids: Vec<u32> = spec
        .exports
        .iter()
        .map(|e| b.declare_export(&e.name))
        .collect();
    let import_ids: Vec<Vec<u32>> = spec
        .exports
        .iter()
        .map(|e| e.imports.iter().map(|n| b.declare_import(n)).collect())
        .collect();

    let export_index: std::collections::HashMap<&str, usize> = spec
        .exports
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();

    let emit_all = |layout: &Layout| -> (Vec<u8>, Vec<(u64, u64)>) {
        // First sub-pass computes addresses; within a single emission we
        // need sibling addresses for possibly-forward internal calls, so we
        // emit twice inside each pass with stable sizes.
        let mut addrs: Vec<u64> = vec![layout.text_addr; spec.exports.len()];
        let mut spans = Vec::new();
        for _ in 0..2 {
            spans.clear();
            let mut a = Asm::new(layout.text_addr);
            for (i, e) in spec.exports.iter().enumerate() {
                a.align(16);
                let start = a.here();
                addrs[i] = start;
                for &nr in &e.direct_syscalls {
                    a.mov_imm32(Reg::RAX, nr);
                    a.syscall();
                }
                for callee in &e.calls_exports {
                    if let Some(&j) = export_index.get(callee.as_str()) {
                        a.call(addrs[j]);
                    }
                }
                for &imp in &import_ids[i] {
                    a.call(layout.plt_stub_addr(imp));
                }
                a.ret();
                // Pad to the nominal size with trap bytes.
                let body = a.here() - start;
                if u64::from(e.pad_to) > body {
                    a.int3_pad((u64::from(e.pad_to) - body) as usize);
                }
                spans.push((start, a.here() - start));
            }
            // Second iteration re-emits with correct forward addresses;
            // sizes are target-independent so `addrs` is now exact.
        }
        // Final emission with converged addresses.
        let mut a = Asm::new(layout.text_addr);
        for (i, e) in spec.exports.iter().enumerate() {
            a.align(16);
            for &nr in &e.direct_syscalls {
                a.mov_imm32(Reg::RAX, nr);
                a.syscall();
            }
            for callee in &e.calls_exports {
                if let Some(&j) = export_index.get(callee.as_str()) {
                    a.call(addrs[j]);
                }
            }
            for &imp in &import_ids[i] {
                a.call(layout.plt_stub_addr(imp));
            }
            a.ret();
            let body = a.here() - addrs[i];
            if u64::from(e.pad_to) > body {
                a.int3_pad((u64::from(e.pad_to) - body) as usize);
            }
        }
        (a.finish(), spans)
    };

    let probe_layout = b.clone().layout(1 << 24, 0);
    let (probe_text, _) = emit_all(&probe_layout);
    let layout = b.layout(probe_text.len() as u64, 0);
    let (text, spans) = emit_all(&layout);
    debug_assert_eq!(text.len(), probe_text.len());

    b.set_text(text);
    for (i, &(start, len)) in spans.iter().enumerate() {
        b.bind_export(export_ids[i], start - layout.text_addr, len);
    }
    b.build().expect("library build cannot fail on planned input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_analysis::BinaryAnalysis;
    use apistudy_elf::ElfFile;

    fn analyze(bytes: &[u8]) -> BinaryAnalysis {
        let elf = ElfFile::parse(bytes).expect("parse generated ELF");
        BinaryAnalysis::analyze(&elf).expect("analyze generated ELF")
    }

    #[test]
    fn executable_footprint_matches_spec() {
        let spec = ExecSpec {
            needed: vec!["libc.so.6".into()],
            libc_calls: vec!["printf".into(), "open".into()],
            direct_syscalls: vec![1, 60],
            ioctl_codes: vec![
                (0x5401, VectoredVia::Inline),
                (0x5413, VectoredVia::Wrapper),
            ],
            fcntl_codes: vec![(1, VectoredVia::Inline)],
            prctl_codes: vec![(22, VectoredVia::Wrapper)],
            paths: vec!["/dev/null".into(), "/proc/%d/cmdline".into()],
            dead_syscalls: vec![169],
            helpers: 3,
            seed: 7,
            ..Default::default()
        };
        let bytes = generate_executable(&spec);
        let ba = analyze(&bytes);
        let fp = ba.entry_facts();
        assert!(fp.syscalls.contains(&1));
        assert!(fp.syscalls.contains(&60));
        assert!(fp.syscalls.contains(&16), "inline ioctl");
        assert!(fp.syscalls.contains(&72), "inline fcntl");
        assert!(!fp.syscalls.contains(&169), "dead code unreachable");
        assert!(fp.ioctl_codes.contains(&0x5401));
        assert!(fp.ioctl_codes.contains(&0x5413));
        assert!(fp.fcntl_codes.contains(&1));
        assert!(fp.prctl_codes.contains(&22));
        assert!(fp.imports.contains("printf"));
        assert!(fp.imports.contains("open"));
        assert!(fp.imports.contains("ioctl"));
        assert!(fp.imports.contains("prctl"));
        assert!(fp.imports.contains("__libc_start_main"));
        assert!(fp.paths.contains("/dev/null"));
        assert!(fp.paths.contains("/proc/%d/cmdline"));
        assert_eq!(fp.unresolved_syscall_sites, 0);
        assert_eq!(fp.unresolved_vectored_sites, 0);
        assert!(ba.direct_syscalls().contains(&169), "dead code attributed");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ExecSpec {
            needed: vec!["libc.so.6".into()],
            libc_calls: vec!["read".into()],
            direct_syscalls: vec![0, 1, 2],
            helpers: 2,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate_executable(&spec), generate_executable(&spec));
        let other = ExecSpec { seed: 43, ..spec };
        // Different seed may shuffle structure but the footprint is equal.
        let a = analyze(&generate_executable(&other));
        assert!(a.entry_facts().syscalls.contains(&2));
    }

    #[test]
    fn static_executable_has_no_imports() {
        let spec = ExecSpec {
            is_static: true,
            direct_syscalls: vec![0, 1, 60],
            helpers: 1,
            seed: 1,
            ..Default::default()
        };
        let bytes = generate_executable(&spec);
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(elf.classify(), apistudy_elf::BinaryClass::StaticExec);
        let ba = analyze(&bytes);
        let fp = ba.entry_facts();
        assert_eq!(
            fp.syscalls.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 60]
        );
        assert!(fp.imports.is_empty());
    }

    #[test]
    fn library_exports_have_planned_footprints() {
        let spec = LibSpec {
            soname: "libdemo.so.1".into(),
            needed: vec!["libc.so.6".into()],
            exports: vec![
                ExportSpec {
                    name: "alpha".into(),
                    direct_syscalls: vec![5],
                    calls_exports: vec!["beta".into()],
                    pad_to: 128,
                    ..Default::default()
                },
                ExportSpec {
                    name: "beta".into(),
                    direct_syscalls: vec![6],
                    imports: vec!["malloc".into()],
                    ..Default::default()
                },
            ],
        };
        let bytes = generate_library(&spec);
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(elf.soname().unwrap().as_deref(), Some("libdemo.so.1"));
        let ba = analyze(&bytes);
        let alpha = ba.export("alpha").expect("alpha exported");
        let fp = ba.reachable_facts([alpha]);
        assert!(fp.syscalls.contains(&5));
        assert!(fp.syscalls.contains(&6), "alpha reaches beta");
        assert!(fp.imports.contains("malloc"));
        let beta = ba.export("beta").unwrap();
        let fp_b = ba.reachable_facts([beta]);
        assert!(!fp_b.syscalls.contains(&5), "beta does not reach alpha");
        // Padding respected.
        assert!(ba.funcs[alpha].size >= 128);
    }

    #[test]
    fn forward_internal_calls_resolve() {
        // alpha (emitted first) calls omega (emitted later).
        let spec = LibSpec {
            soname: "libfwd.so".into(),
            needed: vec![],
            exports: vec![
                ExportSpec {
                    name: "alpha".into(),
                    calls_exports: vec!["omega".into()],
                    ..Default::default()
                },
                ExportSpec {
                    name: "omega".into(),
                    direct_syscalls: vec![39],
                    ..Default::default()
                },
            ],
        };
        let bytes = generate_library(&spec);
        let ba = analyze(&bytes);
        let alpha = ba.export("alpha").unwrap();
        let fp = ba.reachable_facts([alpha]);
        assert!(fp.syscalls.contains(&39), "forward call target reached");
    }
}
