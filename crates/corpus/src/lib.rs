//! # apistudy-corpus
//!
//! The synthetic Ubuntu-like corpus that stands in for the paper's
//! measurement substrate (30,976 packages + the popularity-contest survey;
//! DESIGN.md §3–4):
//!
//! - [`model`] — packages, files, dependencies, popcon;
//! - [`codegen`] — deterministic x86-64 code generation for executables
//!   and shared libraries (real ELF bytes, real PLT calls, real syscall
//!   instructions);
//! - [`libc_gen`] — the synthetic glibc 2.21 (all 1,274 exports), dynamic
//!   linker, libpthread, and librt;
//! - [`calibration`] — the paper's published marginals as data;
//! - [`plan`] — the repository planner (tiers, carriers, adoption,
//!   buckets, coverage) whose output doubles as ground truth;
//! - [`generate`] — lazy materialization of plans into packages;
//! - [`scan`] — the Figure 1 executable-type census;
//! - [`fault`] — deterministic corrupt-binary injection for the
//!   robustness and degradation experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod codegen;
pub mod fault;
pub mod generate;
pub mod libc_gen;
pub mod model;
pub mod plan;
pub mod scan;

pub use calibration::{CalibrationSpec, Scale};
pub use fault::{FaultKind, FaultPlan, FaultRecord};
pub use generate::SynthRepo;
pub use model::{Interpreter, Package, PackageFile, Popcon};
pub use plan::{PackagePlan, RepoPlan, Ranking, Tier};
pub use scan::MixCensus;
