//! Generation of the core system libraries: `libc.so.6`, the dynamic
//! linker, `libpthread.so.0`, and `librt.so.1`.
//!
//! The synthetic libc exports exactly the glibc 2.21 inventory from
//! `apistudy-catalog` (1,274 function symbols). Each export's body contains
//! `mov eax, <nr>; syscall` sequences for the system calls that function
//! wraps (per [`apistudy_catalog::wrappers::wrapped_syscalls`]) and is
//! padded to the symbol's nominal size, so the §3.5 size accounting holds
//! on the actual binary. A small internal-call map gives the library a
//! non-trivial call graph (e.g. `printf` → `vfprintf`), exercising the
//! linker's SCC machinery exactly as glibc's real structure would.
//!
//! The dynamic linker carries the Table 5 `ld.so` footprint (`access`,
//! `arch_prctl`, `mprotect`, ...); it is merged into every dynamically
//! linked executable by the pipeline, not through imports — which is why
//! `access` keeps a sub-100% *unweighted* importance (Table 8) while its
//! weighted importance stays 100%.

use apistudy_catalog::{wrappers::wrapped_syscalls, Catalog};

use crate::codegen::{generate_library, ExportSpec, LibSpec};

/// Soname of the synthetic libc.
pub const LIBC_SONAME: &str = "libc.so.6";
/// Soname of the synthetic dynamic linker.
pub const LDSO_SONAME: &str = "ld-linux-x86-64.so.2";
/// Soname of the synthetic libpthread.
pub const LIBPTHREAD_SONAME: &str = "libpthread.so.0";
/// Soname of the synthetic librt.
pub const LIBRT_SONAME: &str = "librt.so.1";

/// Internal call edges inside libc (caller → callee), modelling the real
/// library's layering. Public so ground-truth validation can model the
/// same transitive closure the analyzer recovers.
pub const INTERNAL_CALLS: &[(&str, &str)] = &[
    ("printf", "vfprintf"),
    ("fprintf", "vfprintf"),
    ("sprintf", "vsprintf"),
    ("snprintf", "vsnprintf"),
    ("dprintf", "vdprintf"),
    ("scanf", "vfscanf"),
    ("fscanf", "vfscanf"),
    ("sscanf", "vsscanf"),
    ("puts", "fputs"),
    ("perror", "fprintf"),
    ("fopen", "malloc"),
    ("fclose", "free"),
    ("calloc", "malloc"),
    ("realloc", "malloc"),
    ("opendir", "malloc"),
    ("closedir", "free"),
    ("getline", "realloc"),
    ("asprintf", "malloc"),
    ("strdup", "malloc"),
    ("strndup", "malloc"),
    ("system", "vfork"),
    ("popen", "pipe2"),
    ("getaddrinfo", "gethostbyname_r"),
    ("localtime", "localtime_r"),
    ("gmtime", "gmtime_r"),
    ("ctime", "localtime"),
    ("exit", "__cxa_finalize"),
    ("abort", "raise"),
    ("err", "vwarn"),
    ("errx", "vwarnx"),
    // A mutual-recursion pair, as found in real parsing code.
    ("glob", "fnmatch"),
    ("fnmatch", "glob"),
];

/// Builds the libc [`LibSpec`] from the catalog inventory.
pub fn libc_spec(catalog: &Catalog) -> LibSpec {
    let number_of = |name: &str| catalog.syscalls.number_of(name);
    let exports = catalog
        .libc
        .iter()
        .map(|(_, sym)| {
            let direct_syscalls = wrapped_syscalls(&sym.name)
                .iter()
                .filter_map(|n| number_of(n))
                .collect();
            let calls_exports = INTERNAL_CALLS
                .iter()
                .filter(|&&(from, _)| from == sym.name)
                .map(|&(_, to)| to.to_owned())
                .collect();
            ExportSpec {
                name: sym.name.clone(),
                direct_syscalls,
                calls_exports,
                imports: Vec::new(),
                pad_to: sym.size,
            }
        })
        .collect();
    LibSpec {
        soname: LIBC_SONAME.to_owned(),
        needed: vec![LDSO_SONAME.to_owned()],
        exports,
    }
}

/// Builds the dynamic-linker [`LibSpec`] (Table 5's `ld.so` rows).
pub fn ldso_spec(catalog: &Catalog) -> LibSpec {
    let nr = |name: &str| {
        catalog
            .syscalls
            .number_of(name)
            .expect("ld.so footprint uses defined syscalls")
    };
    LibSpec {
        soname: LDSO_SONAME.to_owned(),
        needed: vec![],
        exports: vec![
            ExportSpec {
                name: "_dl_start".to_owned(),
                direct_syscalls: vec![
                    nr("access"),
                    nr("arch_prctl"),
                    nr("mprotect"),
                    nr("mmap"),
                    nr("munmap"),
                    nr("openat"),
                    nr("read"),
                    nr("close"),
                    nr("fstat"),
                    nr("lstat"),
                    nr("getcwd"),
                    nr("getdents"),
                    nr("mremap"),
                    nr("madvise"),
                    nr("brk"),
                    nr("exit_group"),
                ],
                pad_to: 4096,
                ..Default::default()
            },
            ExportSpec {
                name: "_dl_runtime_resolve".to_owned(),
                direct_syscalls: vec![nr("mprotect")],
                pad_to: 512,
                ..Default::default()
            },
            ExportSpec {
                name: "_dl_open".to_owned(),
                direct_syscalls: vec![
                    nr("openat"),
                    nr("read"),
                    nr("fstat"),
                    nr("mmap"),
                    nr("close"),
                ],
                pad_to: 1024,
                ..Default::default()
            },
        ],
    }
}

/// Builds the libpthread [`LibSpec`] (Table 5's `libpthread` rows).
pub fn libpthread_spec(catalog: &Catalog) -> LibSpec {
    let nr = |name: &str| catalog.syscalls.number_of(name).expect("defined");
    let thread_fns = [
        ("pthread_create", vec![
            nr("clone"), nr("mmap"), nr("mprotect"),
            nr("set_robust_list"), nr("rt_sigprocmask"),
        ]),
        ("pthread_join", vec![nr("futex"), nr("munmap")]),
        ("pthread_detach", vec![nr("futex")]),
        ("pthread_cancel", vec![nr("tgkill"), nr("rt_sigreturn")]),
        ("pthread_mutex_lock", vec![nr("futex")]),
        ("pthread_mutex_unlock", vec![nr("futex")]),
        ("pthread_cond_wait", vec![nr("futex")]),
        ("pthread_cond_signal", vec![nr("futex")]),
        ("pthread_cond_broadcast", vec![nr("futex")]),
        ("pthread_barrier_wait", vec![nr("futex")]),
        ("pthread_rwlock_rdlock", vec![nr("futex")]),
        ("pthread_rwlock_wrlock", vec![nr("futex")]),
        ("pthread_rwlock_unlock", vec![nr("futex")]),
        ("pthread_setname_np", vec![nr("prctl")]),
        ("pthread_setaffinity_np", vec![nr("sched_setaffinity")]),
        ("pthread_getaffinity_np", vec![nr("sched_getaffinity")]),
        ("pthread_sigqueue", vec![nr("rt_tgsigqueueinfo")]),
        ("pthread_exit_impl", vec![
            nr("set_tid_address"), nr("exit"), nr("rt_sigreturn"),
        ]),
    ];
    LibSpec {
        soname: LIBPTHREAD_SONAME.to_owned(),
        needed: vec![LIBC_SONAME.to_owned()],
        exports: thread_fns
            .into_iter()
            .map(|(name, direct_syscalls)| ExportSpec {
                name: name.to_owned(),
                direct_syscalls,
                pad_to: 512,
                ..Default::default()
            })
            .collect(),
    }
}

/// Builds the librt [`LibSpec`] (Table 5's `librt` row).
pub fn librt_spec(catalog: &Catalog) -> LibSpec {
    let nr = |name: &str| catalog.syscalls.number_of(name).expect("defined");
    let rt_fns = [
        ("timer_create_rt", vec![nr("timer_create"), nr("rt_sigprocmask")]),
        ("timer_settime_rt", vec![nr("timer_settime")]),
        ("timer_delete_rt", vec![nr("timer_delete")]),
        ("mq_open_rt", vec![nr("mq_open"), nr("rt_sigprocmask")]),
        ("mq_timedsend_rt", vec![nr("mq_timedsend")]),
        ("mq_timedreceive_rt", vec![nr("mq_timedreceive")]),
        ("aio_read_rt", vec![nr("io_setup"), nr("io_submit")]),
        ("aio_suspend_rt", vec![nr("io_getevents"), nr("rt_sigprocmask")]),
    ];
    LibSpec {
        soname: LIBRT_SONAME.to_owned(),
        needed: vec![LIBC_SONAME.to_owned()],
        exports: rt_fns
            .into_iter()
            .map(|(name, direct_syscalls)| ExportSpec {
                name: name.to_owned(),
                direct_syscalls,
                pad_to: 384,
                ..Default::default()
            })
            .collect(),
    }
}

/// Generates the four system-library binaries. Returns `(file name, bytes)`
/// pairs.
pub fn generate_system_libraries(catalog: &Catalog) -> Vec<(String, Vec<u8>)> {
    [
        libc_spec(catalog),
        ldso_spec(catalog),
        libpthread_spec(catalog),
        librt_spec(catalog),
    ]
    .into_iter()
    .map(|spec| {
        let name = spec.soname.clone();
        (name, generate_library(&spec))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_analysis::{BinaryAnalysis, Linker};
    use apistudy_elf::ElfFile;

    #[test]
    fn libc_exports_full_inventory() {
        let catalog = Catalog::linux_3_19();
        let spec = libc_spec(&catalog);
        assert_eq!(spec.exports.len(), 1274);
        let bytes = generate_library(&spec);
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        assert_eq!(ba.exports.len(), 1274);
    }

    #[test]
    fn libc_wrappers_carry_their_syscalls() {
        let catalog = Catalog::linux_3_19();
        let bytes = generate_library(&libc_spec(&catalog));
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let mut linker = Linker::new();
        linker.add_library(LIBC_SONAME, ba);
        linker.seal();

        let open_fp = linker.resolve_export(LIBC_SONAME, "open").unwrap();
        assert!(open_fp.syscalls.contains(&2)); // open
        assert!(open_fp.syscalls.contains(&257)); // openat

        let printf_fp = linker.resolve_export(LIBC_SONAME, "printf").unwrap();
        assert!(printf_fp.syscalls.contains(&1), "printf reaches write");

        let strlen_fp = linker.resolve_export(LIBC_SONAME, "strlen").unwrap();
        assert!(strlen_fp.syscalls.is_empty(), "strlen is pure");

        let start = linker
            .resolve_export(LIBC_SONAME, "__libc_start_main")
            .unwrap();
        assert!(start.syscalls.contains(&231), "exit_group at startup");
        assert!(start.syscalls.contains(&56), "clone at startup");
        assert!(!start.syscalls.contains(&21), "access is ld.so-only");
    }

    #[test]
    fn mutual_recursion_in_libc_is_handled() {
        let catalog = Catalog::linux_3_19();
        let bytes = generate_library(&libc_spec(&catalog));
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let mut linker = Linker::new();
        linker.add_library(LIBC_SONAME, ba);
        linker.seal();
        let glob_fp = linker.resolve_export(LIBC_SONAME, "glob").unwrap();
        let fnmatch_fp = linker.resolve_export(LIBC_SONAME, "fnmatch").unwrap();
        assert_eq!(glob_fp.syscalls, fnmatch_fp.syscalls);
    }

    #[test]
    fn ldso_contains_table_5_footprint() {
        let catalog = Catalog::linux_3_19();
        let bytes = generate_library(&ldso_spec(&catalog));
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let direct = ba.direct_syscalls();
        assert!(direct.contains(&21), "access");
        assert!(direct.contains(&158), "arch_prctl");
        assert!(direct.contains(&10), "mprotect");
    }

    #[test]
    fn system_libraries_generate_and_parse() {
        let catalog = Catalog::linux_3_19();
        let libs = generate_system_libraries(&catalog);
        assert_eq!(libs.len(), 4);
        for (name, bytes) in &libs {
            let elf = ElfFile::parse(bytes).unwrap_or_else(|e| {
                panic!("{name} failed to parse: {e}")
            });
            assert_eq!(elf.soname().unwrap().as_deref(), Some(name.as_str()));
        }
    }

    #[test]
    fn libc_function_sizes_respect_nominal_sizes() {
        let catalog = Catalog::linux_3_19();
        let bytes = generate_library(&libc_spec(&catalog));
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        for (_, sym) in catalog.libc.iter().take(50) {
            let idx = ba.export(&sym.name).expect("exported");
            assert!(
                ba.funcs[idx].size >= u64::from(sym.size),
                "{} smaller than nominal",
                sym.name
            );
        }
    }
}
