//! The package-repository model: packages, files, dependencies, and the
//! popularity-contest dataset.
//!
//! Mirrors the study's view of Ubuntu/Debian: APT packages are the unit of
//! installation and of the popularity survey; each package ships
//! executables, shared libraries, and interpreted scripts; packages track
//! dependencies (a Python application depends on the Python interpreter
//! package, paper §2).

use std::collections::HashMap;

/// A file shipped by a package.
#[derive(Debug, Clone)]
pub enum PackageFile {
    /// An ELF object (executable or shared library), with its bytes.
    Elf {
        /// File name within the package.
        name: String,
        /// The complete ELF image.
        bytes: Vec<u8>,
    },
    /// An interpreted script, carrying only its shebang line (the study
    /// classifies scripts by interpreter and attributes the interpreter's
    /// footprint to them, §2.3).
    Script {
        /// File name within the package.
        name: String,
        /// The shebang interpreter path (e.g. `/bin/sh`, `/usr/bin/python`).
        shebang: String,
    },
}

impl PackageFile {
    /// The file's name.
    pub fn name(&self) -> &str {
        match self {
            PackageFile::Elf { name, .. } | PackageFile::Script { name, .. } => name,
        }
    }

    /// The raw ELF image, when this is a binary ([`None`] for scripts).
    /// This is the byte view the incremental cache hashes: callers can
    /// fingerprint any package member — including fault-mutated ones —
    /// without matching on the variant themselves.
    pub fn elf_bytes(&self) -> Option<&[u8]> {
        match self {
            PackageFile::Elf { bytes, .. } => Some(bytes),
            PackageFile::Script { .. } => None,
        }
    }
}

/// One APT-style package.
#[derive(Debug, Clone)]
pub struct Package {
    /// Package name (unique within the repository).
    pub name: String,
    /// Names of packages this one depends on.
    pub depends: Vec<String>,
    /// Shipped files.
    pub files: Vec<PackageFile>,
}

/// The popularity-contest dataset: how many of the surveyed installations
/// installed each package (paper §2: 2,935,744 installations).
#[derive(Debug, Clone, Default)]
pub struct Popcon {
    /// Total number of surveyed installations.
    pub total_installations: u64,
    counts: HashMap<String, u64>,
}

impl Popcon {
    /// Creates an empty dataset with the given survey size.
    pub fn new(total_installations: u64) -> Self {
        Self { total_installations, counts: HashMap::new() }
    }

    /// Records a package's installation count.
    pub fn set_count(&mut self, package: &str, count: u64) {
        debug_assert!(count <= self.total_installations);
        self.counts.insert(package.to_owned(), count);
    }

    /// Installation count for a package (0 when unsurveyed).
    pub fn count(&self, package: &str) -> u64 {
        self.counts.get(package).copied().unwrap_or(0)
    }

    /// Installation probability of a package: `count / total`.
    pub fn probability(&self, package: &str) -> f64 {
        if self.total_installations == 0 {
            return 0.0;
        }
        self.count(package) as f64 / self.total_installations as f64
    }

    /// Number of surveyed packages.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(package, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Serializes in the Debian popularity-contest `by_inst` style:
    /// `rank name inst` lines ordered by installation count, preceded by a
    /// submissions header.
    pub fn to_by_inst(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(&str, u64)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(out, "Submissions: {}", self.total_installations);
        for (rank, (name, count)) in rows.iter().enumerate() {
            let _ = writeln!(out, "{} {} {}", rank + 1, name, count);
        }
        out
    }

    /// Parses the `by_inst` format back into a dataset.
    ///
    /// Returns `None` when the header is missing or a row is malformed.
    pub fn from_by_inst(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let total = header.strip_prefix("Submissions:")?.trim().parse().ok()?;
        let mut popcon = Popcon::new(total);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let _rank = parts.next()?;
            let name = parts.next()?;
            let count: u64 = parts.next()?.parse().ok()?;
            popcon.set_count(name, count);
        }
        Some(popcon)
    }
}

/// Well-known shebang interpreters and the Figure 1 language buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interpreter {
    /// `/bin/sh` → dash on Ubuntu.
    Dash,
    /// `/bin/bash`.
    Bash,
    /// Python 2/3.
    Python,
    /// Perl.
    Perl,
    /// Ruby.
    Ruby,
    /// Anything else.
    Other,
}

impl Interpreter {
    /// Classifies a shebang line's interpreter path.
    pub fn classify(shebang: &str) -> Self {
        let path = shebang.trim_start_matches("#!").trim();
        let exe = path.split_whitespace().next().unwrap_or("");
        let base = exe.rsplit('/').next().unwrap_or("");
        // `#!/usr/bin/env python` style.
        let base = if base == "env" {
            path.split_whitespace().nth(1).unwrap_or("")
        } else {
            base
        };
        if base == "sh" || base == "dash" {
            Interpreter::Dash
        } else if base == "bash" {
            Interpreter::Bash
        } else if base.starts_with("python") {
            Interpreter::Python
        } else if base.starts_with("perl") {
            Interpreter::Perl
        } else if base.starts_with("ruby") {
            Interpreter::Ruby
        } else {
            Interpreter::Other
        }
    }

    /// The package providing this interpreter in the synthetic corpus.
    pub fn providing_package(self) -> &'static str {
        match self {
            Interpreter::Dash => "dash",
            Interpreter::Bash => "bash",
            Interpreter::Python => "python2.7",
            Interpreter::Perl => "perl",
            Interpreter::Ruby => "ruby2.1",
            Interpreter::Other => "binutils-misc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcon_probability() {
        let mut p = Popcon::new(1000);
        p.set_count("libc6", 1000);
        p.set_count("kexec-tools", 10);
        assert_eq!(p.probability("libc6"), 1.0);
        assert_eq!(p.probability("kexec-tools"), 0.01);
        assert_eq!(p.probability("unknown"), 0.0);
        assert_eq!(p.count("kexec-tools"), 10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn by_inst_roundtrip() {
        let mut p = Popcon::new(1000);
        p.set_count("libc6", 1000);
        p.set_count("coreutils", 998);
        p.set_count("kexec-tools", 10);
        let text = p.to_by_inst();
        assert!(text.starts_with("Submissions: 1000\n"));
        assert!(text.contains("1 libc6 1000"));
        let back = Popcon::from_by_inst(&text).expect("parse");
        assert_eq!(back.total_installations, 1000);
        assert_eq!(back.count("coreutils"), 998);
        assert_eq!(back.count("kexec-tools"), 10);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn by_inst_rejects_garbage() {
        assert!(Popcon::from_by_inst("").is_none());
        assert!(Popcon::from_by_inst("no header\n1 x 2").is_none());
        assert!(Popcon::from_by_inst("Submissions: 10\n1 pkg NaN").is_none());
    }

    #[test]
    fn empty_survey_is_zero() {
        let p = Popcon::new(0);
        assert_eq!(p.probability("x"), 0.0);
    }

    #[test]
    fn shebang_classification() {
        assert_eq!(Interpreter::classify("#!/bin/sh"), Interpreter::Dash);
        assert_eq!(Interpreter::classify("#!/bin/bash"), Interpreter::Bash);
        assert_eq!(
            Interpreter::classify("#!/usr/bin/python2.7"),
            Interpreter::Python
        );
        assert_eq!(
            Interpreter::classify("#!/usr/bin/env python3"),
            Interpreter::Python
        );
        assert_eq!(Interpreter::classify("#!/usr/bin/perl -w"), Interpreter::Perl);
        assert_eq!(
            Interpreter::classify("#!/usr/bin/ruby2.1"),
            Interpreter::Ruby
        );
        assert_eq!(
            Interpreter::classify("#!/usr/bin/awk -f"),
            Interpreter::Other
        );
    }
}
