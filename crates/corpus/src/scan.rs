//! Repository scanning: the Figure 1 executable-type census.
//!
//! Classifies every file in a set of packages the way the study does:
//! ELF binaries by parsing their headers (static executable / dynamic
//! executable / shared library), scripts by their shebang interpreter.

use std::collections::HashMap;

use apistudy_elf::{BinaryClass, ElfFile};

use crate::model::{Interpreter, Package, PackageFile};

/// Census of executable types across a repository (Figure 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MixCensus {
    /// ELF files by class.
    pub elf: HashMap<BinaryClass, usize>,
    /// Scripts by interpreter.
    pub scripts: HashMap<Interpreter, usize>,
    /// ELF files that failed to parse.
    pub unparsable: usize,
}

impl MixCensus {
    /// Scans a set of packages.
    pub fn scan<'a>(packages: impl IntoIterator<Item = &'a Package>) -> Self {
        let mut census = Self::default();
        for pkg in packages {
            for file in &pkg.files {
                match file {
                    PackageFile::Elf { bytes, .. } => match ElfFile::parse(bytes) {
                        Ok(elf) => {
                            *census.elf.entry(elf.classify()).or_insert(0) += 1;
                        }
                        Err(_) => census.unparsable += 1,
                    },
                    PackageFile::Script { shebang, .. } => {
                        let interp = Interpreter::classify(shebang);
                        *census.scripts.entry(interp).or_insert(0) += 1;
                    }
                }
            }
        }
        census
    }

    /// Total ELF files.
    pub fn elf_total(&self) -> usize {
        self.elf.values().sum()
    }

    /// Total scripts.
    pub fn script_total(&self) -> usize {
        self.scripts.values().sum()
    }

    /// Total executables (ELF + scripts).
    pub fn total(&self) -> usize {
        self.elf_total() + self.script_total()
    }

    /// Fraction of all executables that are ELF.
    pub fn elf_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.elf_total() as f64 / self.total() as f64
    }

    /// Fraction of scripts for one interpreter, over all executables.
    pub fn script_fraction(&self, interp: Interpreter) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.scripts.get(&interp).copied().unwrap_or(0) as f64
            / self.total() as f64
    }

    /// Among ELF files, the fraction in a given class.
    pub fn elf_class_fraction(&self, class: BinaryClass) -> f64 {
        let total = self.elf_total();
        if total == 0 {
            return 0.0;
        }
        self.elf.get(&class).copied().unwrap_or(0) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{CalibrationSpec, Scale};
    use crate::generate::SynthRepo;

    #[test]
    fn census_shape_matches_figure_1() {
        let repo = SynthRepo::new(
            Scale { packages: 300, installations: 10_000 },
            CalibrationSpec::default(),
            7,
        );
        let packages = repo.materialize_all();
        let census = MixCensus::scan(&packages);
        assert_eq!(census.unparsable, 0);
        // ELF share near 60%.
        let elf = census.elf_fraction();
        assert!((0.45..0.75).contains(&elf), "elf fraction {elf}");
        // dash is the largest script bucket.
        let dash = census.script_fraction(Interpreter::Dash);
        let ruby = census.script_fraction(Interpreter::Ruby);
        assert!(dash > ruby, "dash {dash} vs ruby {ruby}");
        // Shared libraries are roughly half of ELF files.
        let libs = census.elf_class_fraction(BinaryClass::SharedLib);
        assert!((0.2..0.8).contains(&libs), "lib fraction {libs}");
        // Static executables are rare.
        let stat = census.elf_class_fraction(BinaryClass::StaticExec);
        assert!(stat < 0.05, "static fraction {stat}");
    }
}
