//! Materialization: turning a [`RepoPlan`] into packages with real ELF
//! bytes.
//!
//! Materialization is lazy and deterministic: `package(i)` regenerates the
//! same bytes for the same plan, so large corpora can be streamed through
//! the analysis pipeline without holding every binary in memory.

use apistudy_catalog::Catalog;

use crate::{
    codegen::{
        generate_executable, generate_library, ExecSpec, ExportSpec, LibSpec,
        VectoredVia,
    },
    calibration::{CalibrationSpec, Scale},
    libc_gen::{self, LIBC_SONAME},
    model::{Package, PackageFile},
    plan::{ExecPlan, OwnLibPlan, PackagePlan, RepoPlan},
};

/// A planned synthetic repository with lazy, deterministic materialization.
pub struct SynthRepo {
    /// The plan (ground truth).
    pub plan: RepoPlan,
    catalog: Catalog,
}

fn via(wrapper: bool) -> VectoredVia {
    if wrapper {
        VectoredVia::Wrapper
    } else {
        VectoredVia::Inline
    }
}

fn exec_spec(pkg: &PackagePlan, e: &ExecPlan) -> ExecSpec {
    let mut needed = Vec::new();
    let mut libc_calls = e.libc_calls.clone();
    if !e.is_static {
        needed.push(LIBC_SONAME.to_owned());
        for &(li, ref export) in &e.own_lib_calls {
            let soname = &pkg.libs[li].soname;
            if !needed.contains(soname) {
                needed.push(soname.clone());
            }
            libc_calls.push(export.clone());
        }
    }
    ExecSpec {
        is_static: e.is_static,
        needed,
        libc_calls,
        direct_syscalls: e.direct_syscalls.clone(),
        ioctl_codes: e.ioctl_codes.iter().map(|&(c, w)| (c, via(w))).collect(),
        fcntl_codes: e.fcntl_codes.iter().map(|&(c, w)| (c, via(w))).collect(),
        prctl_codes: e.prctl_codes.iter().map(|&(c, w)| (c, via(w))).collect(),
        paths: e.paths.clone(),
        dead_syscalls: Vec::new(),
        helpers: 1 + (pkg.seed % 3) as u32,
        seed: pkg.seed ^ fxhash(&e.file),
    }
}

fn lib_spec(l: &OwnLibPlan) -> LibSpec {
    LibSpec {
        soname: l.soname.clone(),
        needed: vec![LIBC_SONAME.to_owned()],
        exports: l
            .exports
            .iter()
            .map(|x| ExportSpec {
                name: x.name.clone(),
                direct_syscalls: x.direct_syscalls.clone(),
                calls_exports: Vec::new(),
                imports: x.libc_calls.clone(),
                pad_to: 0,
            })
            .collect(),
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SynthRepo {
    /// Plans a repository; materialization happens per package.
    pub fn new(scale: Scale, spec: CalibrationSpec, seed: u64) -> Self {
        let plan = RepoPlan::plan(scale, spec, seed);
        Self { plan, catalog: Catalog::linux_3_19() }
    }

    /// Number of packages.
    pub fn package_count(&self) -> usize {
        self.plan.packages.len()
    }

    /// Materializes one package (index into `plan.packages`).
    ///
    /// Package 0 is `libc6` and additionally ships the four system
    /// libraries (libc, the dynamic linker, libpthread, librt).
    pub fn package(&self, i: usize) -> Package {
        let p = &self.plan.packages[i];
        let mut files = Vec::new();
        if p.name == "libc6" {
            for (name, bytes) in libc_gen::generate_system_libraries(&self.catalog) {
                files.push(PackageFile::Elf { name, bytes });
            }
        }
        for l in &p.libs {
            files.push(PackageFile::Elf {
                name: l.soname.clone(),
                bytes: generate_library(&lib_spec(l)),
            });
        }
        for e in &p.execs {
            files.push(PackageFile::Elf {
                name: e.file.clone(),
                bytes: generate_executable(&exec_spec(p, e)),
            });
        }
        for s in &p.scripts {
            files.push(PackageFile::Script {
                name: s.file.clone(),
                shebang: s.shebang.clone(),
            });
        }
        Package { name: p.name.clone(), depends: p.depends.clone(), files }
    }

    /// Materializes every package (small scales only).
    pub fn materialize_all(&self) -> Vec<Package> {
        (0..self.package_count()).map(|i| self.package(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use apistudy_elf::ElfFile;

    fn tiny_repo() -> SynthRepo {
        SynthRepo::new(
            Scale { packages: 120, installations: 10_000 },
            CalibrationSpec::default(),
            0xC0FFEE,
        )
    }

    #[test]
    fn plans_requested_package_count() {
        let repo = tiny_repo();
        assert_eq!(repo.package_count(), 120);
        assert_eq!(repo.plan.packages[0].name, "libc6");
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = tiny_repo();
        let b = tiny_repo();
        for i in [0usize, 1, 50, 119] {
            let pa = a.package(i);
            let pb = b.package(i);
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.files.len(), pb.files.len());
            for (fa, fb) in pa.files.iter().zip(&pb.files) {
                match (fa, fb) {
                    (
                        PackageFile::Elf { bytes: ba, .. },
                        PackageFile::Elf { bytes: bb, .. },
                    ) => assert_eq!(ba, bb),
                    (
                        PackageFile::Script { shebang: sa, .. },
                        PackageFile::Script { shebang: sb, .. },
                    ) => assert_eq!(sa, sb),
                    _ => panic!("file kind mismatch"),
                }
            }
        }
    }

    #[test]
    fn every_elf_parses() {
        let repo = tiny_repo();
        for i in 0..repo.package_count().min(40) {
            let pkg = repo.package(i);
            for f in &pkg.files {
                if let PackageFile::Elf { name, bytes } = f {
                    ElfFile::parse(bytes)
                        .unwrap_or_else(|e| panic!("{name}: {e}"));
                }
            }
        }
    }

    #[test]
    fn libc6_ships_system_libraries() {
        let repo = tiny_repo();
        let libc6 = repo.package(0);
        let names: Vec<&str> = libc6.files.iter().map(|f| f.name()).collect();
        assert!(names.contains(&"libc.so.6"));
        assert!(names.contains(&"ld-linux-x86-64.so.2"));
        assert!(names.contains(&"libpthread.so.0"));
        assert!(names.contains(&"librt.so.1"));
    }

    #[test]
    fn popcon_covers_every_package() {
        let repo = tiny_repo();
        for p in &repo.plan.packages {
            assert!(repo.plan.popcon.count(&p.name) >= 1, "{}", p.name);
        }
        assert_eq!(repo.plan.popcon.count("libc6"), 10_000);
    }

    #[test]
    fn ranking_is_a_permutation_with_224_indispensable() {
        let repo = tiny_repo();
        let r = &repo.plan.ranking;
        assert_eq!(r.order.len(), 323);
        assert_eq!(r.indispensable, 224);
        let set: std::collections::HashSet<u32> = r.order.iter().copied().collect();
        assert_eq!(set.len(), 323);
    }

    #[test]
    fn script_packages_depend_on_interpreters() {
        let repo = tiny_repo();
        for p in &repo.plan.packages {
            for s in &p.scripts {
                let interp = crate::model::Interpreter::classify(&s.shebang);
                let provider = interp.providing_package();
                if provider != p.name {
                    assert!(
                        p.depends.iter().any(|d| d == provider),
                        "{} has a {:?} script but no dep on {provider}",
                        p.name,
                        interp
                    );
                }
            }
        }
    }
}
