//! Deterministic corrupt-binary injection for robustness experiments.
//!
//! The study pipeline must survive the real world's malformed ELF objects:
//! truncated downloads, doctored headers, hostile symbol tables. This
//! module turns the pristine synthetic corpus into a controllably hostile
//! one. A [`FaultPlan`] — a seed plus a corruption rate — deterministically
//! selects `(package, file)` pairs and mutates their ELF bytes with one of
//! eight structural faults ([`FaultKind`]), producing a [`FaultRecord`]
//! ground-truth ledger the pipeline's quarantine accounting is verified
//! against.
//!
//! Two properties the degradation experiments rely on:
//!
//! - **Determinism.** Selection and mutation depend only on
//!   `(seed, package index, file index)` and the input bytes; the same plan
//!   applied to the same corpus yields byte-identical corruption.
//! - **Nesting.** Selection compares a per-file hash against a rate
//!   threshold, so the injected set at rate *r₁* is a subset of the set at
//!   *r₂ ≥ r₁* (same seed). Degradation curves over a rate sweep are
//!   therefore monotone: raising the rate only ever corrupts *more* files.
//!
//! Every kind except [`FaultKind::CyclicNeeded`] is *fatal*: parsing or
//! analyzing the mutated object must fail (the pipeline should quarantine
//! it). `CyclicNeeded` rewrites the `.dynamic` terminator into a
//! self-referential `DT_NEEDED`, producing a dependency cycle the linker
//! must tolerate without changing the binary's footprint.

use apistudy_elf::{
    types::{dt, DYN_SIZE, EHDR_SIZE, SHDR_SIZE, SYM_SIZE},
    ElfFile,
};

use crate::model::{Package, PackageFile};

/// A structural fault the corruptor can inject into an ELF image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Truncate the file inside the 64-byte ELF header.
    TruncateHeader,
    /// Truncate the file inside the section-header table.
    TruncateSections,
    /// Truncate the file inside the `.text` body (which also severs the
    /// section-header table, laid out at the end of the file).
    TruncateBody,
    /// Flip one bit in a load-bearing identification byte (magic, class,
    /// data encoding, or machine).
    HeaderBitFlip,
    /// Point `.text`'s `sh_offset` far past the end of the file.
    SectionOffsetOutOfRange,
    /// Point a symbol's `st_name` far outside its string table.
    StringTableOutOfRange,
    /// Set `.symtab`'s `sh_entsize` to a nonsense value.
    BogusSymtab,
    /// Overwrite the `.dynamic` `DT_NULL` terminator with a `DT_NEEDED`
    /// entry naming the object's own soname — a dependency cycle.
    CyclicNeeded,
}

impl FaultKind {
    /// Every kind, in stable order (index order matches plan selection).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::TruncateHeader,
        FaultKind::TruncateSections,
        FaultKind::TruncateBody,
        FaultKind::HeaderBitFlip,
        FaultKind::SectionOffsetOutOfRange,
        FaultKind::StringTableOutOfRange,
        FaultKind::BogusSymtab,
        FaultKind::CyclicNeeded,
    ];

    /// Whether the fault must make parsing or analysis fail.
    ///
    /// `CyclicNeeded` is the one survivable fault: the linker tolerates
    /// dependency cycles, so the binary stays analyzable.
    pub fn is_fatal(self) -> bool {
        !matches!(self, FaultKind::CyclicNeeded)
    }

    /// A short stable label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TruncateHeader => "truncate-header",
            FaultKind::TruncateSections => "truncate-sections",
            FaultKind::TruncateBody => "truncate-body",
            FaultKind::HeaderBitFlip => "header-bit-flip",
            FaultKind::SectionOffsetOutOfRange => "section-offset-oob",
            FaultKind::StringTableOutOfRange => "strtab-oob",
            FaultKind::BogusSymtab => "bogus-symtab",
            FaultKind::CyclicNeeded => "cyclic-needed",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Ground truth for one injected fault: which file was corrupted and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the package in the repository plan.
    pub package_index: usize,
    /// Index of the file within the materialized package.
    pub file_index: usize,
    /// File name within the package.
    pub file: String,
    /// The fault that was actually applied (may differ from the planned
    /// kind when the planned mutation was inapplicable — e.g.
    /// [`FaultKind::CyclicNeeded`] on an object without a soname — and the
    /// corruptor fell back to [`FaultKind::HeaderBitFlip`]).
    pub kind: FaultKind,
    /// Whether the applied fault must cause a quarantine.
    pub fatal: bool,
}

/// A seeded, rate-parameterized corruption plan.
///
/// See the [module docs](self) for the determinism and nesting guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Selection threshold in basis points (0..=10_000).
    threshold_bp: u64,
}

/// splitmix64-style finalizer over the `(seed, package, file)` coordinates.
fn mix(seed: u64, pkg: u64, file: u64) -> u64 {
    let mut z = seed
        ^ pkg.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ file.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Creates a plan. `rate` is the fraction of ELF files to corrupt,
    /// clamped to `0.0..=1.0` and quantized to basis points (so rates
    /// below 0.0001 round to zero injections).
    pub fn new(seed: u64, rate: f64) -> Self {
        let clamped = rate.clamp(0.0, 1.0);
        Self { seed, threshold_bp: (clamped * 10_000.0).round() as u64 }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The effective corruption rate after quantization.
    pub fn rate(&self) -> f64 {
        self.threshold_bp as f64 / 10_000.0
    }

    /// The fault planned for `(package, file)`, or `None` when the file is
    /// not selected at this rate. Pure function of the plan coordinates:
    /// the injection ledger can be recomputed without the bytes.
    pub fn planned(&self, package_index: usize, file_index: usize) -> Option<FaultKind> {
        let h = mix(self.seed, package_index as u64, file_index as u64);
        if h % 10_000 >= self.threshold_bp {
            return None;
        }
        Some(FaultKind::ALL[((h >> 16) % FaultKind::ALL.len() as u64) as usize])
    }

    /// Corrupts one ELF image in place if the plan selects it.
    ///
    /// Returns the record of the fault actually applied, or `None` when
    /// the file is not selected (bytes untouched). When the planned
    /// mutation is inapplicable to this particular object, the corruptor
    /// falls back to [`FaultKind::HeaderBitFlip`] (always applicable to a
    /// parseable ELF) so a selected file is never silently left pristine.
    pub fn corrupt(
        &self,
        package_index: usize,
        file_index: usize,
        file: &str,
        bytes: &mut Vec<u8>,
    ) -> Option<FaultRecord> {
        let planned = self.planned(package_index, file_index)?;
        let h = mix(self.seed, package_index as u64, file_index as u64);
        let applied = inject(planned, h, bytes)
            .or_else(|| inject(FaultKind::HeaderBitFlip, h, bytes))?;
        Some(FaultRecord {
            package_index,
            file_index,
            file: file.to_owned(),
            kind: applied,
            fatal: applied.is_fatal(),
        })
    }

    /// Corrupts every selected ELF file of a materialized package,
    /// returning the injection ledger (empty when nothing was selected).
    /// Scripts are never corrupted (the fault model is ELF-structural).
    pub fn corrupt_package(&self, package_index: usize, package: &mut Package) -> Vec<FaultRecord> {
        let mut records = Vec::new();
        for (file_index, f) in package.files.iter_mut().enumerate() {
            if let PackageFile::Elf { name, bytes } = f {
                if let Some(rec) = self.corrupt(package_index, file_index, name, bytes) {
                    records.push(rec);
                }
            }
        }
        records
    }
}

/// File offsets the mutators need, harvested from one parse of the
/// still-valid input. Keeping plain offsets (not parser borrows) lets the
/// mutators patch the owning buffer afterwards.
struct Landmarks {
    shoff: usize,
    shnum: usize,
    /// `(section header index, file offset, size)` of `.text`.
    text: Option<(usize, usize, usize)>,
    /// `(section header index, file offset, size)` of `.symtab`.
    symtab: Option<(usize, usize, usize)>,
    /// File offset of the `.dynamic` `DT_NULL` terminator entry.
    dt_null_off: Option<usize>,
    /// `DT_SONAME`'s `.dynstr` offset.
    soname_off: Option<u64>,
}

fn landmarks(bytes: &[u8]) -> Option<Landmarks> {
    let elf = ElfFile::parse(bytes).ok()?;
    let find = |name: &str| {
        elf.sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (i, s.offset as usize, s.size as usize))
    };
    let mut dt_null_off = None;
    let mut soname_off = None;
    if let Some((_, dyn_off, dyn_size)) = find(".dynamic") {
        let entries = bytes.get(dyn_off..dyn_off + dyn_size)?;
        for (i, chunk) in entries.chunks_exact(DYN_SIZE).enumerate() {
            let tag = i64::from_le_bytes(chunk[0..8].try_into().ok()?);
            let val = u64::from_le_bytes(chunk[8..16].try_into().ok()?);
            if tag == dt::SONAME {
                soname_off = Some(val);
            }
            if tag == dt::NULL {
                dt_null_off = Some(dyn_off + i * DYN_SIZE);
                break;
            }
        }
    }
    Some(Landmarks {
        shoff: elf.header.shoff as usize,
        shnum: elf.header.shnum as usize,
        text: find(".text"),
        symtab: find(".symtab"),
        dt_null_off,
        soname_off,
    })
}

fn patch_u32(bytes: &mut [u8], off: usize, value: u32) -> bool {
    match bytes.get_mut(off..off + 4) {
        Some(slot) => {
            slot.copy_from_slice(&value.to_le_bytes());
            true
        }
        None => false,
    }
}

fn patch_u64(bytes: &mut [u8], off: usize, value: u64) -> bool {
    match bytes.get_mut(off..off + 8) {
        Some(slot) => {
            slot.copy_from_slice(&value.to_le_bytes());
            true
        }
        None => false,
    }
}

/// Applies one specific fault to an ELF image, using `salt` to pick among
/// equivalent cut points / bit positions. Returns the kind actually
/// applied, or `None` when this object cannot host the fault (caller
/// falls back). Exposed so tests and experiments can force a kind rather
/// than go through plan selection.
pub fn inject(kind: FaultKind, salt: u64, bytes: &mut Vec<u8>) -> Option<FaultKind> {
    let lm = landmarks(bytes)?;
    let len = bytes.len();
    match kind {
        FaultKind::TruncateHeader => {
            // Any length below EHDR_SIZE fails the very first header read.
            bytes.truncate(1 + (salt as usize % (EHDR_SIZE - 1)));
            Some(kind)
        }
        FaultKind::TruncateSections => {
            let table = lm.shnum * SHDR_SIZE;
            if lm.shnum == 0 || lm.shoff >= len || table < 2 {
                return None;
            }
            let span = table.min(len - lm.shoff);
            bytes.truncate(lm.shoff + 1 + salt as usize % (span - 1));
            Some(kind)
        }
        FaultKind::TruncateBody => {
            let (_, off, size) = lm.text?;
            if size < 2 || off + size > len {
                return None;
            }
            bytes.truncate(off + 1 + salt as usize % (size - 1));
            Some(kind)
        }
        FaultKind::HeaderBitFlip => {
            // Bytes whose every bit is load-bearing for `ElfFile::parse`:
            // the four magic bytes, EI_CLASS, EI_DATA, and the low machine
            // byte (x86-64 == 62, and the high byte is zero).
            const TARGETS: [usize; 7] = [0, 1, 2, 3, 4, 5, 18];
            let byte = TARGETS[salt as usize % TARGETS.len()];
            let bit = (salt >> 8) % 8;
            *bytes.get_mut(byte)? ^= 1 << bit;
            Some(kind)
        }
        FaultKind::SectionOffsetOutOfRange => {
            let (idx, _, _) = lm.text?;
            let field = lm.shoff + idx * SHDR_SIZE + 24; // sh_offset
            patch_u64(bytes, field, len as u64 + 0x7fff_0000).then_some(kind)
        }
        FaultKind::StringTableOutOfRange => {
            let (_, off, size) = lm.symtab?;
            if size < 2 * SYM_SIZE {
                return None;
            }
            // st_name of symbol 1 (symbol 0 is the reserved null entry).
            patch_u32(bytes, off + SYM_SIZE, 0x7fff_fff0).then_some(kind)
        }
        FaultKind::BogusSymtab => {
            let (idx, _, _) = lm.symtab?;
            let field = lm.shoff + idx * SHDR_SIZE + 56; // sh_entsize
            patch_u64(bytes, field, 17).then_some(kind)
        }
        FaultKind::CyclicNeeded => {
            // Replace the DT_NULL terminator with DT_NEEDED -> own soname.
            // Only shared libraries carry DT_SONAME; for anything else the
            // caller falls back to a fatal fault.
            let null_off = lm.dt_null_off?;
            let soname = lm.soname_off?;
            patch_u64(bytes, null_off, dt::NEEDED as u64);
            patch_u64(bytes, null_off + 8, soname).then_some(kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{calibration::CalibrationSpec, generate::SynthRepo, Scale};
    use apistudy_analysis::BinaryAnalysis;

    fn tiny_repo() -> SynthRepo {
        SynthRepo::new(
            Scale { packages: 120, installations: 10_000 },
            CalibrationSpec::default(),
            0xFA017,
        )
    }

    /// First ELF file of the repo that has a soname (a shared library) and
    /// first executable, for forcing specific kinds.
    fn sample_lib_and_exec(repo: &SynthRepo) -> (Vec<u8>, Vec<u8>) {
        let mut lib = None;
        let mut exec = None;
        for i in 0..repo.package_count() {
            for f in repo.package(i).files {
                if let PackageFile::Elf { bytes, .. } = f {
                    let has_soname = ElfFile::parse(&bytes)
                        .ok()
                        .and_then(|e| e.soname().ok().flatten())
                        .is_some();
                    if has_soname && lib.is_none() {
                        lib = Some(bytes);
                    } else if !has_soname && exec.is_none() {
                        exec = Some(bytes);
                    }
                }
            }
            if lib.is_some() && exec.is_some() {
                break;
            }
        }
        (lib.expect("corpus has a library"), exec.expect("corpus has an executable"))
    }

    fn parse_or_analyze(bytes: &[u8]) -> Result<BinaryAnalysis, apistudy_elf::ElfError> {
        let elf = ElfFile::parse(bytes)?;
        BinaryAnalysis::analyze(&elf)
    }

    #[test]
    fn every_fatal_kind_actually_breaks_the_binary() {
        let repo = tiny_repo();
        let (lib, _) = sample_lib_and_exec(&repo);
        parse_or_analyze(&lib).expect("pristine library analyzes");
        for kind in FaultKind::ALL {
            if !kind.is_fatal() {
                continue;
            }
            for salt in [0u64, 0x1234_5678_9abc, u64::MAX / 3] {
                let mut mutated = lib.clone();
                let applied = inject(kind, salt, &mut mutated)
                    .unwrap_or_else(|| panic!("{kind} inapplicable to library"));
                assert_eq!(applied, kind);
                assert!(
                    parse_or_analyze(&mutated).is_err(),
                    "{kind} (salt {salt:#x}) did not break the binary"
                );
            }
        }
    }

    #[test]
    fn cyclic_needed_is_survivable_and_footprint_preserving() {
        let repo = tiny_repo();
        let (lib, exec) = sample_lib_and_exec(&repo);
        let clean = parse_or_analyze(&lib).expect("pristine library analyzes");

        let mut mutated = lib.clone();
        let applied = inject(FaultKind::CyclicNeeded, 7, &mut mutated)
            .expect("libraries have a soname");
        assert_eq!(applied, FaultKind::CyclicNeeded);
        assert_ne!(mutated, lib, "mutation must change the bytes");
        let cyclic = parse_or_analyze(&mutated).expect("cycle must stay analyzable");
        let soname = cyclic.soname.clone().expect("library keeps its soname");
        assert!(
            cyclic.needed.contains(&soname),
            "self-edge must appear in DT_NEEDED"
        );
        assert_eq!(cyclic.funcs.len(), clean.funcs.len());
        assert_eq!(cyclic.instructions, clean.instructions);
        assert_eq!(cyclic.direct_syscalls(), clean.direct_syscalls());
        let roots = 0..clean.funcs.len();
        assert_eq!(
            cyclic.reachable_facts(roots.clone()),
            clean.reachable_facts(roots)
        );

        // Executables carry no soname: the mutator must decline so the
        // corruptor can fall back to a fatal kind.
        let mut e = exec.clone();
        assert_eq!(inject(FaultKind::CyclicNeeded, 7, &mut e), None);
        assert_eq!(e, exec, "declined injection must not touch the bytes");
    }

    #[test]
    fn plan_is_deterministic_and_nested_across_rates() {
        let low = FaultPlan::new(99, 0.02);
        let high = FaultPlan::new(99, 0.10);
        let mut low_hits = 0;
        for pkg in 0..200 {
            for file in 0..8 {
                let a = low.planned(pkg, file);
                assert_eq!(a, low.planned(pkg, file), "planned() must be pure");
                if let Some(kind) = a {
                    low_hits += 1;
                    assert_eq!(
                        high.planned(pkg, file),
                        Some(kind),
                        "rate {} selection must nest inside rate {}",
                        low.rate(),
                        high.rate()
                    );
                }
            }
        }
        assert!(low_hits > 0, "2% of 1600 files should select something");
        assert_eq!(FaultPlan::new(99, 0.0).planned(0, 0), None);
        let different_seed = FaultPlan::new(100, 0.02);
        assert!(
            (0..200).any(|p| (0..8).any(|f| low.planned(p, f) != different_seed.planned(p, f))),
            "seed must matter"
        );
    }

    #[test]
    fn corrupt_package_matches_plan_and_is_deterministic() {
        let repo = tiny_repo();
        let plan = FaultPlan::new(0xBEEF, 0.25);
        let mut total = 0;
        for i in 0..repo.package_count() {
            let mut a = repo.package(i);
            let mut b = repo.package(i);
            let recs_a = plan.corrupt_package(i, &mut a);
            let recs_b = plan.corrupt_package(i, &mut b);
            assert_eq!(recs_a, recs_b, "corruption must be deterministic");
            for (fa, fb) in a.files.iter().zip(&b.files) {
                if let (
                    PackageFile::Elf { bytes: ba, .. },
                    PackageFile::Elf { bytes: bb, .. },
                ) = (fa, fb)
                {
                    assert_eq!(ba, bb);
                }
            }
            for rec in &recs_a {
                assert_eq!(rec.package_index, i);
                assert!(
                    plan.planned(i, rec.file_index).is_some(),
                    "record without plan selection"
                );
                assert_eq!(rec.fatal, rec.kind.is_fatal());
            }
            // Every selected ELF file produced a record.
            for (fi, f) in repo.package(i).files.iter().enumerate() {
                if matches!(f, PackageFile::Elf { .. })
                    && plan.planned(i, fi).is_some()
                {
                    assert!(
                        recs_a.iter().any(|r| r.file_index == fi),
                        "selected file {fi} of package {i} has no record"
                    );
                }
            }
            total += recs_a.len();
        }
        assert!(total > 0, "25% rate must inject faults somewhere");
    }

    #[test]
    fn rate_is_clamped_and_quantized() {
        assert_eq!(FaultPlan::new(1, -0.5).rate(), 0.0);
        assert_eq!(FaultPlan::new(1, 2.0).rate(), 1.0);
        assert_eq!(FaultPlan::new(1, 0.05).rate(), 0.05);
        // Rate 1.0 selects everything.
        let all = FaultPlan::new(1, 1.0);
        assert!((0..50).all(|p| all.planned(p, 0).is_some()));
    }
}
