//! Repository planning: deciding *what every package will contain* before
//! any bytes are generated.
//!
//! The planner turns a [`Scale`] and [`CalibrationSpec`] into a
//! [`RepoPlan`]: one [`PackagePlan`] per package with concrete libc calls,
//! direct system calls, vectored opcodes, pseudo-file paths, shipped
//! binaries/scripts, dependencies, and a popularity count. Plans are pure
//! data — materializing them into ELF bytes is `generate.rs`'s job — and
//! they double as the generator's ground truth for validating the analyzer.
//!
//! The planning pipeline (see DESIGN.md §4):
//!
//! 1. build the canonical importance ranking over all 323 system calls;
//! 2. create package skeletons (tiers, probabilities, footprint breadth K
//!    sampled from the Figure 3 curve);
//! 3. place mid/low-importance system calls on carrier packages until each
//!    hits its target importance (Tables 1–2 pins first);
//! 4. sprinkle per-package adoption of the Tables 8–11 variant calls;
//! 5. assign libc symbols to popularity buckets (§3.5) and to packages;
//! 6. patch core packages so all 224 indispensable calls are covered;
//! 7. assign vectored opcodes (Figures 4–5) and pseudo-files (Figure 6);
//! 8. attach scripts (Figure 1), dependencies, and popcon counts.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use apistudy_catalog::{
    wrappers::wrapped_syscalls, Catalog, IoctlGroup, SyscallStatus,
    FCNTL_OPS, PRCTL_OPS,
};
use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};

use crate::{
    calibration::{
        CalibrationSpec, Scale, ADOPTION, BREADTH_CDF, LOW_SYSCALLS,
        MID_SYSCALLS, PINS, STAGE1, STAGE2, STAGE3, STAGE4, UNUSED_SYSCALLS,
    },
    model::Popcon,
};

/// Package tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Always-installed base system packages.
    Core,
    /// Commonly installed packages (10–90%).
    Mid,
    /// The Zipf long tail.
    Tail,
    /// Special-purpose pins (Tables 1–2).
    Pin,
    /// Interpreter packages (dash, bash, python, ...).
    Interpreter,
}

/// Planned executable.
#[derive(Debug, Clone, Default)]
pub struct ExecPlan {
    /// File name.
    pub file: String,
    /// Statically linked.
    pub is_static: bool,
    /// libc functions called.
    pub libc_calls: Vec<String>,
    /// Exports called from the package's own shared library, as
    /// `(library index, export name)`.
    pub own_lib_calls: Vec<(usize, String)>,
    /// Direct system calls.
    pub direct_syscalls: Vec<u32>,
    /// ioctl request codes (`true` = via the libc wrapper).
    pub ioctl_codes: Vec<(u64, bool)>,
    /// fcntl command codes.
    pub fcntl_codes: Vec<(u64, bool)>,
    /// prctl option codes.
    pub prctl_codes: Vec<(u64, bool)>,
    /// Hard-coded pseudo-file paths.
    pub paths: Vec<String>,
}

/// Planned package-private shared library export.
#[derive(Debug, Clone, Default)]
pub struct LibExportPlan {
    /// Export name.
    pub name: String,
    /// libc functions called.
    pub libc_calls: Vec<String>,
    /// Direct system calls.
    pub direct_syscalls: Vec<u32>,
}

/// Planned package-private shared library.
#[derive(Debug, Clone, Default)]
pub struct OwnLibPlan {
    /// `DT_SONAME` (globally unique).
    pub soname: String,
    /// Exports.
    pub exports: Vec<LibExportPlan>,
}

/// Planned script.
#[derive(Debug, Clone)]
pub struct ScriptPlan {
    /// File name.
    pub file: String,
    /// Shebang line.
    pub shebang: String,
}

/// The full plan for one package.
#[derive(Debug, Clone)]
pub struct PackagePlan {
    /// Package name.
    pub name: String,
    /// Installation probability.
    pub prob: f64,
    /// Tier.
    pub tier: Tier,
    /// Footprint-breadth rank bound (see DESIGN.md §4).
    pub breadth: usize,
    /// Dependencies (package names).
    pub depends: Vec<String>,
    /// Executables.
    pub execs: Vec<ExecPlan>,
    /// Package-private shared libraries.
    pub libs: Vec<OwnLibPlan>,
    /// Scripts.
    pub scripts: Vec<ScriptPlan>,
    /// Deterministic materialization seed.
    pub seed: u64,
}

/// The canonical importance ranking over the system call table.
#[derive(Debug, Clone)]
pub struct Ranking {
    /// Rank (0-based) → syscall number.
    pub order: Vec<u32>,
    /// Syscall number → rank.
    pub rank_of: HashMap<u32, usize>,
    /// Number of indispensable calls (the 100%-importance prefix).
    pub indispensable: usize,
}

impl Ranking {
    /// Builds the ranking from the calibration stage lists and the default
    /// adoption table.
    pub fn build(catalog: &Catalog) -> Self {
        let adoption: Vec<(String, f64)> = ADOPTION
            .iter()
            .map(|&(n, r)| (n.to_owned(), r))
            .collect();
        Self::build_with(catalog, &adoption)
    }

    /// Builds the ranking with an explicit (possibly overridden) adoption
    /// table: adoption-rate calls are slotted where their rate meets the
    /// expected unweighted-importance curve.
    pub fn build_with(catalog: &Catalog, adoption: &[(String, f64)]) -> Self {
        let nr = |name: &str| {
            catalog
                .syscalls
                .number_of(name)
                .unwrap_or_else(|| panic!("unknown syscall {name}"))
        };
        let mut order: Vec<u32> = Vec::with_capacity(catalog.syscalls.len());
        let mut seen: HashSet<u32> = HashSet::new();
        let push = |order: &mut Vec<u32>, seen: &mut HashSet<u32>, n: u32| {
            if seen.insert(n) {
                order.push(n);
            }
        };
        // Base order: the stage lists, then every remaining active call
        // (not mid/low/unused), in numeric order — with adoption-rate calls
        // held aside to be slotted in by rate below.
        let tiered: HashSet<u32> = MID_SYSCALLS
            .iter()
            .chain(LOW_SYSCALLS)
            .map(|&(n, _)| nr(n))
            .chain(UNUSED_SYSCALLS.iter().map(|&n| nr(n)))
            .collect();
        let stage1_len = STAGE1.len();
        let adoption_rate: HashMap<u32, f64> = adoption
            .iter()
            .map(|(n, r)| (nr(n), *r))
            .filter(|(n, _)| !tiered.contains(n))
            .collect();
        let mut base: Vec<u32> = Vec::new();
        {
            let mut bseen: HashSet<u32> = HashSet::new();
            for name in STAGE1.iter().chain(STAGE2).chain(STAGE3).chain(STAGE4)
            {
                let n = nr(name);
                if bseen.insert(n) {
                    base.push(n);
                }
            }
            for def in catalog.syscalls.iter() {
                if def.status == SyscallStatus::Active
                    && !tiered.contains(&def.number)
                    && bseen.insert(def.number)
                {
                    base.push(def.number);
                }
            }
        }
        let indispensable = base.len();
        // Interleave: walk the base order (skipping adoption calls) and
        // insert each adoption call where its rate meets the expected
        // unweighted-importance curve. Stage I (the startup set) stays a
        // contiguous prefix.
        let mut adopted: Vec<(u32, f64)> = adoption_rate
            .iter()
            .map(|(&n, &r)| (n, r))
            .collect();
        adopted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut ai = 0usize;
        for (pos, &n) in base.iter().enumerate() {
            if adoption_rate.contains_key(&n) {
                continue;
            }
            while ai < adopted.len()
                && pos >= stage1_len
                && adopted[ai].1
                    >= crate::calibration::expected_unweighted(
                        order.len(),
                        indispensable,
                    )
            {
                push(&mut order, &mut seen, adopted[ai].0);
                ai += 1;
            }
            push(&mut order, &mut seen, n);
        }
        while ai < adopted.len() {
            push(&mut order, &mut seen, adopted[ai].0);
            ai += 1;
        }
        debug_assert_eq!(order.len(), indispensable);
        // Retired-but-attempted calls are in LOW; NoEntryPoint slots go to
        // the very end (never used).
        // Mid tier, by descending target importance.
        let mut mid: Vec<(&str, f64)> = MID_SYSCALLS.to_vec();
        mid.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, _) in mid {
            push(&mut order, &mut seen, nr(name));
        }
        let mut low: Vec<(&str, f64)> = LOW_SYSCALLS.to_vec();
        low.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, _) in low {
            push(&mut order, &mut seen, nr(name));
        }
        for name in UNUSED_SYSCALLS {
            push(&mut order, &mut seen, nr(name));
        }
        for def in catalog.syscalls.iter() {
            push(&mut order, &mut seen, def.number);
        }
        let rank_of = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Self { order, rank_of, indispensable }
    }

    /// Rank of a syscall number (total order; lower = more important).
    pub fn rank(&self, nr: u32) -> usize {
        self.rank_of.get(&nr).copied().unwrap_or(usize::MAX)
    }

    /// Syscall numbers of the top `n` ranks.
    pub fn top(&self, n: usize) -> &[u32] {
        &self.order[..n.min(self.order.len())]
    }
}

/// libc symbol popularity bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibcBucket {
    /// ~100% importance.
    Universal,
    /// 50–99%.
    High,
    /// 1–50%.
    Mid,
    /// Under 1%.
    Rare,
    /// Never used.
    Unused,
}

/// The complete repository plan.
#[derive(Debug, Clone)]
pub struct RepoPlan {
    /// Scale used.
    pub scale: Scale,
    /// Calibration used.
    pub spec: CalibrationSpec,
    /// Master seed.
    pub seed: u64,
    /// Package plans (the system `libc6` package is index 0).
    pub packages: Vec<PackagePlan>,
    /// Popularity-contest counts.
    pub popcon: Popcon,
    /// The canonical importance ranking.
    pub ranking: Ranking,
    /// libc symbol id → bucket.
    pub libc_buckets: Vec<LibcBucket>,
}

/// libc symbols that must be near-universal for the Table 7 libc-variant
/// comparison to come out right: fortified `_chk` variants (missing from
/// uClibc/musl raw) plus the startup/runtime hooks every binary touches.
const UNIVERSAL_PRIORITY: &[&str] = &[
    "__libc_start_main", "__cxa_finalize", "__cxa_atexit",
    "__stack_chk_fail", "__printf_chk", "__fprintf_chk", "__sprintf_chk",
    "__snprintf_chk", "__vfprintf_chk", "__vsnprintf_chk", "__memcpy_chk",
    "__memmove_chk", "__memset_chk", "__strcpy_chk", "__strncpy_chk",
    "__strcat_chk", "__strncat_chk", "__stpcpy_chk", "__fgets_chk",
    "__read_chk", "__getcwd_chk", "__chk_fail", "__fortify_fail",
    "__isoc99_scanf", "__isoc99_fscanf", "__isoc99_sscanf",
    "__errno_location", "memalign",
    "printf", "fprintf", "sprintf", "snprintf", "vfprintf", "puts",
    "putchar", "fputs", "fputc", "fwrite", "fread", "fgets", "fopen",
    "fclose", "fflush", "fseek", "ftell", "feof", "ferror", "fileno",
    "malloc", "free", "calloc", "realloc", "exit", "_exit", "abort",
    "atexit", "getenv", "setenv", "strtol", "strtoul", "atoi", "qsort",
    "bsearch", "rand", "srand",
    "memcpy", "memmove", "memset", "memcmp", "memchr", "strcpy",
    "strncpy", "strcat", "strncat", "strcmp", "strncmp", "strchr",
    "strrchr", "strstr", "strlen", "strnlen", "strdup", "strerror",
    "strtok", "strcasecmp", "strncasecmp",
    "open", "close", "read", "write", "lseek", "unlink",
    "getpid", "getppid", "getuid", "geteuid", "getgid", "getegid",
    "isatty", "fcntl", "dup", "dup2", "pipe", "fork", "execv", "execvp",
    "execve", "waitpid", "kill", "signal", "sigaction", "sigprocmask",
    "sigemptyset", "sigaddset", "raise", "alarm", "sleep", "usleep",
    "nanosleep", "time", "gettimeofday", "clock_gettime", "localtime",
    "localtime_r", "gmtime", "gmtime_r", "mktime", "strftime",
    "stat", "fstat", "lstat", "access", "chdir", "getcwd", "mkdir",
    "rmdir", "rename", "chmod", "chown", "umask", "opendir", "readdir",
    "closedir", "ioctl", "uname", "sysconf", "getpagesize", "mmap",
    "munmap", "mprotect", "brk", "sbrk",
    "setlocale", "tolower", "toupper", "isalpha", "isdigit", "isspace",
    "isprint", "getopt", "getopt_long", "perror", "abort_handler_s",
];

/// Universal pseudo-files (Figure 6's left edge).
const UNIVERSAL_PATHS: &[&str] = &[
    "/dev/null", "/dev/tty", "/dev/urandom", "/dev/zero",
    "/proc/cpuinfo", "/proc/meminfo", "/proc/self/exe", "/proc/stat",
    "/proc/filesystems", "/proc/self/maps", "/proc/mounts",
    "/proc/self/status",
];

/// Named core packages (beyond `libc6` and the interpreters).
const CORE_PACKAGES: &[&str] = &[
    "coreutils", "util-linux", "apt", "dpkg", "systemd", "grep", "sed",
    "tar", "gzip", "findutils", "procps", "mount-tools", "passwd",
    "login", "init-system-helpers", "bsdutils", "diffutils", "hostname",
    "sysvinit-utils", "e2fsprogs", "ncurses-bin", "kmod", "udev",
    "net-tools", "iproute2", "ifupdown", "isc-dhcp-client", "rsyslog",
    "cron", "console-setup", "keyboard-configuration", "kbd-tools",
    "less", "nano", "vim-tiny", "wget", "curl-core", "openssh-client",
    "gnupg", "ca-certificates", "readline-common", "debconf",
    "lsb-release", "adduser", "base-passwd",
];

/// Interpreter packages: `(package, probability, breadth K)`.
const INTERPRETERS: &[(&str, f64, usize)] = &[
    ("dash", 0.999, 81),
    ("bash", 0.995, 120),
    ("python2.7", 0.97, 145),
    ("perl", 0.98, 145),
    ("ruby2.1", 0.35, 160),
    ("binutils-misc", 0.50, 100),
];

fn interp_cdf(cdf: &[(f64, f64)], u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    for w in cdf.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if u <= x1 {
            if x1 == x0 {
                return y1;
            }
            return y0 + (y1 - y0) * (u - x0) / (x1 - x0);
        }
    }
    cdf.last().map(|&(_, y)| y).unwrap_or(0.0)
}

/// Combined importance of a set of installation probabilities.
fn importance(probs: &[f64]) -> f64 {
    1.0 - probs.iter().fold(1.0, |acc, &p| acc * (1.0 - p))
}

/// Builds the reverse wrapper map: syscall name → libc symbols whose
/// wrapped set is exactly that one syscall.
fn singleton_wrappers(catalog: &Catalog) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for (_, sym) in catalog.libc.iter() {
        let wrapped = wrapped_syscalls(&sym.name);
        if wrapped.len() == 1 {
            out.entry(wrapped[0].to_owned())
                .or_insert_with(|| sym.name.clone());
        }
    }
    // Prefer the exact same-named wrapper when it exists.
    for (_, sym) in catalog.libc.iter() {
        let wrapped = wrapped_syscalls(&sym.name);
        if wrapped.len() == 1 && wrapped[0] == sym.name {
            out.insert(sym.name.clone(), sym.name.clone());
        }
    }
    out
}

impl RepoPlan {
    /// Plans a repository at the given scale.
    pub fn plan(scale: Scale, spec: CalibrationSpec, seed: u64) -> Self {
        let catalog = Catalog::linux_3_19();
        let adoption = spec.adoption();
        let ranking = Ranking::build_with(&catalog, &adoption);
        let mut rng = SmallRng::seed_from_u64(seed);
        let singleton = singleton_wrappers(&catalog);

        // ---- 1. Package skeletons ------------------------------------
        let mut packages: Vec<PackagePlan> = Vec::with_capacity(scale.packages);
        let mut name_set: HashSet<String> = HashSet::new();
        let add_pkg = |packages: &mut Vec<PackagePlan>,
                           name_set: &mut HashSet<String>,
                           name: String,
                           prob: f64,
                           tier: Tier,
                           breadth: usize,
                           seed: u64| {
            assert!(name_set.insert(name.clone()), "duplicate package {name}");
            packages.push(PackagePlan {
                name,
                prob,
                tier,
                breadth,
                depends: Vec::new(),
                execs: Vec::new(),
                libs: Vec::new(),
                scripts: Vec::new(),
                seed,
            });
        };

        // libc6 is package 0, installed everywhere.
        add_pkg(&mut packages, &mut name_set, "libc6".into(), 1.0, Tier::Core, 224, seed ^ 1);

        for name in CORE_PACKAGES {
            let prob = rng.gen_range(0.96..0.999);
            let breadth = (interp_cdf(BREADTH_CDF, rng.gen()) as usize)
                .clamp(120, 224);
            add_pkg(
                &mut packages,
                &mut name_set,
                (*name).into(),
                prob,
                Tier::Core,
                breadth,
                rng.gen(),
            );
        }
        for &(name, prob, breadth) in INTERPRETERS {
            add_pkg(
                &mut packages,
                &mut name_set,
                name.into(),
                prob,
                Tier::Interpreter,
                breadth,
                rng.gen(),
            );
        }
        for pin in PINS {
            add_pkg(
                &mut packages,
                &mut name_set,
                pin.package.into(),
                pin.prob,
                Tier::Pin,
                224,
                rng.gen(),
            );
        }
        // qemu: the paper's 270-syscall maximum.
        add_pkg(&mut packages, &mut name_set, "qemu".into(), 0.02, Tier::Pin, ranking.indispensable + MID_SYSCALLS.len() + 13, rng.gen());

        let fixed = packages.len();
        let remaining = scale.packages.saturating_sub(fixed);
        let mid_count = (scale.packages as f64 * 0.15) as usize;
        let tail_count = remaining.saturating_sub(mid_count);
        for i in 0..mid_count {
            // Log-uniform in [0.08, 0.92].
            let u: f64 = rng.gen();
            let prob = 0.08 * (0.92f64 / 0.08).powf(u);
            let k = interp_cdf(BREADTH_CDF, rng.gen()) as usize;
            add_pkg(
                &mut packages,
                &mut name_set,
                format!("app-{i:05}"),
                prob,
                Tier::Mid,
                k.clamp(40, 224),
                rng.gen(),
            );
        }
        for i in 0..tail_count {
            // Zipf-ish tail in [2/installations, 0.08).
            let u: f64 = rng.gen();
            let floor = (2.0 / scale.installations as f64).max(1e-6);
            let prob = floor * (0.08 / floor).powf(u * u);
            let k = interp_cdf(BREADTH_CDF, rng.gen()) as usize;
            add_pkg(
                &mut packages,
                &mut name_set,
                format!("pkg-{i:05}"),
                prob,
                Tier::Tail,
                k.clamp(40, 224),
                rng.gen(),
            );
        }

        let index_of: HashMap<String, usize> = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();

        // Footprint templates (§6): many real packages are built from the
        // same skeletons (autotools helpers, trivial wrappers) and share a
        // footprint exactly — the paper finds only ~1/3 of applications
        // have a unique footprint. A slice of mid/tail packages therefore
        // clones a prototype's facts instead of rolling its own.
        let mut template_of: Vec<Option<usize>> = vec![None; packages.len()];
        let mut is_proto: Vec<bool> = vec![false; packages.len()];
        {
            let assign = |tier: Tier, proto_div: usize, q: f64,
                              packages: &mut Vec<PackagePlan>,
                              template_of: &mut Vec<Option<usize>>,
                              is_proto: &mut Vec<bool>,
                              rng: &mut SmallRng| {
                let members: Vec<usize> = packages
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.tier == tier)
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    return;
                }
                let protos = (members.len() / proto_div).max(1);
                let (proto_idx, rest) = members.split_at(protos.min(members.len()));
                for &i in rest {
                    if rng.gen_bool(q) {
                        let proto = proto_idx[rng.gen_range(0..proto_idx.len())];
                        template_of[i] = Some(proto);
                        is_proto[proto] = true;
                        packages[i].breadth = packages[proto].breadth;
                        packages[i].seed = packages[proto].seed;
                    }
                }
            };
            assign(Tier::Tail, 18, 0.62, &mut packages, &mut template_of, &mut is_proto, &mut rng);
            assign(Tier::Mid, 10, 0.25, &mut packages, &mut template_of, &mut is_proto, &mut rng);
        }
        let templated_count = template_of.iter().filter(|t| t.is_some()).count();

        // Per-package accumulated facts (merged into exec plans at the
        // end of planning).
        let mut acc: Vec<ImplAcc> = vec![ImplAcc::default(); packages.len()];

        // ---- libc symbol buckets (consulted by every usage pass) --------
        let buckets = assign_libc_buckets(&catalog, &ranking, &spec, &mut rng);
        let bucket_ok = |sym: &str| -> bool {
            catalog
                .libc
                .id_of(sym)
                .is_some_and(|id| buckets[id as usize] != LibcBucket::Unused)
        };

        // Which packages contain inline `syscall` instructions at all: the
        // paper finds only ~15% of binaries issue system calls directly
        // (§7); everyone else goes through libc.
        let emits_direct: Vec<bool> = packages
            .iter()
            .enumerate()
            .map(|(i, p)| match p.tier {
                Tier::Pin => true,
                Tier::Core => rng.gen_bool(0.35),
                _ => i != 0 && rng.gen_bool(0.18),
            })
            .collect();

        // Helper: add a syscall by name, via the singleton libc wrapper
        // when available (and not itself universal-constrained), else as a
        // direct syscall.
        let nr_of = |name: &str| catalog.syscalls.number_of(name).expect("known syscall");
        // Calls whose direct sites must stay inside libraries (Table 1):
        // applications only ever reach them through the libc wrapper.
        let wrapper_only: HashSet<&str> = ["clock_settime", "iopl", "ioperm",
                                           "signalfd4", "preadv", "pwritev"]
            .into_iter()
            .collect();
        let add_syscall_usage =
            |acc: &mut Vec<ImplAcc>, pkg: usize, name: &str, rng: &mut SmallRng| {
                if let Some(wrapper) =
                    singleton.get(name).filter(|w| bucket_ok(w))
                {
                    // Non-emitter packages always go through libc; emitter
                    // packages inline about half their calls.
                    if wrapper_only.contains(name)
                        || !emits_direct[pkg]
                        || rng.gen_bool(0.5)
                    {
                        acc[pkg].libc_calls.insert(wrapper.clone());
                        return;
                    }
                }
                acc[pkg].direct.insert(nr_of(name));
            };

        // ---- 2. Pins (Tables 1–2) ------------------------------------
        for pin in PINS {
            let idx = index_of[pin.package];
            for name in pin.syscalls {
                add_syscall_usage(&mut acc, idx, name, &mut rng);
            }
            for path in pin.paths {
                acc[idx].paths.insert((*path).to_owned());
            }
        }
        // qemu: footprint of 270 calls, including KVM ioctls and /dev/kvm.
        // Tiered calls are reached through libc wrappers so their direct
        // call sites stay attributed to libc / the pin libraries (Table 1).
        {
            let idx = index_of["qemu"];
            let target = packages[idx].breadth;
            let mut have = 0usize;
            // Walk only the used region of the ranking (indispensable +
            // tiered calls); the unused tail must stay unused.
            let used_region = ranking.order.len() - UNUSED_SYSCALLS.len() - 10;
            for (rank, &nr) in ranking.order[..used_region].iter().enumerate() {
                if have >= target {
                    break;
                }
                let name = catalog.syscalls.by_number(nr).expect("defined").name;
                if rank < ranking.indispensable {
                    // Emulators issue the common calls inline.
                    acc[idx].direct.insert(nr);
                    have += 1;
                } else if let Some(wrapper) = singleton.get(name) {
                    // Tiered calls go through libc so their direct sites
                    // stay with their pin libraries (Table 1).
                    acc[idx].libc_calls.insert(wrapper.clone());
                    have += 1;
                }
            }
            acc[idx].paths.insert("/dev/kvm".into());
            for name in ["KVM_GET_API_VERSION", "KVM_CREATE_VM", "KVM_RUN",
                         "KVM_CREATE_VCPU", "KVM_CHECK_EXTENSION"] {
                if let Some(op) = catalog.ioctl_ops.iter().find(|o| o.name == name) {
                    acc[idx].ioctl.insert(op.code, false);
                }
            }
        }

        // ---- 3. Mid/low carrier placement -----------------------------
        // Candidate pools for carriers.
        let mid_pool: Vec<usize> = packages
            .iter()
            .enumerate()
            .filter(|&(i, p)| {
                p.tier == Tier::Mid && template_of[i].is_none() && !is_proto[i]
            })
            .map(|(i, _)| i)
            .collect();
        let tail_pool: Vec<usize> = packages
            .iter()
            .enumerate()
            .filter(|&(i, p)| {
                p.tier == Tier::Tail && template_of[i].is_none() && !is_proto[i]
            })
            .map(|(i, _)| i)
            .collect();

        // Carriers of mid/low-tier calls come from dedicated slices of the
        // pools: special-purpose packages cluster in reality, and bounding
        // the slice keeps the Figure 3 tail (the last ~10% of mass needing
        // 70 more calls) stable across corpus scales.
        let mid_carriers: Vec<usize> = {
            let k = (mid_pool.len() * 15 / 100).max(4).min(mid_pool.len());
            mid_pool[mid_pool.len() - k..].to_vec()
        };
        let tail_carriers: Vec<usize> = {
            let k = (tail_pool.len() * 20 / 100).max(6).min(tail_pool.len());
            tail_pool[tail_pool.len() - k..].to_vec()
        };

        let place_carriers = |acc: &mut Vec<ImplAcc>,
                                  packages: &mut Vec<PackagePlan>,
                                  rng: &mut SmallRng,
                                  name: &str,
                                  target: f64,
                                  pool: &[usize]| {
            // Existing importance from pins.
            let mut probs: Vec<f64> = packages
                .iter()
                .enumerate()
                .filter(|&(i, _)| {
                    acc[i].direct.contains(&nr_of(name))
                        || singleton
                            .get(name)
                            .is_some_and(|w| acc[i].libc_calls.contains(w))
                })
                .map(|(_, p)| p.prob)
                .collect();
            let mut guard = 0;
            while importance(&probs) < target && guard < 4 * pool.len() + 64 {
                guard += 1;
                let Some(&idx) = pool.choose(rng) else { break };
                // Small targets must not overshoot: skip carriers whose
                // probability alone would blow past the target.
                let gap = target - importance(&probs);
                if packages[idx].prob > (2.5 * gap + 0.004) && guard < 3 * pool.len() {
                    continue;
                }
                let rank = ranking.rank(nr_of(name));
                add_syscall_usage(acc, idx, name, rng);
                probs.push(packages[idx].prob);
                if packages[idx].breadth < rank + 1 {
                    packages[idx].breadth = rank + 1;
                }
            }
        };
        for &(name, target) in MID_SYSCALLS {
            place_carriers(&mut acc, &mut packages, &mut rng, name, target, &mid_carriers);
        }
        for &(name, target) in LOW_SYSCALLS {
            place_carriers(&mut acc, &mut packages, &mut rng, name, target, &tail_carriers);
        }

        // ---- 4. Adoption sprinkling (Tables 8–11), with any what-if
        // overrides from the calibration spec applied.
        for (name, rate) in adoption.iter().map(|(n, r)| (n.as_str(), *r)) {
            let nr = nr_of(name);
            let rank = ranking.rank(nr);
            let target_count = ((rate
                * (scale.packages.saturating_sub(templated_count)) as f64)
                .round() as usize)
                .max(1);
            let mut eligible: Vec<usize> = packages
                .iter()
                .enumerate()
                .filter(|&(i, p)| {
                    p.breadth > rank
                        && p.tier != Tier::Pin
                        && p.tier != Tier::Interpreter
                        && i != 0
                        && template_of[i].is_none()
                })
                .map(|(i, _)| i)
                .collect();
            eligible.shuffle(&mut rng);
            for &idx in eligible.iter().take(target_count) {
                add_syscall_usage(&mut acc, idx, name, &mut rng);
            }
        }

        // ---- 4b. Rank-consistent usage of the indispensable tier -------
        // Within the 224 indispensable calls, the fraction of packages
        // using a call must decrease with its rank, or the measured
        // importance ordering would diverge from the canonical one and the
        // Figure 3 knees would drift. Every non-ubiquitous indispensable
        // call is issued *inline* (direct syscall sites in application
        // code — which is also why the paper's Table 1 is short) by a
        // random fraction of the packages whose breadth covers it.
        {
            let adoption_names: HashSet<String> =
                adoption.iter().map(|(n, _)| n.clone()).collect();
            let mut ubiquitous: HashSet<u32> = HashSet::new();
            for name in wrapped_syscalls("__libc_start_main") {
                ubiquitous.insert(nr_of(name));
            }
            for name in ["access", "arch_prctl", "mprotect"] {
                ubiquitous.insert(nr_of(name));
            }
            for (rank, &nr) in ranking.order[..ranking.indispensable]
                .iter()
                .enumerate()
            {
                if ubiquitous.contains(&nr) {
                    continue;
                }
                let name = catalog.syscalls.by_number(nr).expect("defined").name;
                if adoption_names.contains(name)
                    || wrapper_only.contains(name)
                {
                    continue;
                }
                let jitter = rng.gen_range(0.96..1.04);
                let f = (crate::calibration::sprinkle_fraction(
                    rank,
                    ranking.indispensable,
                ) * jitter)
                    .clamp(0.02, 0.98);
                // Calls with no libc wrapper can only live in packages
                // that inline syscalls; their per-package fraction is
                // scaled up so the corpus-wide adoption stays on the
                // curve (~25% of mass are emitters).
                let wrapper = singleton.get(name).filter(|w| bucket_ok(w));
                let f_eff = if wrapper.is_some() {
                    f
                } else {
                    (f / 0.20).min(0.95)
                };
                for i in 0..packages.len() {
                    if i == 0 || packages[i].breadth <= rank {
                        continue;
                    }
                    if packages[i].tier == Tier::Interpreter
                        || template_of[i].is_some()
                    {
                        continue;
                    }
                    if wrapper.is_none() && !emits_direct[i] {
                        continue;
                    }
                    if rng.gen_bool(f_eff) {
                        match (emits_direct[i], wrapper) {
                            (true, _) | (false, None) => {
                                acc[i].direct.insert(nr);
                            }
                            (false, Some(w)) => {
                                acc[i].libc_calls.insert(w.clone());
                            }
                        }
                    }
                }
            }
        }

        // ---- 5. libc symbol assignment ----------------------------------
        // Rank budget of each symbol: the worst canonical rank among its
        // wrapped syscalls. A package may only call symbols within its
        // breadth K, keeping the Figure 3 curve intact.
        let sym_rank: HashMap<String, usize> = catalog
            .libc
            .iter()
            .map(|(_, s)| {
                let r = wrapped_syscalls(&s.name)
                    .iter()
                    .map(|w| ranking.rank(nr_of(w)))
                    .max()
                    .unwrap_or(0);
                (s.name.clone(), r)
            })
            .collect();

        // Universal symbol coverage: every universal symbol is called by at
        // least one always-installed package. libc6 (package 0) and the
        // interpreters are excluded — their footprints propagate to every
        // dependent package, so they must stay minimal / within their K.
        let universal_syms: Vec<String> = catalog
            .libc
            .iter()
            .filter(|&(id, _)| buckets[id as usize] == LibcBucket::Universal)
            .map(|(_, s)| s.name.clone())
            .collect();
        let core_pool: Vec<usize> = packages
            .iter()
            .enumerate()
            .filter(|&(i, p)| p.tier == Tier::Core && i != 0)
            .map(|(i, _)| i)
            .collect();
        let interp_pool: Vec<usize> = packages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.tier == Tier::Interpreter)
            .map(|(i, _)| i)
            .collect();
        let pick_core = |packages: &mut Vec<PackagePlan>, start: usize, need: usize| -> usize {
            let n = core_pool.len();
            for off in 0..n {
                let idx = core_pool[(start + off) % n];
                if packages[idx].breadth > need {
                    return idx;
                }
            }
            // No core covers this rank: the kitchen-sink core absorbs it.
            let idx = core_pool[0];
            if packages[idx].breadth <= need {
                packages[idx].breadth = need + 1;
            }
            idx
        };
        for (i, sym) in universal_syms.iter().enumerate() {
            let idx = pick_core(&mut packages, i, sym_rank[sym]);
            acc[idx].libc_calls.insert(sym.clone());
        }
        // Every package samples universal symbols within its rank budget
        // (templated clones copy their prototype instead).
        for (i, p) in packages.iter().enumerate() {
            if i == 0 || template_of[i].is_some() {
                continue; // libc6 stays minimal.
            }
            let n = match p.tier {
                Tier::Core | Tier::Interpreter => rng.gen_range(30..70),
                Tier::Mid => rng.gen_range(12..40),
                Tier::Pin => rng.gen_range(6..16),
                Tier::Tail => rng.gen_range(4..20),
            };
            for _ in 0..n {
                let sym = &universal_syms[rng.gen_range(0..universal_syms.len())];
                if sym_rank[sym] < p.breadth {
                    acc[i].libc_calls.insert(sym.clone());
                }
            }
        }
        // High/mid/rare symbols get dedicated carrier packages, preferring
        // carriers whose budget already covers the symbol. Symbols that
        // wrap adoption-controlled or tiered syscalls are carrier-only by
        // construction and are skipped here.
        let reserved: Vec<bool> = catalog
            .libc
            .iter()
            .map(|(_, sym)| {
                wrapped_syscalls(&sym.name)
                    .iter()
                    .any(|w| sym_rank[&sym.name] >= ranking.indispensable
                        || ADOPTION.iter().any(|&(n, _)| n == *w))
            })
            .collect();
        for (id, sym) in catalog.libc.iter() {
            if reserved[id as usize] {
                continue;
            }
            let (target, pool) = match buckets[id as usize] {
                LibcBucket::High => (rng.gen_range(0.50..0.95), &mid_pool),
                LibcBucket::Mid => (rng.gen_range(0.02..0.45), &mid_pool),
                LibcBucket::Rare => (rng.gen_range(0.0001..0.008), &tail_pool),
                _ => continue,
            };
            let need = sym_rank[&sym.name] + 1;
            let mut probs: Vec<f64> = Vec::new();
            let mut guard = 0;
            while importance(&probs) < target && guard < 200 {
                guard += 1;
                let Some(&idx) = pool.choose(&mut rng) else { break };
                // Do not overshoot small targets with popular carriers
                // (the rare band must stay under 1% importance).
                let gap = target - importance(&probs);
                if packages[idx].prob > (2.5 * gap + 0.002) && guard < 150 {
                    continue;
                }
                if packages[idx].breadth < need {
                    // Prefer a different carrier; bump only as a fallback.
                    if guard % 4 != 0 {
                        continue;
                    }
                    packages[idx].breadth = need;
                }
                acc[idx].libc_calls.insert(sym.name.clone());
                probs.push(packages[idx].prob);
            }
        }

        // stdio-internal group (Table 7): glibc's buffered-I/O internals
        // (`__overflow`, `__uflow`, ...) are referenced together by a bit
        // over half the package mass; uClibc and musl do not export them,
        // which is what caps their normalized weighted completeness.
        for (i, p) in packages.iter().enumerate() {
            if i == 0 || template_of[i].is_some() {
                continue;
            }
            // Interpreters are exempt: their footprint propagates to every
            // script package through dependency closure, which would make
            // the Table 7 outcome hinge on a handful of coin flips.
            let q = match p.tier {
                Tier::Core => 0.62,
                Tier::Interpreter => 0.0,
                Tier::Mid => 0.57,
                Tier::Tail => 0.52,
                Tier::Pin => 0.40,
            };
            if q == 0.0 {
                continue;
            }
            if rng.gen_bool(q) {
                for sym in ["__overflow", "__uflow", "__underflow",
                            "_IO_getc", "_IO_putc"] {
                    acc[i].libc_calls.insert(sym.to_owned());
                }
            }
        }

        // ---- 6. Indispensable coverage patch ---------------------------
        // An indispensable call must be required on essentially every
        // installation (Figure 2's 224 at 100%). Calls already carried by
        // startup/ld.so are there; the rest are topped up with core-package
        // users until their combined importance is ~1.
        {
            let mut ubiquitous: HashSet<u32> = HashSet::new();
            for name in wrapped_syscalls("__libc_start_main") {
                ubiquitous.insert(nr_of(name));
            }
            for name in ["access", "arch_prctl", "mprotect"] {
                ubiquitous.insert(nr_of(name));
            }
            // Miss probability per syscall from current assignments.
            let mut miss: HashMap<u32, f64> = HashMap::new();
            for (i, a) in acc.iter().enumerate() {
                let q = 1.0 - packages[i].prob;
                for &nr in &a.direct {
                    *miss.entry(nr).or_insert(1.0) *= q;
                }
                for call in &a.libc_calls {
                    for name in wrapped_syscalls(call) {
                        *miss.entry(nr_of(name)).or_insert(1.0) *= q;
                    }
                }
            }
            let positions: Vec<usize> = (0..core_pool.len()).collect();
            let mut core_cycle = positions.iter().cycle();
            for (rank, &nr) in ranking.order[..ranking.indispensable]
                .iter()
                .enumerate()
            {
                if ubiquitous.contains(&nr) {
                    continue;
                }
                let name = catalog
                    .syscalls
                    .by_number(nr)
                    .expect("ranking holds defined syscalls")
                    .name;
                let wrapper = singleton.get(name).filter(|w| {
                    catalog
                        .libc
                        .id_of(w)
                        .is_some_and(|id| buckets[id as usize] != LibcBucket::Unused)
                });
                let mut m = miss.get(&nr).copied().unwrap_or(1.0);
                let mut guard = 0;
                while m > 1e-4 && guard < 24 {
                    guard += 1;
                    let cursor = core_cycle.next().copied().unwrap_or(0);
                    let idx = pick_core(&mut packages, cursor, rank);
                    let inserted = match wrapper {
                        Some(w) => acc[idx].libc_calls.insert(w.clone()),
                        None => acc[idx].direct.insert(nr),
                    };
                    let idx = if inserted {
                        idx
                    } else {
                        // Every core wide enough for this rank already
                        // carries the call. Widen a spare core so the
                        // combined importance keeps rising instead of
                        // stalling below the indispensable threshold; always
                        // scanning from the pool head keeps the set of wide
                        // cores small, which preserves the Figure 3 knees.
                        let mut chosen = None;
                        for &widen in &core_pool {
                            let fresh = match wrapper {
                                Some(w) => acc[widen].libc_calls.insert(w.clone()),
                                None => acc[widen].direct.insert(nr),
                            };
                            if fresh {
                                if packages[widen].breadth <= rank {
                                    packages[widen].breadth = rank + 1;
                                }
                                chosen = Some(widen);
                                break;
                            }
                        }
                        match chosen {
                            Some(widened) => widened,
                            // Every core already carries the call.
                            None => break,
                        }
                    };
                    m *= 1.0 - packages[idx].prob;
                }
            }
        }

        // ---- 7. Vectored opcodes & pseudo-files -------------------------
        {
            let rank_ioctl = ranking.rank(nr_of("ioctl"));
            let rank_fcntl = ranking.rank(nr_of("fcntl"));
            let rank_prctl = ranking.rank(nr_of("prctl"));
            let with_budget = |pool: &[usize], rank: usize| -> Vec<usize> {
                pool.iter()
                    .copied()
                    .filter(|&i| packages[i].breadth > rank)
                    .collect()
            };
            let pools = VectoredPools {
                ioctl_core: with_budget(&core_pool, rank_ioctl),
                ioctl_mid: with_budget(&mid_pool, rank_ioctl),
                ioctl_tail: with_budget(&tail_pool, rank_ioctl),
                fcntl_core: with_budget(&core_pool, rank_fcntl),
                fcntl_mid: with_budget(&mid_pool, rank_fcntl),
                fcntl_tail: with_budget(&tail_pool, rank_fcntl),
                prctl_core: with_budget(&core_pool, rank_prctl),
                prctl_mid: with_budget(&mid_pool, rank_prctl),
                prctl_tail: with_budget(&tail_pool, rank_prctl),
            };
            let probs: Vec<f64> = packages.iter().map(|p| p.prob).collect();
            assign_vectored(
                &catalog, &spec, &mut acc, &pools, &probs, &emits_direct,
                &mut rng,
            );
            let path_core: Vec<usize> =
                core_pool.iter().chain(&interp_pool).copied().collect();
            assign_paths(&catalog, &mut acc, &path_core, &mid_pool, &tail_pool, &mut rng);
        }

        // Clone prototype facts into templated packages (their pools were
        // excluded everywhere above, so the calibrated rates are
        // preserved and clones replicate their prototype exactly).
        for i in 0..packages.len() {
            if let Some(proto) = template_of[i] {
                acc[i] = acc[proto].clone();
            }
        }

        // ---- 8. Files, scripts, deps, popcon ----------------------------
        let mut popcon = Popcon::new(scale.installations);
        for i in 0..packages.len() {
            let p_seed = packages[i].seed;
            let mut prng = SmallRng::seed_from_u64(p_seed);
            let a = &acc[i];
            let tier = packages[i].tier;
            // Distribute accumulated facts over 1–3 executables and 0–2
            // private libraries.
            let nexec = match tier {
                Tier::Core | Tier::Interpreter => prng.gen_range(2..=4),
                Tier::Mid => prng.gen_range(1..=3),
                _ => prng.gen_range(1..=2),
            };
            let lib_pin_pkg = matches!(
                packages[i].name.as_str(),
                "libnuma" | "libopenblas" | "libkeyutils" | "pam-keyutil"
            );
            let nlib = match tier {
                Tier::Core => prng.gen_range(2..=3),
                Tier::Mid => prng.gen_range(1..=3),
                Tier::Interpreter => 2,
                Tier::Pin if lib_pin_pkg => 1,
                _ => {
                    usize::from(prng.gen_bool(0.85))
                        + usize::from(prng.gen_bool(0.45))
                }
            };
            let is_static = tier == Tier::Tail && prng.gen_bool(0.016);

            let mut execs: Vec<ExecPlan> = (0..nexec)
                .map(|e| ExecPlan {
                    file: format!("{}-bin{e}", packages[i].name),
                    is_static: is_static && e == 0,
                    ..Default::default()
                })
                .collect();
            let mut libs: Vec<OwnLibPlan> = (0..nlib)
                .map(|l| OwnLibPlan {
                    soname: format!("lib{}-{l}.so.1", packages[i].name),
                    exports: (0..prng.gen_range(2..6))
                        .map(|x| LibExportPlan {
                            name: format!("{}_{l}_fn{x}", packages[i].name.replace('-', "_")),
                            ..Default::default()
                        })
                        .collect(),
                })
                .collect();

            // Deal facts round-robin: most to exec 0, some to libs.
            // Library pins (libnuma & co.) keep their call sites inside
            // their shared library (the paper's Table 1 attribution);
            // application pins (qemu & co.) keep them in executables.
            let lib_pin = matches!(
                packages[i].name.as_str(),
                "libnuma" | "libopenblas" | "libkeyutils" | "pam-keyutil"
            );
            let nlibs = libs.len();
            let nexecs = execs.len();
            let lib_bias = if tier == Tier::Pin {
                if lib_pin && nlibs > 0 { 1.0 } else { 0.0 }
            } else {
                0.3
            };
            let deal = move |prng: &mut SmallRng| -> (bool, usize) {
                if nlibs > 0 && prng.gen_bool(lib_bias) {
                    (true, prng.gen_range(0..nlibs))
                } else {
                    (false, prng.gen_range(0..nexecs))
                }
            };
            for call in &a.libc_calls {
                let (to_lib, j) = deal(&mut prng);
                if to_lib {
                    let exports = &mut libs[j].exports;
                    let k = prng.gen_range(0..exports.len());
                    exports[k].libc_calls.push(call.clone());
                } else if execs[j].is_static {
                    // Static binaries cannot import; keep on exec 1+.
                    execs[0].direct_syscalls.extend(
                        wrapped_syscalls(call).iter().map(|s| nr_of(s)),
                    );
                } else {
                    execs[j].libc_calls.push(call.clone());
                }
            }
            for &nr in &a.direct {
                let (to_lib, j) = deal(&mut prng);
                if to_lib {
                    let exports = &mut libs[j].exports;
                    let k = prng.gen_range(0..exports.len());
                    exports[k].direct_syscalls.push(nr);
                } else {
                    execs[j].direct_syscalls.push(nr);
                }
            }
            for (&code, &via) in &a.ioctl {
                let j = prng.gen_range(0..execs.len());
                let is_static = execs[j].is_static;
                execs[j].ioctl_codes.push((code, via && !is_static));
            }
            for (&code, &via) in &a.fcntl {
                let j = prng.gen_range(0..execs.len());
                let is_static = execs[j].is_static;
                execs[j].fcntl_codes.push((code, via && !is_static));
            }
            for (&code, &via) in &a.prctl {
                let j = prng.gen_range(0..execs.len());
                let is_static = execs[j].is_static;
                execs[j].prctl_codes.push((code, via && !is_static));
            }
            for path in &a.paths {
                let j = prng.gen_range(0..execs.len());
                execs[j].paths.push(path.clone());
            }
            // The first non-static exec references every export of each
            // private library, so all dealt facts stay reachable; other
            // execs reference one export each for call-graph variety.
            for (li, lib) in libs.iter().enumerate() {
                let mut primary_done = false;
                for (e, exec) in execs.iter_mut().enumerate() {
                    if exec.is_static {
                        continue;
                    }
                    if !primary_done {
                        for x in &lib.exports {
                            exec.own_lib_calls.push((li, x.name.clone()));
                        }
                        primary_done = true;
                    } else {
                        let x = (e + li) % lib.exports.len();
                        exec.own_lib_calls
                            .push((li, lib.exports[x].name.clone()));
                    }
                }
            }

            // Scripts per the Figure 1 mix: expected scripts per package
            // chosen so the global executable mix matches. A package only
            // ships scripts whose interpreter fits its breadth budget
            // (script packages inherit the interpreter's footprint, §2.3),
            // so each kind's expectation is scaled by the mass fraction of
            // eligible packages. libc6 and the interpreters themselves ship
            // none: their footprints propagate to every dependent package.
            let mut scripts = Vec::new();
            if i != 0 && tier != Tier::Interpreter {
                let per_pkg_elf = (nexec + nlib) as f64;
                let script_total =
                    per_pkg_elf / spec.mix.elf * (1.0 - spec.mix.elf);
                // (shebang, mix fraction, interpreter breadth K).
                let script_kinds: [(&str, f64, usize); 6] = [
                    ("#!/bin/sh", spec.mix.dash, 81),
                    ("#!/usr/bin/python2.7", spec.mix.python, 145),
                    ("#!/usr/bin/perl", spec.mix.perl, 145),
                    ("#!/bin/bash", spec.mix.bash, 120),
                    ("#!/usr/bin/ruby2.1", spec.mix.ruby, 160),
                    ("#!/usr/bin/awk -f", spec.mix.other, 100),
                ];
                let non_elf: f64 =
                    script_kinds.iter().map(|&(_, f, _)| f).sum();
                // Fraction of packages whose breadth reaches `k`, from the
                // breadth CDF (mass quantile).
                let eligible_frac = |k: usize| -> f64 {
                    let mut q = 1.0;
                    for w in BREADTH_CDF.windows(2) {
                        let (x0, y0) = w[0];
                        let (x1, y1) = w[1];
                        if (k as f64) <= y1 {
                            let t = if y1 == y0 {
                                x1
                            } else {
                                x0 + (x1 - x0) * (k as f64 - y0) / (y1 - y0)
                            };
                            q = t.clamp(0.0, 1.0);
                            break;
                        }
                    }
                    (1.0 - q).max(0.05)
                };
                for (shebang, frac, k_interp) in script_kinds {
                    if packages[i].breadth < k_interp {
                        continue;
                    }
                    let expect = script_total * frac / non_elf
                        / eligible_frac(k_interp);
                    let n = expect.floor() as usize
                        + usize::from(prng.gen_bool(expect.fract().clamp(0.0, 1.0)));
                    for s in 0..n {
                        scripts.push(ScriptPlan {
                            file: format!(
                                "{}-script{}-{s}",
                                packages[i].name,
                                scripts.len()
                            ),
                            shebang: shebang.to_owned(),
                        });
                    }
                }
            }

            // Dependencies: libc6 for all; interpreters for scripts.
            let mut depends: BTreeSet<String> = BTreeSet::new();
            if i != 0 {
                depends.insert("libc6".into());
            }
            for s in &scripts {
                let interp = crate::model::Interpreter::classify(&s.shebang);
                let provider = interp.providing_package();
                if provider != packages[i].name {
                    depends.insert(provider.to_owned());
                }
            }
            if packages[i].name == "pam-keyutil" {
                depends.insert("libkeyutils".into());
            }

            let pkg = &mut packages[i];
            pkg.execs = execs;
            pkg.libs = libs;
            pkg.scripts = scripts;
            pkg.depends = depends.into_iter().collect();
            let count = (pkg.prob * scale.installations as f64).round() as u64;
            popcon.set_count(&pkg.name, count.clamp(1, scale.installations));
        }

        Self { scale, spec, seed, packages, popcon, ranking, libc_buckets: buckets }
    }

    /// The package plan by name.
    pub fn package(&self, name: &str) -> Option<&PackagePlan> {
        self.packages.iter().find(|p| p.name == name)
    }
}

/// Assigns every libc symbol to a popularity bucket, honouring forced
/// constraints (symbols wrapping unused system calls can never be used;
/// symbols wrapping mid/low calls are carrier-only and live in the band
/// matching their syscall's importance).
fn assign_libc_buckets(
    catalog: &Catalog,
    ranking: &Ranking,
    spec: &CalibrationSpec,
    rng: &mut SmallRng,
) -> Vec<LibcBucket> {
    let nr_of = |name: &str| catalog.syscalls.number_of(name).expect("known");
    let unused_nrs: HashSet<u32> = UNUSED_SYSCALLS.iter().map(|&n| nr_of(n)).collect();
    let n = catalog.libc.len();
    let mut buckets = vec![LibcBucket::Unused; n];
    let mut assigned = vec![false; n];

    // Forced: wraps an unused syscall → Unused; wraps a mid/low syscall
    // or an adoption-controlled syscall (Tables 8–11 and the Table 6
    // gaps) → Rare (carrier-only), so broad sampling cannot distort the
    // calibrated rates.
    let adoption_nrs: HashSet<u32> =
        ADOPTION.iter().map(|&(n, _)| nr_of(n)).collect();
    let mut counts = spec.libc_buckets;
    for (id, sym) in catalog.libc.iter() {
        let wrapped = wrapped_syscalls(&sym.name);
        if wrapped.iter().any(|w| unused_nrs.contains(&nr_of(w))) {
            buckets[id as usize] = LibcBucket::Unused;
            assigned[id as usize] = true;
        } else if wrapped
            .iter()
            .any(|w| adoption_nrs.contains(&nr_of(w)))
        {
            // Adoption-controlled wrappers end up near 100% importance
            // (their users always include some always-installed package),
            // so they consume the universal quota even though they are
            // carrier-only for assignment purposes.
            buckets[id as usize] = LibcBucket::Rare;
            assigned[id as usize] = true;
            counts.universal = counts.universal.saturating_sub(1);
        } else if wrapped
            .iter()
            .any(|w| ranking.rank(nr_of(w)) >= ranking.indispensable)
        {
            // Mid/low-tier wrappers track their syscall's importance
            // (1–50%); charge the mid quota.
            buckets[id as usize] = LibcBucket::Rare;
            assigned[id as usize] = true;
            counts.mid = counts.mid.saturating_sub(1);
        }
    }
    // Universal priority names.
    for name in UNIVERSAL_PRIORITY {
        if let Some(id) = catalog.libc.id_of(name) {
            if !assigned[id as usize] && counts.universal > 0 {
                buckets[id as usize] = LibcBucket::Universal;
                assigned[id as usize] = true;
                counts.universal -= 1;
            }
        }
    }
    // __overflow/__uflow into the high band (Table 7's uClibc gap).
    for name in ["__overflow", "__uflow", "__underflow", "_IO_getc", "_IO_putc"] {
        if let Some(id) = catalog.libc.id_of(name) {
            if !assigned[id as usize] && counts.high > 0 {
                buckets[id as usize] = LibcBucket::High;
                assigned[id as usize] = true;
                counts.high -= 1;
            }
        }
    }
    // The GNU extensions musl lacks (Table 7's musl samples) must stay in
    // the mid band, not be universal-sampled.
    for name in ["secure_getenv", "random_r", "srandom_r", "initstate_r",
                 "setstate_r", "drand48_r", "lrand48_r", "mrand48_r",
                 "canonicalize_file_name", "qsort_r"] {
        if let Some(id) = catalog.libc.id_of(name) {
            if !assigned[id as usize] && counts.mid > 0 {
                buckets[id as usize] = LibcBucket::Mid;
                assigned[id as usize] = true;
                counts.mid -= 1;
            }
        }
    }
    // Fill the rest: iterate in inventory order (family order approximates
    // real-world popularity), with a light shuffle inside windows.
    let mut rest: Vec<u32> = (0..n as u32).filter(|&i| !assigned[i as usize]).collect();
    // Shuffle within 64-entry windows to avoid hard family cliffs.
    for chunk in rest.chunks_mut(64) {
        chunk.shuffle(rng);
    }
    // Reserved (carrier-only) symbols were already charged against the
    // universal/mid quotas above; the rare quota is fully available to the
    // fill. Only the genuinely-unused forced set reduces the unused quota.
    let unused_forced = buckets
        .iter()
        .zip(&assigned)
        .filter(|&(b, &a)| a && *b == LibcBucket::Unused)
        .count();
    let mut remaining = [
        (LibcBucket::Universal, counts.universal),
        (LibcBucket::High, counts.high),
        (LibcBucket::Mid, counts.mid),
        (LibcBucket::Rare, counts.rare),
        (
            LibcBucket::Unused,
            counts.unused.saturating_sub(unused_forced),
        ),
    ];
    let mut ri = 0;
    for id in rest {
        while ri < remaining.len() && remaining[ri].1 == 0 {
            ri += 1;
        }
        let bucket = if ri < remaining.len() {
            remaining[ri].1 -= 1;
            remaining[ri].0
        } else {
            LibcBucket::Unused
        };
        buckets[id as usize] = bucket;
    }
    buckets
}

/// Rank-filtered candidate pools for vectored-opcode assignment: a
/// package may only issue an opcode when its breadth budget covers the
/// parent system call's rank.
struct VectoredPools {
    ioctl_core: Vec<usize>,
    ioctl_mid: Vec<usize>,
    ioctl_tail: Vec<usize>,
    fcntl_core: Vec<usize>,
    fcntl_mid: Vec<usize>,
    fcntl_tail: Vec<usize>,
    prctl_core: Vec<usize>,
    prctl_mid: Vec<usize>,
    prctl_tail: Vec<usize>,
}

/// Assigns vectored opcodes per the Figure 4/5 tiers.
fn assign_vectored(
    catalog: &Catalog,
    spec: &CalibrationSpec,
    acc: &mut [ImplAcc],
    pools: &VectoredPools,
    probs: &[f64],
    emits_direct: &[bool],
    rng: &mut SmallRng,
) {
    // Wrapper-vs-inline per insertion: only emitter packages ever load the
    // opcode next to an inline `syscall` instruction.
    let via = |idx: usize, rng: &mut SmallRng, wrapper_bias: f64| -> bool {
        !emits_direct[idx] || rng.gen_bool(wrapper_bias)
    };
    let t = spec.vectored;
    // ioctl: universal tier — every universal code is used by at least one
    // always-installed package, and core/mid packages sample the TTY set.
    let uni: Vec<u64> = catalog.ioctl_ops[..t.ioctl_universal]
        .iter()
        .map(|o| o.code)
        .collect();
    let core = &pools.ioctl_core;
    let mid = &pools.ioctl_mid;
    let tail = &pools.ioctl_tail;
    if core.is_empty() || mid.is_empty() || tail.is_empty() {
        return;
    }
    for (i, &code) in uni.iter().enumerate() {
        let idx = core[i % core.len()];
        acc[idx].ioctl.insert(code, via(idx, rng, 0.6));
    }
    for &idx in core.iter().chain(mid) {
        for _ in 0..rng.gen_range(1..6) {
            let code = uni[rng.gen_range(0..uni.len())];
            acc[idx].ioctl.insert(code, via(idx, rng, 0.6));
        }
    }
    // Mid tier: codes [universal..above_1pct) → one or two mid carriers,
    // with combined importance capped below ~95% so the universal ioctl
    // tier stays at its 52 operations.
    for op in &catalog.ioctl_ops[t.ioctl_universal..t.ioctl_above_1pct] {
        let mut placed = 0;
        let mut miss = 1.0f64;
        let want = rng.gen_range(1..3);
        for _ in 0..24 {
            if placed >= want {
                break;
            }
            let idx = mid[rng.gen_range(0..mid.len())];
            let p = probs[idx];
            if miss * (1.0 - p) < 0.06 {
                continue; // would push importance past ~94%.
            }
            acc[idx].ioctl.insert(op.code, via(idx, rng, 0.5));
            miss *= 1.0 - p;
            placed += 1;
        }
    }
    // Rare tier: codes [above_1pct..used) → one tail carrier. Skip the KVM
    // group (qemu-pinned in the planner).
    for op in &catalog.ioctl_ops[t.ioctl_above_1pct..t.ioctl_used] {
        if op.group == IoctlGroup::Kvm {
            continue;
        }
        let idx = tail[rng.gen_range(0..tail.len())];
        acc[idx].ioctl.insert(op.code, via(idx, rng, 0.4));
    }
    // fcntl: universal commands via core + broad sampling; the rest split
    // mid/rare/unused.
    let core = &pools.fcntl_core;
    let mid = &pools.fcntl_mid;
    let tail = &pools.fcntl_tail;
    let fu = t.fcntl_universal.min(FCNTL_OPS.len());
    for (i, &(code, _)) in FCNTL_OPS[..fu].iter().enumerate() {
        let idx = core[i % core.len()];
        acc[idx].fcntl.insert(code, via(idx, rng, 0.7));
    }
    for &idx in core.iter().chain(mid) {
        for _ in 0..rng.gen_range(1..4) {
            let (code, _) = FCNTL_OPS[rng.gen_range(0..fu)];
            acc[idx].fcntl.insert(code, via(idx, rng, 0.7));
        }
    }
    for &(code, _) in &FCNTL_OPS[fu..] {
        if rng.gen_bool(0.75) {
            let pool = if rng.gen_bool(0.4) { mid } else { tail };
            let idx = pool[rng.gen_range(0..pool.len())];
            acc[idx].fcntl.insert(code, via(idx, rng, 0.6));
        }
    }
    // prctl: 9 universal via core; 9 more on mid carriers; a handful rare;
    // the rest unused.
    let core = &pools.prctl_core;
    let mid = &pools.prctl_mid;
    let tail = &pools.prctl_tail;
    if core.is_empty() || mid.is_empty() || tail.is_empty() {
        return;
    }
    let pu = t.prctl_universal.min(PRCTL_OPS.len());
    for (i, &(code, _)) in PRCTL_OPS[..pu].iter().enumerate() {
        let idx = core[i % core.len()];
        acc[idx].prctl.insert(code, via(idx, rng, 0.7));
    }
    for &idx in core.iter().chain(mid.iter().take(mid.len() / 2)) {
        for _ in 0..rng.gen_range(0..3) {
            let (code, _) = PRCTL_OPS[rng.gen_range(0..pu)];
            acc[idx].prctl.insert(code, via(idx, rng, 0.7));
        }
    }
    let pm = t.prctl_above_20pct.min(PRCTL_OPS.len());
    for &(code, _) in &PRCTL_OPS[pu..pm] {
        let mut placed = 0;
        let mut miss = 1.0f64;
        for _ in 0..24 {
            if placed >= 4 || miss < 0.10 {
                break;
            }
            let idx = mid[rng.gen_range(0..mid.len())];
            let p = probs[idx];
            if miss * (1.0 - p) < 0.06 {
                continue;
            }
            acc[idx].prctl.insert(code, via(idx, rng, 0.5));
            miss *= 1.0 - p;
            placed += 1;
        }
    }
    for &(code, _) in &PRCTL_OPS[pm..] {
        if rng.gen_bool(0.45) {
            let idx = tail[rng.gen_range(0..tail.len())];
            acc[idx].prctl.insert(code, via(idx, rng, 0.5));
        }
    }
}

/// Assigns pseudo-file paths per the Figure 6 prominence curve.
///
/// Paths imply no extra system calls, so no rank filtering is needed.
fn assign_paths(
    catalog: &Catalog,
    acc: &mut [ImplAcc],
    core: &[usize],
    mid: &[usize],
    tail: &[usize],
    rng: &mut SmallRng,
) {
    // Universal paths: covered by core, sampled broadly.
    for (i, &p) in UNIVERSAL_PATHS.iter().enumerate() {
        let idx = core[i % core.len()];
        acc[idx].paths.insert(p.to_owned());
    }
    for &idx in core.iter().chain(mid) {
        if rng.gen_bool(0.55) {
            for _ in 0..rng.gen_range(1..3) {
                let p = UNIVERSAL_PATHS[rng.gen_range(0..UNIVERSAL_PATHS.len())];
                acc[idx].paths.insert(p.to_owned());
            }
        }
    }
    // The named inventory's tail: mid files to mid carriers, special ones
    // to tail carriers, leaving a remainder unused.
    let uni: HashSet<&str> = UNIVERSAL_PATHS.iter().copied().collect();
    for (_, pattern, _, special) in catalog.pseudo_files.iter() {
        if uni.contains(pattern) || pattern == "/dev/kvm" {
            continue;
        }
        if !special {
            for _ in 0..rng.gen_range(1..3) {
                let idx = mid[rng.gen_range(0..mid.len())];
                acc[idx].paths.insert(pattern.to_owned());
            }
        } else if rng.gen_bool(0.7) {
            let idx = tail[rng.gen_range(0..tail.len())];
            acc[idx].paths.insert(pattern.to_owned());
        }
    }
}

/// Internal accumulator shared with the planning loop (kept here so the
/// helper functions can name the type).
#[derive(Default, Clone)]
struct ImplAcc {
    libc_calls: BTreeSet<String>,
    direct: BTreeSet<u32>,
    ioctl: BTreeMap<u64, bool>,
    fcntl: BTreeMap<u64, bool>,
    prctl: BTreeMap<u64, bool>,
    paths: BTreeSet<String>,
}
