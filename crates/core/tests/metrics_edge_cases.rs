//! Metric-engine edge cases: dependency cycles, self-dependencies, empty
//! footprints, and scope filtering.

use std::collections::{HashMap, HashSet};

use apistudy_catalog::{Api, ApiKind, Catalog};
use apistudy_core::{ApiFootprint, Attribution, Metrics, PackageRecord, StudyData};
use apistudy_corpus::MixCensus;

fn record(name: &str, prob: f64, apis: &[Api], deps: &[&str]) -> PackageRecord {
    let mut fp = ApiFootprint::default();
    fp.apis.extend(apis.iter().copied());
    PackageRecord {
        name: name.into(),
        prob,
        install_count: (prob * 1000.0) as u64,
        depends: deps.iter().map(|s| s.to_string()).collect(),
        footprint: fp,
        script_interpreters: vec![],
        file_counts: (1, 0, 0),
        unresolved_syscall_sites: 0,
        skipped_binaries: 0,
        partial_footprint: false,
    }
}

fn dataset(packages: Vec<PackageRecord>) -> StudyData {
    let by_name: HashMap<String, usize> = packages
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i))
        .collect();
    StudyData {
        catalog: Catalog::linux_3_19(),
        packages,
        by_name,
        total_installations: 1000,
        census: MixCensus::default(),
        attribution: Attribution::default(),
        unresolved_syscall_sites: 0,
        resolved_syscall_sites: 1,
        diagnostics: apistudy_core::diagnostics::RunDiagnostics::default(),
    }
}

#[test]
fn dependency_cycle_terminates_and_fails_together() {
    // a ↔ b cycle: supporting only a's API leaves b broken, which breaks
    // a through the cycle — and the fixpoint must terminate.
    let data = dataset(vec![
        record("a", 0.5, &[Api::Syscall(1)], &["b"]),
        record("b", 0.5, &[Api::Syscall(2)], &["a"]),
        record("standalone", 0.5, &[Api::Syscall(1)], &[]),
    ]);
    let metrics = Metrics::new(&data);
    let only_one: HashSet<u32> = [1u32].into_iter().collect();
    let c = metrics.syscall_completeness(&only_one);
    // Only `standalone` survives: 0.5 / 1.5.
    assert!((c - 0.5 / 1.5).abs() < 1e-12, "{c}");
    let both: HashSet<u32> = [1u32, 2].into_iter().collect();
    assert!((metrics.syscall_completeness(&both) - 1.0).abs() < 1e-12);
}

#[test]
fn self_dependency_is_harmless() {
    let data = dataset(vec![record("selfie", 0.8, &[Api::Syscall(3)], &["selfie"])]);
    let metrics = Metrics::new(&data);
    let supported: HashSet<u32> = [3u32].into_iter().collect();
    assert!((metrics.syscall_completeness(&supported) - 1.0).abs() < 1e-12);
    assert_eq!(metrics.importance(Api::Syscall(3)), 0.8);
}

#[test]
fn unknown_dependency_names_are_ignored() {
    let data = dataset(vec![record(
        "orphan",
        0.4,
        &[Api::Syscall(0)],
        &["not-a-package"],
    )]);
    let metrics = Metrics::new(&data);
    let supported: HashSet<u32> = [0u32].into_iter().collect();
    assert!((metrics.syscall_completeness(&supported) - 1.0).abs() < 1e-12);
}

#[test]
fn empty_footprint_packages_always_work() {
    let data = dataset(vec![
        record("empty", 0.5, &[], &[]),
        record("needy", 0.5, &[Api::Syscall(9)], &[]),
    ]);
    let metrics = Metrics::new(&data);
    let none: HashSet<u32> = HashSet::new();
    assert!((metrics.syscall_completeness(&none) - 0.5).abs() < 1e-12);
}

#[test]
fn scope_filter_ignores_out_of_scope_apis() {
    // A package needing a libc symbol is still "supported" when only the
    // syscall scope is evaluated.
    let catalog = Catalog::linux_3_19();
    let printf = catalog.libc_symbol("printf").unwrap();
    let data = dataset(vec![record(
        "printfy",
        1.0,
        &[Api::Syscall(1), printf],
        &[],
    )]);
    let metrics = Metrics::new(&data);
    let syscall_only: HashSet<u32> = [1u32].into_iter().collect();
    assert!(
        (metrics.syscall_completeness(&syscall_only) - 1.0).abs() < 1e-12,
        "libc symbols are out of scope for Table 6"
    );
    // But an all-kind scope with an empty support set fails it.
    let c = metrics.weighted_completeness(&HashSet::new(), |_| true);
    assert_eq!(c, 0.0);
}

#[test]
fn closure_unweighted_counts_transitive_need() {
    let data = dataset(vec![
        record("base", 1.0, &[Api::Syscall(7)], &[]),
        record("app1", 0.5, &[], &["base"]),
        record("app2", 0.5, &[], &["base"]),
        record("loner", 0.5, &[], &[]),
    ]);
    let metrics = Metrics::new(&data);
    // Direct usage: 1 of 4. Transitive: 3 of 4.
    assert_eq!(metrics.unweighted_importance(Api::Syscall(7)), 0.25);
    assert_eq!(metrics.closure_unweighted_importance(Api::Syscall(7)), 0.75);
}

#[test]
fn importance_ranking_is_deterministic_under_ties() {
    let data = dataset(vec![
        record("a", 1.0, &[Api::Syscall(5), Api::Syscall(6)], &[]),
        record("b", 1.0, &[Api::Syscall(6), Api::Syscall(5)], &[]),
    ]);
    let metrics = Metrics::new(&data);
    let r1 = metrics.importance_ranking(ApiKind::Syscall);
    let r2 = metrics.importance_ranking(ApiKind::Syscall);
    assert_eq!(r1, r2);
    // Both used calls are ranked above everything else.
    let top: Vec<Api> = r1.iter().take(2).map(|&(a, _)| a).collect();
    assert!(top.contains(&Api::Syscall(5)));
    assert!(top.contains(&Api::Syscall(6)));
}
