//! Property tests pinning the word-packed [`ApiSet`] to `BTreeSet<Api>`
//! semantics, and the bitset-based [`Metrics`] to a reference
//! implementation computed over `BTreeSet` footprints.
//!
//! The interned bitset is a pure representation change: every observable
//! (membership, cardinality, iteration order, union growth, and each
//! derived metric value) must be exactly what the ordered-set code
//! produced — metrics bit-identical, not merely close.

use std::collections::{BTreeSet, HashSet};

use proptest::prelude::*;

use apistudy_catalog::{Api, ApiInterner, ApiSet, Catalog};
use apistudy_core::{ApiFootprint, Attribution, Metrics, PackageRecord, StudyData};
use apistudy_corpus::MixCensus;

fn universe() -> u32 {
    ApiInterner::global().universe() as u32
}

fn apis_of(ids: &[u32]) -> Vec<Api> {
    let interner = ApiInterner::global();
    ids.iter().map(|&id| interner.resolve(id)).collect()
}

/// A [`StudyData`] built from drawn `(footprint ids, prob ‰, dep mask)`
/// package specs. Package `i` depends on package `j < i` when bit `j` of
/// its mask is set, so the dependency graph is acyclic by construction.
fn study_data(specs: &[(Vec<u32>, u32, u32)]) -> StudyData {
    let packages: Vec<PackageRecord> = specs
        .iter()
        .enumerate()
        .map(|(i, (ids, prob, dep_mask))| {
            let mut fp = ApiFootprint::default();
            fp.apis.extend(apis_of(ids));
            PackageRecord {
                name: format!("pkg{i}"),
                prob: f64::from(*prob) / 1000.0,
                install_count: u64::from(*prob),
                depends: (0..i)
                    .filter(|j| dep_mask >> j & 1 == 1)
                    .map(|j| format!("pkg{j}"))
                    .collect(),
                footprint: fp,
                script_interpreters: vec![],
                file_counts: (1, 0, 0),
                unresolved_syscall_sites: 0,
                skipped_binaries: 0,
                partial_footprint: false,
            }
        })
        .collect();
    let by_name = packages
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i))
        .collect();
    StudyData {
        catalog: Catalog::linux_3_19(),
        packages,
        by_name,
        total_installations: 1000,
        census: MixCensus::default(),
        attribution: Attribution::default(),
        unresolved_syscall_sites: 0,
        resolved_syscall_sites: 100,
        diagnostics: apistudy_core::diagnostics::RunDiagnostics::default(),
    }
}

/// Reference dependency-closed footprints over `BTreeSet<Api>`, using the
/// same resolved dependency edges and Gauss-Seidel sweep as `Metrics::new`.
fn reference_closed(data: &StudyData) -> Vec<BTreeSet<Api>> {
    let dep_indices: Vec<Vec<usize>> = data
        .packages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.depends
                .iter()
                .filter_map(|dep| data.by_name.get(dep).copied())
                .filter(|&d| d != i)
                .collect()
        })
        .collect();
    let mut closed: Vec<BTreeSet<Api>> = data
        .packages
        .iter()
        .map(|p| p.footprint.apis.iter().collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..closed.len() {
            for &d in &dep_indices[i] {
                if d == i {
                    continue;
                }
                let add: Vec<Api> = closed[d]
                    .iter()
                    .filter(|a| !closed[i].contains(*a))
                    .copied()
                    .collect();
                if !add.is_empty() {
                    closed[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    closed
}

/// Reference importance: `1 − ∏(1 − p)` over direct users in package
/// index order — the same factor order `Metrics::importance` multiplies in.
fn reference_importance(data: &StudyData, api: Api) -> f64 {
    let users: Vec<usize> = data
        .packages
        .iter()
        .enumerate()
        .filter(|(_, p)| p.footprint.apis.contains(api))
        .map(|(i, _)| i)
        .collect();
    if users.is_empty() {
        return 0.0;
    }
    let miss: f64 = users.iter().map(|&i| 1.0 - data.packages[i].prob).product();
    1.0 - miss
}

/// Reference weighted completeness over syscalls, mirroring
/// `Metrics::syscall_completeness` with `BTreeSet` footprints.
fn reference_syscall_completeness(data: &StudyData, supported: &HashSet<u32>) -> f64 {
    let total_mass: f64 = data.packages.iter().map(|p| p.prob).sum();
    if total_mass == 0.0 {
        return 0.0;
    }
    let dep_indices: Vec<Vec<usize>> = data
        .packages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.depends
                .iter()
                .filter_map(|dep| data.by_name.get(dep).copied())
                .filter(|&d| d != i)
                .collect()
        })
        .collect();
    let mut ok: Vec<bool> = data
        .packages
        .iter()
        .map(|p| {
            p.footprint.apis.iter().all(|a| match a {
                Api::Syscall(nr) => supported.contains(&nr),
                _ => true,
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..ok.len() {
            if ok[i] && dep_indices[i].iter().any(|&d| !ok[d]) {
                ok[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let supported_mass: f64 = data
        .packages
        .iter()
        .zip(&ok)
        .filter(|&(_, &s)| s)
        .map(|(p, _)| p.prob)
        .sum();
    supported_mass / total_mass
}

proptest! {
    #[test]
    fn apiset_matches_btreeset(
        ids in proptest::collection::vec(0u32..2460, 0..300),
    ) {
        let ids: Vec<u32> = ids.into_iter().filter(|&i| i < universe()).collect();
        let apis = apis_of(&ids);
        let bitset: ApiSet = apis.iter().copied().collect();
        let reference: BTreeSet<Api> = apis.iter().copied().collect();

        prop_assert_eq!(bitset.len(), reference.len());
        prop_assert_eq!(bitset.is_empty(), reference.is_empty());
        // Iteration yields the same APIs in the same (Ord) order.
        let from_bits: Vec<Api> = bitset.iter().collect();
        let from_tree: Vec<Api> = reference.iter().copied().collect();
        prop_assert_eq!(from_bits, from_tree);
        for api in &apis {
            prop_assert!(bitset.contains(*api));
        }
        // Membership agrees across the whole universe, not just inserts.
        let interner = ApiInterner::global();
        for probe in (0..universe()).step_by(97) {
            let api = interner.resolve(probe);
            prop_assert_eq!(bitset.contains(api), reference.contains(&api));
        }
    }

    #[test]
    fn union_and_intersection_match_btreeset(
        a in proptest::collection::vec(0u32..2460, 0..150),
        b in proptest::collection::vec(0u32..2460, 0..150),
    ) {
        let a: Vec<u32> = a.into_iter().filter(|&i| i < universe()).collect();
        let b: Vec<u32> = b.into_iter().filter(|&i| i < universe()).collect();
        let (apis_a, apis_b) = (apis_of(&a), apis_of(&b));
        let mut bits_a: ApiSet = apis_a.iter().copied().collect();
        let bits_b: ApiSet = apis_b.iter().copied().collect();
        let tree_a: BTreeSet<Api> = apis_a.iter().copied().collect();
        let tree_b: BTreeSet<Api> = apis_b.iter().copied().collect();

        prop_assert_eq!(
            bits_a.intersects(&bits_b),
            !tree_a.is_disjoint(&tree_b),
        );
        let grew = bits_a.union_with(&bits_b);
        let union: BTreeSet<Api> = tree_a.union(&tree_b).copied().collect();
        prop_assert_eq!(grew, union.len() > tree_a.len());
        let merged: Vec<Api> = bits_a.iter().collect();
        let expect: Vec<Api> = union.iter().copied().collect();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn insert_reports_freshness_like_btreeset(
        ids in proptest::collection::vec(0u32..2460, 1..120),
    ) {
        let ids: Vec<u32> = ids.into_iter().filter(|&i| i < universe()).collect();
        let mut bitset = ApiSet::new();
        let mut reference = BTreeSet::new();
        for api in apis_of(&ids) {
            prop_assert_eq!(bitset.insert(api), reference.insert(api));
        }
        prop_assert_eq!(bitset.len(), reference.len());
    }

    #[test]
    fn metrics_are_bit_identical_to_btreeset_reference(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0u32..2460, 0..40),
                0u32..1000,
                any::<u32>(),
            ),
            1..8,
        ),
        supported in proptest::collection::vec(0u32..400, 0..64),
    ) {
        let specs: Vec<(Vec<u32>, u32, u32)> = specs
            .into_iter()
            .map(|(ids, prob, mask)| {
                (ids.into_iter().filter(|&i| i < universe()).collect(), prob, mask)
            })
            .collect();
        let data = study_data(&specs);
        let metrics = Metrics::new(&data);

        // Every API any package touches, plus unused probes: importance and
        // closure importance must be the exact bits the reference computes.
        let mut apis: BTreeSet<Api> = data
            .packages
            .iter()
            .flat_map(|p| p.footprint.apis.iter())
            .collect();
        let interner = ApiInterner::global();
        for probe in (0..universe()).step_by(251) {
            apis.insert(interner.resolve(probe));
        }
        let closed = reference_closed(&data);
        let n = data.packages.len();
        for api in apis {
            let got = metrics.importance(api);
            let want = reference_importance(&data, api);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "importance({:?}): {} vs {}", api, got, want,
            );
            let users = closed.iter().filter(|c| c.contains(&api)).count();
            let want_closure = users as f64 / n as f64;
            let got_closure = metrics.closure_unweighted_importance(api);
            prop_assert_eq!(
                got_closure.to_bits(), want_closure.to_bits(),
                "closure_unweighted({:?}): {} vs {}", api, got_closure, want_closure,
            );
        }

        let supported: HashSet<u32> = supported.into_iter().collect();
        let got = metrics.syscall_completeness(&supported);
        let want = reference_syscall_completeness(&data, &supported);
        prop_assert_eq!(
            got.to_bits(), want.to_bits(),
            "completeness: {} vs {}", got, want,
        );
    }
}
