//! # apistudy-core
//!
//! The primary contribution of the EuroSys'16 study, as a library:
//!
//! - [`pipeline::StudyData`] — the repository-scale measurement pipeline
//!   (parse → analyze → link → aggregate), replacing the paper's Postgres
//!   database;
//! - [`metrics::Metrics`] — **API importance**, **unweighted API
//!   importance**, and **weighted completeness** with APT dependency
//!   closure (paper §2, Appendix A);
//! - [`depgraph::Condensation`] — one-shot Tarjan SCC condensation of
//!   the package `depends` graph; every dependency fixed point becomes a
//!   single bottom-up pass;
//! - [`engine::CompletenessEngine`] — incremental completeness: add or
//!   remove one API and get the exact (bit-identical) delta in
//!   O(edges touched);
//! - [`planner`] — the Figure 3 completeness curve and Table 4
//!   implementation stages ("from Hello World to qemu");
//! - [`libc_restructure`] — the §3.5 libc stripping/reordering analysis;
//! - [`footprints`] — §6 footprint uniqueness and seccomp profile
//!   generation;
//! - [`seccomp_bpf`] — classic-BPF seccomp filter assembly: an O(log n)
//!   binary-search dispatch tree plus the legacy linear chain, with an
//!   in-process interpreter for verification and depth profiling;
//! - [`seccomp_fleet`] — batch filter synthesis for every package in the
//!   corpus: content-hash dedup, shared-prefix factoring, eval-depth
//!   accounting, and journaled crash-safe resume;
//! - [`dataset`] — CSV export/import of the measured dataset;
//! - [`diagnostics`] — degradation accounting: skipped binaries,
//!   contained panics, quarantined packages, injected-fault ground truth;
//! - [`degradation`] — the corruption sweep: rerunning the pipeline at
//!   rising injected-corruption rates and tabulating the metric fallout;
//! - [`journal`] — the crash-safety layer: an append-only, checksummed
//!   write-ahead journal of completed work units, with fingerprint-bound
//!   bit-identical resume;
//! - [`stream`] — the paper-scale streaming pipeline: fixed-size shards
//!   analyzed with only one shard's binaries resident, folded into
//!   bit-identical [`pipeline::StudyData`];
//! - [`store`] — the on-disk [`store::FootprintStore`]: clean shards
//!   persisted with journal-style framing so interrupted sharded runs
//!   resume at file-read cost;
//! - [`diff`] — study-to-study comparison (releases / what-if scenarios);
//! - [`workloads`] — evaluation-workload matching for modified APIs;
//! - [`sys`] — classified `extern "C"` wrappers over the event-driven
//!   syscall surface (epoll / accept4 / eventfd) the serve reactor uses;
//! - [`sysfault`] — deterministic syscall-fault injection: a seeded,
//!   ledgered errno-chaos plan behind every [`sys`] wrapper and the
//!   journal/store append paths, a no-op when disarmed;
//! - [`study::Study`] — the one-call facade.

// Unsafe is denied crate-wide; the only carve-outs are `sys` (the FFI
// boundary) and the pinned-snapshot session holder in `serve`, each with
// stated invariants at every site.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dataset;
pub mod degradation;
pub mod depgraph;
pub mod diagnostics;
pub mod diff;
pub mod engine;
pub mod footprint;
pub mod footprints;
pub mod journal;
pub mod libc_restructure;
pub mod metrics;
pub mod pipeline;
pub mod planner;
pub mod proto;
pub mod seccomp_bpf;
pub mod seccomp_fleet;
pub mod serve;
pub mod store;
pub mod stream;
pub mod study;
pub mod sys;
pub mod sysfault;
pub mod workloads;

pub use cache::{AnalysisCache, CacheKey, CacheMode, CacheStats};
pub use dataset::{Dataset, DatasetRow};
pub use degradation::{
    corruption_sweep, corruption_sweep_journaled, corruption_sweep_with,
    degradation_table, DegradationPoint,
};
pub use depgraph::Condensation;
pub use diagnostics::{RunDiagnostics, SkipStage, SkippedBinary};
pub use diff::{ApiShift, StudyDiff};
pub use engine::CompletenessEngine;
pub use footprint::ApiFootprint;
pub use footprints::{seccomp_profile, uniqueness, UniquenessStats};
pub use journal::{
    catalog_fingerprint, corpus_fingerprint, Journal, JournalError,
    JournalRecord, JournalStats, RunFingerprint, RunKind,
};
pub use libc_restructure::{restructure, RestructureReport};
pub use metrics::{Metrics, MetricsIndex};
pub use pipeline::{Attribution, PackageRecord, StudyData};
pub use planner::{
    greedy_suggestions, greedy_suggestions_journaled, stages,
    CompletenessCurve, Stage,
};
pub use proto::{
    encode_frame, read_frame_by, scan_frame, ErrorCode, FrameError,
    ReadBudget, Request, Response, FRAME_HEADER, MAX_BATCH, MAX_FRAME,
};
pub use seccomp_bpf::{
    depth_profile, run_filter, run_filter_traced, seccomp_filter,
    BpfProgram, DepthProfile, FilterTooLarge, SeccompData, SeccompError,
    BPF_MAXINSNS,
};
pub use seccomp_fleet::{
    allow_set_hash, fleet_table, synthesize_fleet,
    synthesize_fleet_journaled, FleetError, FleetOptions, FleetReport,
    UniqueFilterStats,
};
pub use serve::{
    self_audit, snapshot_fingerprint, AuditEntry, Client, ClientError,
    RetryPolicy, Server, ServeOptions, ServeStats, Snapshot,
};
pub use store::{FootprintStore, StoreStats};
pub use sysfault::{
    FaultTrigger, FireAt, SysFaultKind, SysFaultPlan, SysFaultRecord,
};
pub use stream::{
    fold_partials, shard_partials, shard_ranges, sharded_fingerprint,
    study_sharded, study_sharded_stored, PackageAttribution, ShardPartial,
    DEFAULT_SHARD_SIZE,
};
pub use study::Study;
pub use workloads::{exercised_mass, workloads_for, Match};
