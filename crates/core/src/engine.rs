//! The incremental completeness engine.
//!
//! The paper's planning loop — "which API should a compat layer add
//! next?" (§3.2, Table 6) — evaluates weighted completeness once per
//! candidate API, and every evaluation used to rebuild the unsupported
//! mask and rerun the dependency fixed point from scratch.
//! [`CompletenessEngine`] instead maintains, per condensation component,
//! two counters that fully determine supportedness:
//!
//! - `own_unsupported`: how many distinct in-scope unsupported APIs the
//!   component's own footprint union contains;
//! - `bad_deps`: how many direct dependency components are currently
//!   unsupported.
//!
//! A component is supported iff both are zero. [`add_api`] /
//! [`remove_api`] touch only the components whose footprints contain the
//! API plus whatever the status flip cascades to along condensation
//! edges — O(edges touched), not O(V·E·iters). Completeness values are
//! re-read through the same canonical package-order mass sum the
//! from-scratch path uses, so every number the engine reports is
//! **bit-identical** (f64 bit pattern) to
//! [`Metrics::weighted_completeness_masked`] over the equivalent mask.
//!
//! [`add_api`]: CompletenessEngine::add_api
//! [`remove_api`]: CompletenessEngine::remove_api

use std::collections::HashSet;

use apistudy_catalog::{Api, ApiInterner, ApiSet};

use crate::metrics::Metrics;

/// Incremental weighted-completeness state over a fixed API scope.
///
/// Cheap to clone is a non-goal; cheap to *update* is the point. Create
/// one per planning session and drive it with
/// [`add_api`](Self::add_api) / [`remove_api`](Self::remove_api) /
/// [`probe_gain`](Self::probe_gain).
pub struct CompletenessEngine<'m, 'a> {
    metrics: &'m Metrics<'a>,
    /// The in-scope APIs (fixed for the engine's lifetime).
    scope: ApiSet,
    /// In-scope APIs currently unsupported.
    unsupported: ApiSet,
    /// Per component: distinct unsupported APIs in its own footprint
    /// union.
    own_unsupported: Vec<u32>,
    /// Per component: direct dependency components currently unsupported.
    bad_deps: Vec<u32>,
    /// Per component: supported iff `own_unsupported == 0 && bad_deps == 0`.
    comp_ok: Vec<bool>,
    /// Per package: its component's verdict, maintained incrementally so
    /// the canonical mass sum never walks the component table.
    pkg_ok: Vec<bool>,
    /// Current completeness (canonical package-order sum).
    current: f64,
    /// Components whose verdict flipped in the last `add_api`/`remove_api`.
    flipped: Vec<u32>,
}

impl<'m, 'a> CompletenessEngine<'m, 'a> {
    /// Builds an engine whose scope is `scope` with everything in
    /// `unsupported ∩ scope` initially unsupported.
    pub fn new(metrics: &'m Metrics<'a>, scope: ApiSet, unsupported: &ApiSet) -> Self {
        let cond = metrics.condensation();
        let ncomp = cond.len();
        let mut masked = ApiSet::new();
        for api in unsupported.iter() {
            if scope.contains(api) {
                masked.insert(api);
            }
        }
        let own_unsupported: Vec<u32> = (0..ncomp)
            .map(|c| metrics.comp_own[c].intersection_len(&masked) as u32)
            .collect();
        let mut bad_deps = vec![0u32; ncomp];
        let mut comp_ok = vec![false; ncomp];
        for c in 0..ncomp {
            let bad = cond
                .deps(c as u32)
                .iter()
                .filter(|&&d| !comp_ok[d as usize])
                .count() as u32;
            bad_deps[c] = bad;
            comp_ok[c] = own_unsupported[c] == 0 && bad == 0;
        }
        let pkg_ok: Vec<bool> = (0..metrics.data().packages.len())
            .map(|i| comp_ok[cond.comp_of(i) as usize])
            .collect();
        let mut engine = Self {
            metrics,
            scope,
            unsupported: masked,
            own_unsupported,
            bad_deps,
            comp_ok,
            pkg_ok,
            current: 0.0,
            flipped: Vec::new(),
        };
        engine.current = engine.canonical();
        engine
    }

    /// Engine over syscall scope, starting from a set of supported
    /// syscall numbers — the Table 6 / `apistudy suggest` configuration.
    pub fn for_syscalls(
        metrics: &'m Metrics<'a>,
        supported_numbers: &HashSet<u32>,
    ) -> Self {
        let scope = metrics.syscall_unsupported_mask(&HashSet::new());
        let unsupported = metrics.syscall_unsupported_mask(supported_numbers);
        Self::new(metrics, scope, &unsupported)
    }

    /// Engine over an arbitrary scope predicate and supported set — the
    /// mirror of [`Metrics::weighted_completeness`]'s signature.
    pub fn from_scope<F>(
        metrics: &'m Metrics<'a>,
        scope: F,
        supported: &HashSet<Api>,
    ) -> Self
    where
        F: Fn(Api) -> bool,
    {
        let interner = ApiInterner::global();
        let mut scope_mask = ApiSet::new();
        let mut unsupported = ApiSet::new();
        for id in 0..interner.universe() as u32 {
            let api = interner.resolve(id);
            if scope(api) {
                scope_mask.insert(api);
                if !supported.contains(&api) {
                    unsupported.insert(api);
                }
            }
        }
        Self::new(metrics, scope_mask, &unsupported)
    }

    /// The canonical completeness reduction: package-order mass sum over
    /// supported packages — term for term the one
    /// [`Metrics::weighted_completeness_masked`] computes.
    fn canonical(&self) -> f64 {
        if self.metrics.total_mass == 0.0 {
            return 0.0;
        }
        let supported_mass: f64 = self
            .metrics
            .data()
            .packages
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.pkg_ok[i])
            .map(|(_, p)| p.prob)
            .sum();
        supported_mass / self.metrics.total_mass
    }

    /// Current weighted completeness.
    pub fn completeness(&self) -> f64 {
        self.current
    }

    /// Whether an API is currently in the unsupported set.
    pub fn is_unsupported(&self, api: Api) -> bool {
        self.unsupported.contains(api)
    }

    /// The current unsupported mask (in scope).
    pub fn unsupported_mask(&self) -> &ApiSet {
        &self.unsupported
    }

    /// Whether a condensation component is currently supported.
    pub fn comp_ok(&self, comp: u32) -> bool {
        self.comp_ok[comp as usize]
    }

    /// Components whose verdict flipped during the last
    /// [`add_api`](Self::add_api) or [`remove_api`](Self::remove_api).
    pub fn last_flipped(&self) -> &[u32] {
        &self.flipped
    }

    /// Marks an API supported and returns the completeness delta.
    ///
    /// Touches only the components whose own footprint contains the API,
    /// plus the cascade of components the flips unblock. A no-op (API out
    /// of scope, or already supported) returns exactly `0.0`.
    pub fn add_api(&mut self, api: Api) -> f64 {
        self.flipped.clear();
        let Some(id) = ApiInterner::global().intern(api) else {
            return 0.0;
        };
        if !self.unsupported.remove(api) {
            return 0.0;
        }
        let before = self.current;
        let mut worklist: Vec<u32> = Vec::new();
        for &c in &self.metrics.comp_dependents[id as usize] {
            let ci = c as usize;
            self.own_unsupported[ci] -= 1;
            if self.own_unsupported[ci] == 0 && self.bad_deps[ci] == 0 {
                worklist.push(c);
            }
        }
        while let Some(c) = worklist.pop() {
            let ci = c as usize;
            if self.comp_ok[ci] {
                continue;
            }
            self.comp_ok[ci] = true;
            self.flipped.push(c);
            for &i in self.metrics.condensation().members(c) {
                self.pkg_ok[i] = true;
            }
            for &r in self.metrics.condensation().dependents(c) {
                let ri = r as usize;
                self.bad_deps[ri] -= 1;
                if self.bad_deps[ri] == 0 && self.own_unsupported[ri] == 0 {
                    worklist.push(r);
                }
            }
        }
        if !self.flipped.is_empty() {
            self.current = self.canonical();
        }
        self.current - before
    }

    /// Marks an API unsupported and returns the completeness delta
    /// (zero or negative). The exact inverse of
    /// [`add_api`](Self::add_api): an add/remove round trip restores
    /// every counter and the completeness bit pattern.
    pub fn remove_api(&mut self, api: Api) -> f64 {
        self.flipped.clear();
        let Some(id) = ApiInterner::global().intern(api) else {
            return 0.0;
        };
        if !self.scope.contains(api) || !self.unsupported.insert(api) {
            return 0.0;
        }
        let before = self.current;
        let mut worklist: Vec<u32> = Vec::new();
        for &c in &self.metrics.comp_dependents[id as usize] {
            let ci = c as usize;
            self.own_unsupported[ci] += 1;
            if self.own_unsupported[ci] == 1 && self.comp_ok[ci] {
                worklist.push(c);
            }
        }
        while let Some(c) = worklist.pop() {
            let ci = c as usize;
            if !self.comp_ok[ci] {
                continue;
            }
            self.comp_ok[ci] = false;
            self.flipped.push(c);
            for &i in self.metrics.condensation().members(c) {
                self.pkg_ok[i] = false;
            }
            for &r in self.metrics.condensation().dependents(c) {
                let ri = r as usize;
                self.bad_deps[ri] += 1;
                if self.bad_deps[ri] == 1 && self.comp_ok[ri] {
                    worklist.push(r);
                }
            }
        }
        if !self.flipped.is_empty() {
            self.current = self.canonical();
        }
        self.current - before
    }

    /// The marginal completeness gain of supporting `api`, leaving the
    /// engine's state exactly as it was (add, measure, remove).
    ///
    /// Probes for APIs that unblock nothing short-circuit without ever
    /// touching the mass sum — the lazy evaluation that makes sweeping
    /// every candidate per planning round affordable.
    pub fn probe_gain(&mut self, api: Api) -> f64 {
        if !self.unsupported.contains(api) {
            return 0.0;
        }
        let delta = self.add_api(api);
        self.remove_api(api);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::ApiFootprint;
    use crate::pipeline::{Attribution, PackageRecord, StudyData};
    use apistudy_catalog::Catalog;
    use apistudy_corpus::MixCensus;

    fn mk(name: &str, prob: f64, apis: &[Api], deps: &[&str]) -> PackageRecord {
        let mut fp = ApiFootprint::default();
        fp.apis.extend(apis.iter().copied());
        PackageRecord {
            name: name.into(),
            prob,
            install_count: (prob * 1000.0) as u64,
            depends: deps.iter().map(|s| s.to_string()).collect(),
            footprint: fp,
            script_interpreters: vec![],
            file_counts: (1, 0, 0),
            unresolved_syscall_sites: 0,
            skipped_binaries: 0,
            partial_footprint: false,
        }
    }

    fn dataset(packages: Vec<PackageRecord>) -> StudyData {
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        StudyData {
            catalog: Catalog::linux_3_19(),
            packages,
            by_name,
            total_installations: 1000,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 100,
            diagnostics: crate::diagnostics::RunDiagnostics::default(),
        }
    }

    /// Chain + cycle fixture: `leaf → (a ↔ b) → base`, plus a standalone.
    fn data() -> StudyData {
        dataset(vec![
            mk("base", 1.0, &[Api::Syscall(0)], &[]),
            mk("a", 0.6, &[Api::Syscall(1)], &["b", "base"]),
            mk("b", 0.4, &[Api::Syscall(2)], &["a"]),
            mk("leaf", 0.2, &[Api::Syscall(3)], &["a"]),
            mk("standalone", 0.5, &[Api::Syscall(4)], &[]),
        ])
    }

    fn scratch(m: &Metrics<'_>, supported: &HashSet<u32>) -> f64 {
        m.syscall_completeness(supported)
    }

    #[test]
    fn engine_tracks_from_scratch_bitwise_through_adds_and_removes() {
        let data = data();
        let m = Metrics::new(&data);
        let mut supported: HashSet<u32> = HashSet::new();
        let mut engine = CompletenessEngine::for_syscalls(&m, &supported);
        assert_eq!(
            engine.completeness().to_bits(),
            scratch(&m, &supported).to_bits()
        );
        // Grow one API at a time, checking bit-identity at every step.
        for nr in [0u32, 4, 1, 2, 3] {
            let before = engine.completeness();
            let delta = engine.add_api(Api::Syscall(nr));
            supported.insert(nr);
            let reference = scratch(&m, &supported);
            assert_eq!(
                engine.completeness().to_bits(),
                reference.to_bits(),
                "after adding {nr}"
            );
            assert_eq!((engine.completeness() - before).to_bits(), delta.to_bits());
        }
        assert!((engine.completeness() - 1.0).abs() < 1e-12);
        // Now shrink again.
        for nr in [1u32, 0] {
            engine.remove_api(Api::Syscall(nr));
            supported.remove(&nr);
            assert_eq!(
                engine.completeness().to_bits(),
                scratch(&m, &supported).to_bits(),
                "after removing {nr}"
            );
        }
    }

    #[test]
    fn cycle_becomes_supported_only_together() {
        let data = data();
        let m = Metrics::new(&data);
        let mut engine = CompletenessEngine::for_syscalls(&m, &HashSet::new());
        engine.add_api(Api::Syscall(0));
        // base works: mass 1.0 of 2.7.
        assert!((engine.completeness() - 1.0 / 2.7).abs() < 1e-12);
        // Supporting only syscall 1 (a's API) cannot flip the a↔b cycle.
        let d1 = engine.add_api(Api::Syscall(1));
        assert_eq!(d1, 0.0);
        // Syscall 2 completes the cycle: a and b flip together.
        let d2 = engine.add_api(Api::Syscall(2));
        assert!((d2 - 1.0 / 2.7).abs() < 1e-12, "a+b mass: {d2}");
        // And unlocks leaf for syscall 3.
        let d3 = engine.add_api(Api::Syscall(3));
        assert!((d3 - 0.2 / 2.7).abs() < 1e-12, "leaf mass: {d3}");
    }

    #[test]
    fn probe_round_trip_is_exact() {
        let data = data();
        let m = Metrics::new(&data);
        let supported: HashSet<u32> = [0u32].into_iter().collect();
        let mut engine = CompletenessEngine::for_syscalls(&m, &supported);
        let before = engine.completeness().to_bits();
        let own_before = engine.own_unsupported.clone();
        let bad_before = engine.bad_deps.clone();
        let ok_before = engine.comp_ok.clone();
        for nr in 0..6u32 {
            let gain = engine.probe_gain(Api::Syscall(nr));
            assert!(gain >= 0.0);
            assert_eq!(engine.completeness().to_bits(), before, "probe {nr}");
        }
        assert_eq!(engine.own_unsupported, own_before);
        assert_eq!(engine.bad_deps, bad_before);
        assert_eq!(engine.comp_ok, ok_before);
    }

    #[test]
    fn out_of_scope_and_duplicate_ops_are_no_ops() {
        let data = data();
        let m = Metrics::new(&data);
        let mut engine = CompletenessEngine::for_syscalls(&m, &HashSet::new());
        // Libc symbols are outside the syscall scope.
        assert_eq!(engine.remove_api(Api::LibcSymbol(3)), 0.0);
        assert_eq!(engine.add_api(Api::LibcSymbol(3)), 0.0);
        // Out-of-universe syscalls are inert.
        assert_eq!(engine.add_api(Api::Syscall(9999)), 0.0);
        // Double add: the second is a no-op.
        let first = engine.add_api(Api::Syscall(0));
        assert!(first > 0.0);
        assert_eq!(engine.add_api(Api::Syscall(0)), 0.0);
        // Double remove likewise.
        let back = engine.remove_api(Api::Syscall(0));
        assert_eq!(back.to_bits(), (-first).to_bits());
        assert_eq!(engine.remove_api(Api::Syscall(0)), 0.0);
    }

    #[test]
    fn from_scope_matches_weighted_completeness() {
        let data = data();
        let m = Metrics::new(&data);
        let supported: HashSet<Api> =
            [Api::Syscall(0), Api::Syscall(4)].into_iter().collect();
        let engine = CompletenessEngine::from_scope(
            &m,
            |a| a.kind() == apistudy_catalog::ApiKind::Syscall,
            &supported,
        );
        let reference =
            m.weighted_completeness(&supported, |a| {
                a.kind() == apistudy_catalog::ApiKind::Syscall
            });
        assert_eq!(engine.completeness().to_bits(), reference.to_bits());
    }
}
