//! Footprint-level tooling: uniqueness statistics and seccomp profile
//! generation (paper §6).
//!
//! The paper observes that the 31,433 analyzed applications exhibit 11,680
//! distinct system call footprints, 9,133 of them unique to a single
//! application — making footprints useful as identifiers and as
//! automatically generated seccomp sandbox policies.

use std::collections::HashMap;

use crate::pipeline::StudyData;

/// Footprint uniqueness statistics (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniquenessStats {
    /// Packages with a non-empty syscall footprint.
    pub applications: usize,
    /// Distinct syscall footprints.
    pub distinct: usize,
    /// Footprints used by exactly one package.
    pub unique: usize,
}

/// Computes footprint uniqueness across the corpus.
pub fn uniqueness(data: &StudyData) -> UniquenessStats {
    let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut applications = 0usize;
    for p in &data.packages {
        let fp: Vec<u32> = p.footprint.syscalls().collect();
        if fp.is_empty() {
            continue;
        }
        applications += 1;
        *counts.entry(fp).or_insert(0) += 1;
    }
    let distinct = counts.len();
    let unique = counts.values().filter(|&&c| c == 1).count();
    UniquenessStats { applications, distinct, unique }
}

/// Generates a seccomp allow-list for a package: the sorted kernel names
/// of every system call its footprint can issue.
///
/// This is the paper's §6 observation put to work: the static footprint is
/// exactly the policy an application-specific sandbox needs.
pub fn seccomp_profile(data: &StudyData, package: &str) -> Option<Vec<&'static str>> {
    let record = data.package(package)?;
    let mut names: Vec<&'static str> = record
        .footprint
        .syscalls()
        .filter_map(|nr| data.catalog.syscalls.by_number(nr).map(|d| d.name))
        .collect();
    names.sort_unstable();
    Some(names)
}

/// Renders a seccomp profile as a BPF-style policy text (allow listed
/// calls, kill otherwise), suitable for human review.
pub fn seccomp_policy_text(data: &StudyData, package: &str) -> Option<String> {
    let names = seccomp_profile(data, package)?;
    let mut out = String::new();
    out.push_str("# seccomp policy generated from static footprint\n");
    out.push_str(&format!("# package: {package}\n"));
    out.push_str("# default action: SCMP_ACT_KILL\n");
    for name in &names {
        out.push_str(&format!("allow {name}\n"));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 250, installations: 50_000 },
            CalibrationSpec::default(),
            5,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn a_large_fraction_of_footprints_is_distinct() {
        let data = data();
        let stats = uniqueness(&data);
        assert!(stats.applications > 200);
        assert!(stats.distinct > stats.applications / 4);
        assert!(stats.unique <= stats.distinct);
        assert!(stats.unique > 0, "some footprints must be unique");
    }

    #[test]
    fn seccomp_profile_contains_startup_calls() {
        let data = data();
        let profile = seccomp_profile(&data, "coreutils").expect("package");
        assert!(profile.contains(&"exit_group"));
        assert!(profile.contains(&"mmap"));
        assert!(profile.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(seccomp_profile(&data, "no-such-package").is_none());
    }

    #[test]
    fn policy_text_lists_every_call() {
        let data = data();
        let profile = seccomp_profile(&data, "coreutils").unwrap();
        let text = seccomp_policy_text(&data, "coreutils").unwrap();
        for name in &profile {
            assert!(text.contains(&format!("allow {name}\n")));
        }
        assert!(text.starts_with("# seccomp policy"));
    }
}
