//! Crash-safe sweeps: the write-ahead result journal.
//!
//! A corpus-scale campaign is measured in hours; a crash at binary
//! 60,000 must not mean starting over. [`Journal`] is an append-only,
//! checksummed log of *completed work units* — the baseline's fixed
//! support set, per-rate sweep points, greedy-planner picks — written
//! ahead of any use of their results, so a `kill -9` mid-sweep loses at
//! most the unit in flight. A resumed run replays the journaled units
//! (paying only the file-read cost) and recomputes the rest, and is
//! proven bit-identical to an uninterrupted run (f64 results round-trip
//! by bit pattern, never through text).
//!
//! Durability discipline:
//!
//! - the **header** — magic, version, and the run's [`RunFingerprint`] —
//!   is committed with a temp-file + atomic rename, so a journal either
//!   exists with a complete, checksummed header or not at all;
//! - **records** are appended with a length prefix and a 64-bit content
//!   checksum, flushed and fsynced per append; a torn or truncated tail
//!   (a crash mid-`write`) is recovered by scanning the longest valid
//!   record prefix and discarding the rest — never a wrong record,
//!   never an aborted resume;
//! - the header's fingerprint binds the journal to one exact run:
//!   corpus identity, [`AnalysisOptions`](apistudy_analysis::AnalysisOptions)
//!   fingerprint, catalog version, and the plan being executed (fault
//!   seed + rate grid, or the greedy planner's support set and budget).
//!   Resuming under any other configuration is refused with
//!   [`JournalError::FingerprintMismatch`] instead of silently mixing
//!   incompatible results.
//!
//! The fail-point hook `APISTUDY_JOURNAL_CRASH_AFTER=<n>` aborts the
//! process immediately after the `n`-th successful append — the
//! crash-resume integration suite uses it to kill real subprocess sweeps
//! at every interesting boundary.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use apistudy_analysis::content_hash;
use apistudy_catalog::Catalog;
use apistudy_corpus::SynthRepo;

use crate::cache::{fold_hash, Cursor};
use crate::degradation::DegradationPoint;

/// Journal file magic.
const MAGIC: &[u8; 4] = b"APSJ";
/// On-disk format version (bump on any layout change; old journals are
/// then refused with a header error, never misread).
const VERSION: u32 = 1;
/// Sanity bound on one record's payload — far above any real record, low
/// enough that a corrupt length prefix cannot trigger a giant allocation.
const MAX_RECORD: usize = 1 << 24;
/// Header layout: magic(4) version(4) kind(1) fingerprint(8) check(8).
const HEADER_LEN: usize = 25;

/// Which kind of run a journal belongs to. Folded into the fingerprint
/// so a sweep journal can never resume a greedy plan or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A corruption-degradation sweep
    /// ([`crate::degradation::corruption_sweep_journaled`]).
    CorruptionSweep,
    /// A greedy planning run
    /// ([`crate::planner::greedy_suggestions_journaled`]).
    GreedyPlan,
    /// A sharded streaming pipeline run backed by a
    /// [`FootprintStore`](crate::store::FootprintStore).
    ShardedPipeline,
    /// A fleet-scale seccomp synthesis run
    /// ([`crate::seccomp_fleet::synthesize_fleet_journaled`]).
    SeccompFleet,
}

impl RunKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            RunKind::CorruptionSweep => 1,
            RunKind::GreedyPlan => 2,
            RunKind::ShardedPipeline => 3,
            RunKind::SeccompFleet => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => RunKind::CorruptionSweep,
            2 => RunKind::GreedyPlan,
            3 => RunKind::ShardedPipeline,
            4 => RunKind::SeccompFleet,
            _ => return None,
        })
    }
}

/// The identity of one resumable run. Every field that could change a
/// single output bit must be captured here: a journal whose fingerprint
/// does not match the attempted resume is refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint {
    /// What kind of run this is.
    pub kind: RunKind,
    /// Corpus identity (see [`corpus_fingerprint`]).
    pub corpus: u64,
    /// [`AnalysisOptions::fingerprint`](apistudy_analysis::AnalysisOptions::fingerprint).
    pub options: u64,
    /// Catalog version (see [`catalog_fingerprint`]).
    pub catalog: u64,
    /// The plan being executed: fault seed + rate grid for sweeps,
    /// support set + pick budget for greedy planning.
    pub plan: u64,
}

impl RunFingerprint {
    /// The folded 64-bit header value.
    pub(crate) fn fold(&self) -> u64 {
        let mut h = fold_hash(0, u64::from(self.kind.tag()));
        for word in [self.corpus, self.options, self.catalog, self.plan] {
            h = fold_hash(h, word);
        }
        h
    }
}

/// Fingerprints a synthetic corpus: the master seed, the scale, and every
/// package's name, materialization seed, and file counts. Anything that
/// changes a generated byte changes at least one of these.
pub fn corpus_fingerprint(repo: &SynthRepo) -> u64 {
    let plan = &repo.plan;
    let mut h = fold_hash(0, plan.seed);
    h = fold_hash(h, plan.scale.packages as u64);
    h = fold_hash(h, plan.scale.installations);
    h = fold_hash(h, plan.popcon.total_installations);
    for p in &plan.packages {
        h = fold_hash(h, content_hash(p.name.as_bytes()));
        h = fold_hash(h, p.seed);
        h = fold_hash(h, p.prob.to_bits());
        let counts = ((p.execs.len() as u64) << 42)
            | ((p.libs.len() as u64) << 21)
            | p.scripts.len() as u64;
        h = fold_hash(h, counts);
    }
    h
}

/// Fingerprints the API catalog the run measures against: the syscall
/// table's size and every `(number, name)` pair. A catalog revision moves
/// the fingerprint, so journals never survive one.
pub fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    let mut h = fold_hash(0, catalog.syscalls.len() as u64);
    for d in catalog.syscalls.iter() {
        h = fold_hash(h, u64::from(d.number));
        h = fold_hash(h, content_hash(d.name.as_bytes()));
    }
    h
}

/// One journaled unit of completed work. All floating-point payloads are
/// stored as raw bit patterns — replay is bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The sweep baseline's fixed support set (top-N syscall numbers in
    /// importance-ranking order). Journaled once, right after the clean
    /// baseline completes; on resume it replaces the whole baseline
    /// pipeline run.
    SupportSet(Vec<u32>),
    /// One completed sweep point.
    SweepPoint(DegradationPoint),
    /// One committed greedy pick: syscall number, exact gain, and the
    /// cumulative completeness after the pick (both as f64 bits).
    GreedyPick {
        /// Picked syscall number.
        nr: u32,
        /// The pick's exact completeness gain, as bits.
        gain_bits: u64,
        /// Completeness after committing the pick, as bits.
        after_bits: u64,
    },
    /// One measured unique allow-set of a fleet seccomp synthesis run:
    /// the expensive part (exhaustive eval-depth profiling plus
    /// tree/linear equivalence verification) journaled per content hash,
    /// so a resumed fleet run replays measurements instead of redoing
    /// thousands of 4097-point interpreter probes. Program *construction*
    /// is cheap and always redone, which lets resume cross-check the
    /// journaled lengths against the rebuilt programs.
    FleetFilter {
        /// Content hash of the sorted allow-set (see
        /// [`crate::seccomp_fleet`]).
        allow_hash: u64,
        /// Instruction count of the binary-search tree program.
        tree_len: u32,
        /// Instruction count of the linear-chain program, or 0 when the
        /// linear layout failed its 8-bit jump offsets.
        linear_len: u32,
        /// Deepest tree evaluation over the probe range, in executed
        /// instructions.
        tree_max_depth: u32,
        /// Sum of executed tree instructions over all probes.
        tree_depth_total: u64,
        /// Deepest linear evaluation (0 when the linear layout failed).
        linear_max_depth: u32,
        /// Sum of executed linear instructions over all probes.
        linear_depth_total: u64,
    },
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            JournalRecord::SupportSet(numbers) => {
                buf.push(1);
                buf.extend_from_slice(&(numbers.len() as u32).to_le_bytes());
                for &nr in numbers {
                    buf.extend_from_slice(&nr.to_le_bytes());
                }
            }
            JournalRecord::SweepPoint(p) => {
                buf.push(2);
                buf.extend_from_slice(&p.rate.to_bits().to_le_bytes());
                for word in [
                    p.injected,
                    p.injected_fatal,
                    p.skipped_binaries,
                    p.deadline_skipped,
                    p.partial_packages,
                    p.quarantined_packages,
                ] {
                    buf.extend_from_slice(&word.to_le_bytes());
                }
                buf.extend_from_slice(
                    &(p.distinct_syscalls as u64).to_le_bytes(),
                );
                buf.extend_from_slice(
                    &p.completeness_top.to_bits().to_le_bytes(),
                );
            }
            JournalRecord::GreedyPick { nr, gain_bits, after_bits } => {
                buf.push(3);
                buf.extend_from_slice(&nr.to_le_bytes());
                buf.extend_from_slice(&gain_bits.to_le_bytes());
                buf.extend_from_slice(&after_bits.to_le_bytes());
            }
            JournalRecord::FleetFilter {
                allow_hash,
                tree_len,
                linear_len,
                tree_max_depth,
                tree_depth_total,
                linear_max_depth,
                linear_depth_total,
            } => {
                buf.push(4);
                buf.extend_from_slice(&allow_hash.to_le_bytes());
                for word in [*tree_len, *linear_len, *tree_max_depth] {
                    buf.extend_from_slice(&word.to_le_bytes());
                }
                buf.extend_from_slice(&tree_depth_total.to_le_bytes());
                buf.extend_from_slice(&linear_max_depth.to_le_bytes());
                buf.extend_from_slice(&linear_depth_total.to_le_bytes());
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> Option<Self> {
        let mut c = Cursor { bytes: payload, at: 0 };
        let rec = match c.u8()? {
            1 => {
                let count = c.u32()? as usize;
                if count > MAX_RECORD / 4 {
                    return None;
                }
                let mut numbers = Vec::with_capacity(count);
                for _ in 0..count {
                    numbers.push(c.u32()?);
                }
                JournalRecord::SupportSet(numbers)
            }
            2 => {
                let rate = f64::from_bits(c.u64()?);
                let injected = c.u32()?;
                let injected_fatal = c.u32()?;
                let skipped_binaries = c.u32()?;
                let deadline_skipped = c.u32()?;
                let partial_packages = c.u32()?;
                let quarantined_packages = c.u32()?;
                let distinct_syscalls = c.u64()? as usize;
                let completeness_top = f64::from_bits(c.u64()?);
                JournalRecord::SweepPoint(DegradationPoint {
                    rate,
                    injected,
                    injected_fatal,
                    skipped_binaries,
                    deadline_skipped,
                    partial_packages,
                    quarantined_packages,
                    distinct_syscalls,
                    completeness_top,
                })
            }
            3 => JournalRecord::GreedyPick {
                nr: c.u32()?,
                gain_bits: c.u64()?,
                after_bits: c.u64()?,
            },
            4 => JournalRecord::FleetFilter {
                allow_hash: c.u64()?,
                tree_len: c.u32()?,
                linear_len: c.u32()?,
                tree_max_depth: c.u32()?,
                tree_depth_total: c.u64()?,
                linear_max_depth: c.u32()?,
                linear_depth_total: c.u64()?,
            },
            _ => return None,
        };
        // Trailing garbage means the record is not what was written.
        if c.at != payload.len() {
            return None;
        }
        Some(rec)
    }
}

/// Replay/append accounting for one journaled run, for footers and CI
/// gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records recovered from the journal and reused instead of being
    /// recomputed.
    pub replayed: u64,
    /// Records computed by this run and appended to the journal.
    pub appended: u64,
}

/// Why a journal could not be created, resumed, or trusted.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (create, append, fsync, truncate).
    Io(std::io::Error),
    /// The file is not a journal this version can read: bad magic,
    /// unknown version, or a damaged/truncated header.
    Header(String),
    /// The journal belongs to a different run (corpus, options, catalog,
    /// or plan changed). Folded fingerprints are reported for diagnosis.
    FingerprintMismatch {
        /// The fingerprint of the run attempting to resume.
        expected: u64,
        /// The fingerprint the journal header carries.
        found: u64,
    },
    /// A recovered record contradicts the resuming run (wrong record
    /// kind for the phase, a sweep point for an unexpected rate, a
    /// replayed greedy gain that does not reproduce). Indicates a logic
    /// or fingerprint-coverage bug; never silently ignored.
    Diverged(String),
    /// A previous append on this handle failed (write or fsync), so the
    /// on-disk state past the last known-good record is unknowable —
    /// the "fsyncgate" lesson: after a failed fsync, retrying through
    /// the same handle can silently lose data the page cache already
    /// dropped. The handle refuses all further appends; recovery is
    /// reopening via resume, which truncates to the longest valid
    /// prefix.
    FailStop,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Header(why) => {
                write!(f, "not a resumable journal: {why}")
            }
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run \
                 (expected fingerprint {expected:#018x}, found {found:#018x})"
            ),
            JournalError::Diverged(why) => {
                write!(f, "journal diverged from the resuming run: {why}")
            }
            JournalError::FailStop => write!(
                f,
                "journal fail-stopped after an append failure; reopen \
                 with resume to recover the valid prefix"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The write-ahead journal: a header bound to one run, then checksummed
/// length-prefixed records appended as work units complete.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    stats: JournalStats,
    /// Fail-point: abort the process after this many successful appends
    /// (from `APISTUDY_JOURNAL_CRASH_AFTER`; test harness only).
    crash_after: Option<u64>,
    /// Set when an append fails; every later append returns
    /// [`JournalError::FailStop`] (fsyncgate semantics).
    poisoned: bool,
}

fn crash_after_from_env() -> Option<u64> {
    std::env::var("APISTUDY_JOURNAL_CRASH_AFTER")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

fn header_bytes(fp: &RunFingerprint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(fp.kind.tag());
    buf.extend_from_slice(&fp.fold().to_le_bytes());
    let check = content_hash(&buf);
    buf.extend_from_slice(&check.to_le_bytes());
    buf
}

impl Journal {
    /// Creates a fresh journal for the given run. The header is written
    /// to a temporary sibling, fsynced, and renamed into place, so a
    /// crash during creation leaves either a complete journal or none.
    /// An existing file at `path` is replaced.
    pub fn create(path: &Path, fp: &RunFingerprint) -> Result<Self, JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&header_bytes(fp))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_owned(),
            stats: JournalStats::default(),
            crash_after: crash_after_from_env(),
            poisoned: false,
        })
    }

    /// Opens an existing journal for resumption: verifies the header
    /// against `fp`, recovers the longest valid record prefix (a torn or
    /// truncated tail is discarded by truncating the file back to the
    /// last whole record), and returns the journal positioned for
    /// further appends plus the recovered records.
    pub fn resume(
        path: &Path,
        fp: &RunFingerprint,
    ) -> Result<(Self, Vec<JournalRecord>), JournalError> {
        let bytes = std::fs::read(path)?;
        let (records, valid_end) = Self::recover(&bytes, fp)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if (valid_end as u64) < bytes.len() as u64 {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        drop(file);
        let file = OpenOptions::new().append(true).open(path)?;
        let replayed = records.len() as u64;
        Ok((
            Self {
                file,
                path: path.to_owned(),
                stats: JournalStats { replayed, appended: 0 },
                crash_after: crash_after_from_env(),
                poisoned: false,
            },
            records,
        ))
    }

    /// Resumes when `path` holds a compatible journal, otherwise creates
    /// a fresh one — the CLI's `--resume` semantics (a missing journal
    /// starts a new run rather than failing). Header and fingerprint
    /// *errors* still surface: silently overwriting a journal that
    /// belongs to a different run would destroy resumable work.
    pub fn resume_or_create(
        path: &Path,
        fp: &RunFingerprint,
    ) -> Result<(Self, Vec<JournalRecord>), JournalError> {
        if path.exists() {
            Journal::resume(path, fp)
        } else {
            Ok((Journal::create(path, fp)?, Vec::new()))
        }
    }

    /// Scans `bytes` as a journal: header validation, then the longest
    /// valid prefix of records. Returns the records and the byte offset
    /// where the valid prefix ends.
    fn recover(
        bytes: &[u8],
        fp: &RunFingerprint,
    ) -> Result<(Vec<JournalRecord>, usize), JournalError> {
        let mut c = Cursor { bytes, at: 0 };
        let magic = c
            .take(4)
            .ok_or_else(|| JournalError::Header("file shorter than magic".into()))?;
        if magic != MAGIC {
            return Err(JournalError::Header("bad magic".into()));
        }
        match c.u32() {
            Some(VERSION) => {}
            Some(v) => {
                return Err(JournalError::Header(format!(
                    "unsupported version {v} (this build reads {VERSION})"
                )))
            }
            None => return Err(JournalError::Header("truncated header".into())),
        }
        let kind_tag = c
            .u8()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        let found = c
            .u64()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        let check = c
            .u64()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        if content_hash(&bytes[..HEADER_LEN - 8]) != check {
            return Err(JournalError::Header("header checksum mismatch".into()));
        }
        if RunKind::from_tag(kind_tag).is_none() {
            return Err(JournalError::Header(format!(
                "unknown run kind {kind_tag}"
            )));
        }
        let expected = fp.fold();
        if found != expected {
            return Err(JournalError::FingerprintMismatch { expected, found });
        }

        // Longest valid record prefix. Any structural violation — short
        // read, oversized length, checksum mismatch, undecodable payload
        // — ends the prefix *there*; everything before it is intact by
        // checksum and kept.
        let mut records = Vec::new();
        let mut valid_end = c.at;
        loop {
            let mark = c.at;
            let Some(len) = c.u32() else { break };
            let len = len as usize;
            if len > MAX_RECORD {
                break;
            }
            let Some(check) = c.u64() else { break };
            let Some(payload) = c.take(len) else { break };
            if content_hash(payload) != check {
                break;
            }
            let Some(rec) = JournalRecord::decode(payload) else { break };
            records.push(rec);
            valid_end = mark + 4 + 8 + len;
        }
        Ok((records, valid_end))
    }

    /// Appends one completed work unit: length prefix, checksum, payload,
    /// written in a single `write_all` and fsynced before returning, so a
    /// record either survives a crash whole or is discarded as a torn
    /// tail on resume — never half-trusted.
    ///
    /// The write and fsync route through the fault-aware
    /// [`crate::sys::file_write_all`] / [`crate::sys::file_sync_data`]
    /// (callsites `journal.write` / `journal.fsync`). Any failure
    /// poisons the handle: the bytes on disk past the last good record
    /// are unknowable (a torn write, or an fsync whose dirty pages the
    /// kernel dropped), so further appends fail stop with
    /// [`JournalError::FailStop`] and recovery is a fresh
    /// [`Journal::resume`], which truncates back to the longest valid
    /// prefix.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::FailStop);
        }
        let payload = rec.encode();
        let mut buf = Vec::with_capacity(12 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&content_hash(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        if let Err(e) =
            crate::sys::file_write_all(&self.file, &buf, "journal.write")
                .and_then(|()| {
                    crate::sys::file_sync_data(&self.file, "journal.fsync")
                })
        {
            self.poisoned = true;
            return Err(JournalError::Io(e));
        }
        self.stats.appended += 1;
        if let Some(n) = self.crash_after {
            if self.stats.appended >= n {
                eprintln!(
                    "APISTUDY_JOURNAL_CRASH_AFTER: aborting after {} appends",
                    self.stats.appended
                );
                std::process::abort();
            }
        }
        Ok(())
    }

    /// Replay/append counts so far.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Whether an append failure has fail-stopped this handle.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "apistudy-journal-{}-{tag}.apsj",
            std::process::id()
        ))
    }

    fn fp() -> RunFingerprint {
        RunFingerprint {
            kind: RunKind::CorruptionSweep,
            corpus: 0x1111,
            options: 0x2222,
            catalog: 0x3333,
            plan: 0x4444,
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::SupportSet(vec![0, 1, 60, 231]),
            JournalRecord::SweepPoint(DegradationPoint {
                rate: 0.03,
                injected: 7,
                injected_fatal: 4,
                skipped_binaries: 4,
                deadline_skipped: 0,
                partial_packages: 5,
                quarantined_packages: 0,
                distinct_syscalls: 241,
                completeness_top: 0.987654321,
            }),
            JournalRecord::GreedyPick {
                nr: 17,
                gain_bits: 0.25f64.to_bits(),
                after_bits: 0.75f64.to_bits(),
            },
            JournalRecord::FleetFilter {
                allow_hash: 0xDEAD_BEEF_0123_4567,
                tree_len: 211,
                linear_len: 0,
                tree_max_depth: 19,
                tree_depth_total: 61_455,
                linear_max_depth: 0,
                linear_depth_total: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_create_append_resume() {
        let path = tmp_path("roundtrip");
        let mut j = Journal::create(&path, &fp()).expect("create");
        for rec in sample_records() {
            j.append(&rec).expect("append");
        }
        assert_eq!(j.stats(), JournalStats { replayed: 0, appended: 4 });
        drop(j);
        let (j2, records) = Journal::resume(&path, &fp()).expect("resume");
        assert_eq!(records, sample_records());
        assert_eq!(j2.stats(), JournalStats { replayed: 4, appended: 0 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_continue_the_log() {
        let path = tmp_path("continue");
        let mut j = Journal::create(&path, &fp()).expect("create");
        j.append(&sample_records()[0]).expect("append");
        drop(j);
        let (mut j2, _) = Journal::resume(&path, &fp()).expect("resume");
        j2.append(&sample_records()[1]).expect("append");
        drop(j2);
        let (_, records) = Journal::resume(&path, &fp()).expect("resume");
        assert_eq!(records, sample_records()[..2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp_path("fpmismatch");
        Journal::create(&path, &fp()).expect("create");
        let other = RunFingerprint { plan: 0x9999, ..fp() };
        match Journal::resume(&path, &other) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        // resume_or_create must surface the mismatch too, not overwrite.
        match Journal::resume_or_create(&path, &other) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_the_valid_prefix() {
        let path = tmp_path("torn");
        let mut j = Journal::create(&path, &fp()).expect("create");
        for rec in sample_records() {
            j.append(&rec).expect("append");
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Tear the last record in half: the first two must survive, the
        // torn one must vanish, and the file must be truncated back so a
        // subsequent append continues from the valid prefix.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (mut j2, records) = Journal::resume(&path, &fp()).expect("resume");
        assert_eq!(records, sample_records()[..3]);
        j2.append(&sample_records()[3]).expect("append after truncate");
        drop(j2);
        let (_, records) = Journal::resume(&path, &fp()).expect("resume");
        assert_eq!(records, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_damage_is_an_error_not_a_guess() {
        let path = tmp_path("header");
        Journal::create(&path, &fp()).expect("create");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1] ^= 0xFF; // inside the magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::resume(&path, &fp()),
            Err(JournalError::Header(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_point_f64s_roundtrip_bit_exactly() {
        // Deliberately awkward bit patterns: subnormal, negative zero,
        // and a value with no short decimal form.
        for bits in [1u64, (-0.0f64).to_bits(), 0x3FF5_5555_5555_5555] {
            let p = DegradationPoint {
                rate: f64::from_bits(bits),
                injected: 1,
                injected_fatal: 0,
                skipped_binaries: 0,
                deadline_skipped: 0,
                partial_packages: 0,
                quarantined_packages: 0,
                distinct_syscalls: 0,
                completeness_top: f64::from_bits(bits),
            };
            let rec = JournalRecord::SweepPoint(p);
            let decoded = JournalRecord::decode(&rec.encode()).expect("decodes");
            let JournalRecord::SweepPoint(q) = decoded else { unreachable!() };
            assert_eq!(q.rate.to_bits(), bits);
            assert_eq!(q.completeness_top.to_bits(), bits);
        }
    }
}
