//! The streaming, sharded pipeline: paper-scale corpora under
//! shard-bounded memory.
//!
//! The in-memory pipeline materializes every binary of every package
//! before assembling [`StudyData`] — fine at 600 packages, hopeless at
//! the paper's 30,976. This module splits the corpus plan into fixed-size
//! contiguous shards and runs generate → analyze → resolve → fold with
//! only one shard's binaries resident at a time:
//!
//! 1. **Per shard** ([`StudyData::shard_assemble`] in `pipeline`): the
//!    shard's packages are generated lazily, analyzed in parallel on
//!    [`par_map_indexed`](crate::pipeline), registered into a
//!    *shard-local* linker, and resolved to compact [`PackageRecord`]s
//!    plus per-package attribution fragments. The binaries die with the
//!    shard; what survives is a [`ShardPartial`] measured in kilobytes.
//! 2. **Fold** ([`fold_partials`]): partials merge into a full
//!    [`StudyData`] — records concatenate in plan order, the census sums,
//!    attribution fragments rebuild the global direct-user index, and the
//!    interpreter-inheritance fixpoint (which can cross shards) runs once
//!    over the compact records.
//!
//! Shard-locality is *sound*, not approximate: symbol resolution only
//! ever searches an object's own `DT_NEEDED` closure, and every closure
//! in the corpus is {system libraries} ∪ {the package's own libraries}.
//! The four system libraries are analyzed once ([`SystemBase`]) and
//! pre-registered into every shard's linker (except the first, where the
//! `libc6` package ships them itself), so each executable resolves
//! against exactly the libraries it would see in a whole-corpus linker.
//! The in-memory path is literally this path run over one shard covering
//! the corpus, so bit-identity is by construction — and still test-gated.
//!
//! [`study_sharded_stored`] additionally persists every *clean* shard's
//! records into an on-disk [`FootprintStore`](crate::store::FootprintStore)
//! keyed by a [`RunFingerprint`], so an interrupted paper-scale run
//! resumes by replaying completed shards at file-read cost.

use std::collections::HashMap;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use apistudy_analysis::{AnalysisOptions, BinaryAnalysis};
use apistudy_catalog::Catalog;
use apistudy_corpus::{libc_gen, MixCensus, SynthRepo};

use crate::cache::{fold_hash, AnalysisCache, CacheKey};
use crate::diagnostics::{peak_rss_kb, RunDiagnostics};
use crate::journal::{
    catalog_fingerprint, corpus_fingerprint, JournalError, RunFingerprint,
    RunKind,
};
use crate::pipeline::{
    analyze_binary, analyze_package, item_deadline_from_env, par_map_indexed,
    Attribution, PackageRecord, PkgIntermediate, StudyData,
};
use crate::store::{FootprintStore, StoreStats};

/// Default shard size for streaming runs: large enough to keep the
/// per-shard parallel analysis saturated, small enough that one shard of
/// materialized binaries stays far under the memory budget.
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Per-package attribution fragment: which of the package's binaries have
/// *direct* call sites for which syscalls. Libraries carry their soname
/// (attribution is by file name); executables are identified positionally
/// — the fold names them `{package}/exec{i}` exactly as the in-memory
/// registration loop did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackageAttribution {
    /// `(soname, direct syscall numbers)` per shipped library, in ship
    /// order.
    pub libs: Vec<(String, Vec<u32>)>,
    /// Direct syscall numbers per shipped executable, in ship order.
    pub execs: Vec<Vec<u32>>,
}

/// Everything one shard contributes to the study: compact per-package
/// results plus mergeable aggregates. Holding every `ShardPartial` of a
/// 30k-package corpus costs megabytes; holding every *binary* would cost
/// gigabytes — that asymmetry is the whole streaming design.
#[derive(Debug, Clone)]
pub struct ShardPartial {
    /// Shard index (position in [`shard_ranges`]).
    pub shard: usize,
    /// First package index the shard covers.
    pub start: usize,
    /// One record per package, in package-index order.
    pub records: Vec<PackageRecord>,
    /// One attribution fragment per package, parallel to `records`.
    pub attributions: Vec<PackageAttribution>,
    /// The shard's slice of the Figure 1 census.
    pub census: MixCensus,
    /// Unresolved syscall sites observed in this shard.
    pub unresolved_sites: u64,
    /// Resolved syscall sites observed in this shard.
    pub resolved_sites: u64,
    /// The shard's robustness accounting.
    pub diagnostics: RunDiagnostics,
    /// True when this partial was replayed from a
    /// [`FootprintStore`](crate::store::FootprintStore) instead of being
    /// computed.
    pub replayed: bool,
}

/// The four system libraries (libc, the dynamic linker, libpthread,
/// librt), analyzed once and shared — read-only — by every shard's
/// linker. The shard containing `libc6` (always shard 0) does *not* use
/// the base: that package ships the system libraries itself, and
/// registering them twice would double-count.
pub(crate) struct SystemBase {
    /// `(soname, content hash, analysis)` in generation order. The hash
    /// is 0 when no cache is attached, mirroring
    /// [`analyze_package`](crate::pipeline)'s convention.
    pub(crate) libs: Vec<(String, u64, Arc<BinaryAnalysis>)>,
    /// System libraries whose analysis failed: they taint every shard,
    /// exactly as a skipped library taints dependents in-shard.
    pub(crate) tainted: Vec<String>,
}

/// Analyzes the system libraries once, consulting the cache when one is
/// attached. Their syscall-site counts and diagnostics are *not*
/// recorded here — shard 0 analyzes the same bytes inside `libc6` and
/// owns those counts, keeping corpus totals identical to the in-memory
/// path.
fn system_base(
    options: AnalysisOptions,
    cache: Option<(&AnalysisCache, u64)>,
) -> SystemBase {
    let catalog = Catalog::linux_3_19();
    let mut libs = Vec::new();
    let mut tainted = Vec::new();
    for (name, bytes) in libc_gen::generate_system_libraries(&catalog) {
        let key = cache.map(|(_, fp)| CacheKey::for_bytes(&bytes, fp));
        let hash = key.map_or(0, |k| k.content);
        if let (Some((c, _)), Some(key)) = (cache, key) {
            if let Some(ba) = c.get(key) {
                libs.push((name, hash, ba));
                continue;
            }
        }
        match analyze_binary(&bytes, options) {
            (Ok(ba), panics) => {
                let ba = Arc::new(ba);
                if panics == 0 {
                    if let (Some((c, _)), Some(key)) = (cache, key) {
                        c.insert(key, Arc::clone(&ba));
                    }
                }
                libs.push((name, hash, ba));
            }
            (Err(_), _) => tainted.push(name),
        }
    }
    SystemBase { libs, tainted }
}

/// Contiguous fixed-size shard ranges covering `0..package_count` (the
/// last shard may be short). A `shard_size` of 0 yields one shard over
/// the whole corpus — the in-memory path's geometry.
pub fn shard_ranges(package_count: usize, shard_size: usize) -> Vec<Range<usize>> {
    if package_count == 0 {
        return Vec::new();
    }
    let size = if shard_size == 0 { package_count } else { shard_size };
    (0..package_count)
        .step_by(size)
        .map(|start| start..(start + size).min(package_count))
        .collect()
}

/// Runs one shard end to end: parallel generate+analyze over the shard's
/// packages, then shard-local registration and resolution. Only this
/// shard's binaries are ever materialized.
fn run_shard(
    repo: &SynthRepo,
    options: AnalysisOptions,
    cache: Option<(&AnalysisCache, u64)>,
    deadline: Option<std::time::Duration>,
    base: Option<&SystemBase>,
    shard: usize,
    range: Range<usize>,
) -> ShardPartial {
    let start = range.start;
    let (inters, stats) = par_map_indexed(
        range.len(),
        deadline,
        |i| analyze_package(start + i, repo.package(start + i), options, cache),
        |i, cause, detail| {
            PkgIntermediate::quarantined(start + i, repo, detail, cause.stage())
        },
    );
    StudyData::shard_assemble(
        repo, inters, stats, cache, deadline, base, shard, start,
    )
}

/// Computes every shard's partial, sequentially: shard N's binaries are
/// dropped before shard N+1 materializes, which is what bounds peak RSS
/// to one shard. Parallelism lives *inside* each shard, where
/// [`par_map_indexed`](crate::pipeline) fans the shard's packages across
/// the worker pool.
pub fn shard_partials(
    repo: &SynthRepo,
    options: AnalysisOptions,
    shard_size: usize,
    cache: Option<(&AnalysisCache, u64)>,
) -> Vec<ShardPartial> {
    let ranges = shard_ranges(repo.package_count(), shard_size);
    let deadline = item_deadline_from_env();
    let base = if ranges.len() > 1 {
        Some(system_base(options, cache))
    } else {
        None
    };
    ranges
        .into_iter()
        .enumerate()
        .map(|(shard, range)| {
            // Shard 0 contains libc6, which ships the system libraries
            // itself; seeding the base there would register them twice.
            let shard_base = if shard == 0 { None } else { base.as_ref() };
            run_shard(repo, options, cache, deadline, shard_base, shard, range)
        })
        .collect()
}

/// Folds shard partials into a full [`StudyData`]. Order-independent:
/// partials are sorted by shard index first, so any arrival order —
/// including a mix of replayed and freshly computed shards — folds to
/// bit-identical results.
pub fn fold_partials(
    total_installations: u64,
    mut partials: Vec<ShardPartial>,
) -> StudyData {
    partials.sort_by_key(|p| p.shard);

    let n: usize = partials.iter().map(|p| p.records.len()).sum();
    let mut packages: Vec<PackageRecord> = Vec::with_capacity(n);
    let mut attribution = Attribution::default();
    let mut census = MixCensus::default();
    let mut unresolved_total = 0u64;
    let mut resolved_total = 0u64;
    let mut diagnostics = RunDiagnostics::default();

    for partial in &mut partials {
        for (k, v) in &partial.census.elf {
            *census.elf.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &partial.census.scripts {
            *census.scripts.entry(*k).or_insert(0) += v;
        }
        census.unparsable += partial.census.unparsable;
        unresolved_total += partial.unresolved_sites;
        resolved_total += partial.resolved_sites;

        let d = &mut partial.diagnostics;
        diagnostics.analyzed_binaries += d.analyzed_binaries;
        diagnostics.panics_contained += d.panics_contained;
        diagnostics.retries_recovered += d.retries_recovered;
        diagnostics.quarantined_packages += d.quarantined_packages;
        diagnostics.deadline_quarantined += d.deadline_quarantined;
        diagnostics.cache_hits += d.cache_hits;
        diagnostics.cache_misses += d.cache_misses;
        diagnostics.cache_evictions += d.cache_evictions;
        diagnostics.skipped.append(&mut d.skipped);
        diagnostics.injected.append(&mut d.injected);

        // Rebuild the global attribution index from the fragments, in
        // package order with libraries before executables — the exact
        // registration order of the in-memory loop, so the finalized
        // index is identical.
        for (rec, attr) in partial.records.iter().zip(&partial.attributions) {
            let pkg: Arc<str> = Arc::from(rec.name.as_str());
            for (soname, nrs) in &attr.libs {
                let file: Arc<str> = Arc::from(soname.as_str());
                for &nr in nrs {
                    attribution.record(nr, &file);
                }
                attribution
                    .binary_package
                    .insert(Arc::clone(&file), Arc::clone(&pkg));
            }
            for (ei, nrs) in attr.execs.iter().enumerate() {
                let file: Arc<str> =
                    Arc::from(format!("{}/exec{ei}", rec.name));
                for &nr in nrs {
                    attribution.record(nr, &file);
                }
                attribution.binary_package.insert(file, Arc::clone(&pkg));
            }
        }
        packages.append(&mut partial.records);
    }
    attribution.finalize();

    let by_name: HashMap<String, usize> = packages
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i))
        .collect();

    // Script packages inherit the interpreter package's footprint (§2.3:
    // the interpreter over-approximates the script). This fixpoint can
    // cross shard boundaries — a Python script in shard 40 inherits from
    // python2.7 wherever it lives — which is why it runs here, over the
    // compact records, and not per shard.
    let providers: Vec<Vec<usize>> = packages
        .iter()
        .map(|p| {
            p.script_interpreters
                .iter()
                .filter(|provider| **provider != p.name)
                .filter_map(|provider| by_name.get(provider).copied())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (i, provs) in providers.iter().enumerate() {
            for &src in provs {
                changed |= crate::pipeline::inherit_apis(&mut packages, i, src);
                // A script package inheriting from a partial interpreter
                // is itself partial.
                changed |=
                    crate::pipeline::inherit_partial(&mut packages, i, src);
            }
        }
        if !changed {
            break;
        }
    }

    diagnostics.peak_rss_kb = peak_rss_kb();

    StudyData {
        catalog: Catalog::linux_3_19(),
        packages,
        by_name,
        total_installations,
        census,
        attribution,
        unresolved_syscall_sites: unresolved_total,
        resolved_syscall_sites: resolved_total,
        diagnostics,
    }
}

/// Runs the full streaming pipeline: shard, analyze, fold. Bit-identical
/// to [`StudyData::from_synth_with`] for any shard size (test-gated at
/// scales 150 and 600), with peak memory bounded by one shard.
pub fn study_sharded(
    repo: &SynthRepo,
    options: AnalysisOptions,
    shard_size: usize,
    cache: Option<&AnalysisCache>,
) -> StudyData {
    let with_fp = cache.map(|c| (c, options.fingerprint()));
    let evictions_before = cache.map_or(0, |c| c.stats().evictions);
    let partials = shard_partials(repo, options, shard_size, with_fp);
    let mut data =
        fold_partials(repo.plan.popcon.total_installations, partials);
    if let Some(cache) = cache {
        data.diagnostics.cache_mode = cache.mode();
        data.diagnostics.cache_evictions =
            cache.stats().evictions - evictions_before;
    }
    data
}

/// The identity of one sharded run: corpus, analysis options, catalog,
/// and the shard geometry plus the interned API universe (stored records
/// encode `ApiSet`s as interner ids, so a universe change must invalidate
/// the store exactly as a catalog change does).
pub fn sharded_fingerprint(
    repo: &SynthRepo,
    options: AnalysisOptions,
    shard_size: usize,
) -> RunFingerprint {
    let catalog = Catalog::linux_3_19();
    let universe = apistudy_catalog::ApiInterner::global().universe() as u64;
    RunFingerprint {
        kind: RunKind::ShardedPipeline,
        corpus: corpus_fingerprint(repo),
        options: options.fingerprint(),
        catalog: catalog_fingerprint(&catalog),
        plan: fold_hash(fold_hash(0, shard_size as u64), universe),
    }
}

/// [`study_sharded`] with crash-safe persistence: every shard whose
/// diagnostics come back clean is appended to the [`FootprintStore`] at
/// `path`, and with `resume` set, shards already present in a
/// fingerprint-matching store are replayed instead of recomputed. Dirty
/// shards (skips, contained panics, quarantines) are never stored — like
/// the analysis cache, the store holds only results that are safe to
/// trust without re-deriving the fault ledger.
pub fn study_sharded_stored(
    repo: &SynthRepo,
    options: AnalysisOptions,
    shard_size: usize,
    cache: Option<&AnalysisCache>,
    path: &Path,
    resume: bool,
) -> Result<(StudyData, StoreStats), JournalError> {
    let with_fp = cache.map(|c| (c, options.fingerprint()));
    let evictions_before = cache.map_or(0, |c| c.stats().evictions);
    let fp = sharded_fingerprint(repo, options, shard_size);
    let (mut store, mut replayable) = if resume {
        FootprintStore::resume_or_create(path, &fp)?
    } else {
        (FootprintStore::create(path, &fp)?, HashMap::new())
    };

    let ranges = shard_ranges(repo.package_count(), shard_size);
    let deadline = item_deadline_from_env();
    let mut stats = StoreStats::default();
    // The system-library base is only analyzed if some shard actually
    // computes (a fully replayed resume never materializes a binary).
    let base = std::cell::OnceCell::new();
    let mut partials = Vec::with_capacity(ranges.len());
    for (shard, range) in ranges.into_iter().enumerate() {
        let replayed = replayable.remove(&shard).filter(|p| {
            p.start == range.start && p.records.len() == range.len()
        });
        let partial = match replayed {
            Some(p) => {
                stats.replayed_shards += 1;
                stats.replayed_packages += p.records.len() as u64;
                p
            }
            None => {
                let shard_base = if shard == 0 {
                    None
                } else {
                    Some(base.get_or_init(|| system_base(options, with_fp)))
                };
                let p = run_shard(
                    repo, options, with_fp, deadline, shard_base, shard, range,
                );
                stats.computed_shards += 1;
                if p.diagnostics.is_clean() {
                    store.append_shard(&p)?;
                    stats.stored_shards += 1;
                }
                p
            }
        };
        partials.push(partial);
    }

    let mut data =
        fold_partials(repo.plan.popcon.total_installations, partials);
    if let Some(cache) = cache {
        data.diagnostics.cache_mode = cache.mode();
        data.diagnostics.cache_evictions =
            cache.stats().evictions - evictions_before;
    }
    Ok((data, stats))
}
