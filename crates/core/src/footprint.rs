//! Catalog-resolved API footprints.
//!
//! The analyzer produces raw facts (syscall numbers, opcode values, import
//! names, path strings); the study's metrics operate on catalog-resolved
//! [`Api`] identifiers. [`ApiFootprint`] is that resolved set, with
//! bookkeeping for values that did not resolve (unknown ioctl codes,
//! imports outside the libc inventory).
//!
//! The API set is a word-packed [`ApiSet`] over the catalog's interned
//! universe: merging footprints is a word-wise OR and membership a single
//! bit test, which is what makes the corpus-scale aggregation passes and
//! the metrics closure cheap. Iteration order is identical to the
//! `BTreeSet<Api>` representation this replaced.

use apistudy_analysis::Footprint;
use apistudy_catalog::{Api, ApiKind, ApiSet, Catalog};

/// A catalog-resolved API footprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApiFootprint {
    /// The resolved APIs, bit-packed over the interned catalog universe.
    pub apis: ApiSet,
    /// Raw values that did not match any catalog entry (ioctl codes from
    /// out-of-inventory drivers, imports that are not libc symbols, paths
    /// outside the tracked inventory).
    pub unresolved: u32,
}

impl ApiFootprint {
    /// Resolves an analysis-level footprint against the catalog.
    pub fn resolve(catalog: &Catalog, raw: &Footprint) -> Self {
        let mut apis = ApiSet::new();
        let mut unresolved = 0u32;
        for &nr in &raw.syscalls {
            if catalog.syscalls.by_number(nr).is_some() {
                apis.insert(Api::Syscall(nr));
            } else {
                unresolved += 1;
            }
        }
        for &code in &raw.ioctl_codes {
            match catalog.ioctl_by_code(code) {
                Some(api) => {
                    apis.insert(api);
                }
                None => unresolved += 1,
            }
        }
        for &code in &raw.fcntl_codes {
            match catalog.fcntl_by_code(code) {
                Some(api) => {
                    apis.insert(api);
                }
                None => unresolved += 1,
            }
        }
        for &code in &raw.prctl_codes {
            match catalog.prctl_by_code(code) {
                Some(api) => {
                    apis.insert(api);
                }
                None => unresolved += 1,
            }
        }
        for import in &raw.imports {
            match catalog.libc_symbol(import) {
                Some(api) => {
                    apis.insert(api);
                }
                None => unresolved += 1,
            }
        }
        for path in &raw.paths {
            match catalog.pseudo_file(path) {
                Some(api) => {
                    apis.insert(api);
                }
                None => unresolved += 1,
            }
        }
        Self { apis, unresolved }
    }

    /// Whether the footprint contains an API (one bit test).
    pub fn contains(&self, api: Api) -> bool {
        self.apis.contains(api)
    }

    /// Unions another footprint into this one (word-wise OR).
    pub fn merge(&mut self, other: &ApiFootprint) {
        self.apis.union_with(&other.apis);
        self.unresolved += other.unresolved;
    }

    /// Like [`merge`](Self::merge), but reports whether any new API
    /// appeared — the signal inheritance/closure passes iterate on.
    pub fn merge_apis(&mut self, other: &ApiFootprint) -> bool {
        self.apis.union_with(&other.apis)
    }

    /// Iterates the APIs of one kind.
    pub fn of_kind(&self, kind: ApiKind) -> impl Iterator<Item = Api> + '_ {
        self.apis.iter().filter(move |a| a.kind() == kind)
    }

    /// The syscall numbers in the footprint.
    pub fn syscalls(&self) -> impl Iterator<Item = u32> + '_ {
        self.apis.iter().filter_map(|a| match a {
            Api::Syscall(n) => Some(n),
            _ => None,
        })
    }

    /// Number of APIs.
    pub fn len(&self) -> usize {
        self.apis.len()
    }

    /// Whether the footprint is empty.
    pub fn is_empty(&self) -> bool {
        self.apis.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Footprint {
        let mut f = Footprint::new();
        f.syscalls.insert(0);
        f.syscalls.insert(16);
        f.ioctl_codes.insert(0x5401); // TCGETS
        f.ioctl_codes.insert(0xDEAD_BEEF); // unknown
        f.fcntl_codes.insert(1);
        f.prctl_codes.insert(22);
        f.imports.insert("printf".into());
        f.imports.insert("not_a_libc_symbol".into());
        f.paths.insert("/dev/null".into());
        f.paths.insert("/nonexistent/path".into());
        f
    }

    #[test]
    fn resolves_known_and_counts_unknown() {
        let catalog = Catalog::linux_3_19();
        let fp = ApiFootprint::resolve(&catalog, &raw());
        assert!(fp.contains(Api::Syscall(0)));
        assert!(fp.contains(catalog.ioctl("TCGETS").unwrap()));
        assert!(fp.contains(catalog.libc_symbol("printf").unwrap()));
        assert!(fp.contains(catalog.pseudo_file("/dev/null").unwrap()));
        // Unknown ioctl code + unknown import + untracked path = 3.
        assert_eq!(fp.unresolved, 3);
    }

    #[test]
    fn kind_filter_and_syscall_iter() {
        let catalog = Catalog::linux_3_19();
        let fp = ApiFootprint::resolve(&catalog, &raw());
        let syscalls: Vec<u32> = fp.syscalls().collect();
        assert_eq!(syscalls, vec![0, 16]);
        assert_eq!(fp.of_kind(ApiKind::Ioctl).count(), 1);
        assert_eq!(fp.of_kind(ApiKind::LibcSymbol).count(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let catalog = Catalog::linux_3_19();
        let mut a = ApiFootprint::resolve(&catalog, &raw());
        let before = a.len();
        let mut other_raw = Footprint::new();
        other_raw.syscalls.insert(1);
        let b = ApiFootprint::resolve(&catalog, &other_raw);
        a.merge(&b);
        assert_eq!(a.len(), before + 1);
        assert!(!a.clone().merge_apis(&b), "b is now a subset");
    }
}
