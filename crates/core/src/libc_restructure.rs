//! The libc restructuring experiment (paper §3.5).
//!
//! glibc exports 1,274 function symbols, but ~40% are used by less than
//! one percent of applications. The paper proposes stripping or splitting
//! libc by importance and reports: keeping only symbols with ≥90%
//! importance retains 889 APIs, shrinks libc to 63% of its size, and still
//! gives 90.7% weighted completeness. It also quantifies the relocation
//! table (1,274 entries × 24 bytes = 30,576 bytes) that importance-sorting
//! would let lazy-load.

use std::collections::HashSet;

use apistudy_catalog::{Api, ApiKind};

use crate::metrics::Metrics;

/// Size of one ELF64 relocation entry, for the §3.5 accounting.
const RELA_ENTRY_SIZE: u64 = 24;

/// Outcome of stripping libc at an importance threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RestructureReport {
    /// Importance threshold used.
    pub threshold: f64,
    /// Symbols retained.
    pub retained: usize,
    /// Total symbols.
    pub total: usize,
    /// Retained code size / total code size.
    pub size_fraction: f64,
    /// Weighted completeness of the stripped libc (over libc-symbol APIs).
    pub completeness: f64,
    /// Bytes of relocation table for the full inventory.
    pub relocation_bytes: u64,
    /// Bytes of relocation table needed eagerly if sorted by importance
    /// (entries for retained symbols only; the rest lazy-load).
    pub eager_relocation_bytes: u64,
    /// Symbols with zero observed users (candidates for removal).
    pub unused: usize,
}

/// Runs the restructuring analysis at `threshold` (the paper uses 0.90).
pub fn restructure(metrics: &Metrics<'_>, threshold: f64) -> RestructureReport {
    let catalog = &metrics.data().catalog;
    let total = catalog.libc.len();
    let mut retained_ids: Vec<u32> = Vec::new();
    let mut unused = 0usize;
    for (id, _) in catalog.libc.iter() {
        let imp = metrics.importance(Api::LibcSymbol(id));
        if imp >= threshold {
            retained_ids.push(id);
        }
        if imp == 0.0 {
            unused += 1;
        }
    }
    let total_size = catalog.libc.total_size((0..total as u32).collect::<Vec<_>>());
    let retained_size = catalog.libc.total_size(retained_ids.iter().copied());
    let supported: HashSet<Api> = retained_ids
        .iter()
        .map(|&id| Api::LibcSymbol(id))
        .collect();
    let completeness = metrics
        .weighted_completeness(&supported, |a| a.kind() == ApiKind::LibcSymbol);
    RestructureReport {
        threshold,
        retained: retained_ids.len(),
        total,
        size_fraction: if total_size > 0 {
            retained_size as f64 / total_size as f64
        } else {
            0.0
        },
        completeness,
        relocation_bytes: total as u64 * RELA_ENTRY_SIZE,
        eager_relocation_bytes: retained_ids.len() as u64 * RELA_ENTRY_SIZE,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 250, installations: 50_000 },
            CalibrationSpec::default(),
            5,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn stripping_at_90pct_keeps_a_majority_but_not_all() {
        let data = data();
        let metrics = Metrics::new(&data);
        let report = restructure(&metrics, 0.90);
        assert_eq!(report.total, 1274);
        assert!(
            report.retained > 400 && report.retained < 1100,
            "retained {}",
            report.retained
        );
        assert!(
            report.size_fraction > 0.3 && report.size_fraction < 0.95,
            "size fraction {}",
            report.size_fraction
        );
        assert!(
            report.completeness > 0.5,
            "completeness {}",
            report.completeness
        );
        assert_eq!(report.relocation_bytes, 1274 * 24);
        assert!(report.eager_relocation_bytes < report.relocation_bytes);
    }

    #[test]
    fn hundreds_of_symbols_are_unused() {
        let data = data();
        let metrics = Metrics::new(&data);
        let report = restructure(&metrics, 0.90);
        assert!(
            report.unused > 100,
            "unused {} should be in the hundreds",
            report.unused
        );
    }

    #[test]
    fn lower_threshold_retains_more() {
        let data = data();
        let metrics = Metrics::new(&data);
        let strict = restructure(&metrics, 0.99);
        let loose = restructure(&metrics, 0.10);
        assert!(loose.retained >= strict.retained);
        assert!(loose.completeness >= strict.completeness);
    }
}
