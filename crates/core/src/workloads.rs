//! Evaluation-workload matching.
//!
//! The paper's introduction promises "the ability to match evaluation
//! workloads to modified or supported system APIs": if a researcher
//! optimizes `stat` and `open` (the paper's own example, citing a dentry
//! cache project), which widely-used applications would exercise — and
//! benefit from — the change?

use apistudy_catalog::Api;

use crate::{metrics::Metrics, pipeline::PackageRecord};

/// How candidate workloads must relate to the API set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Match {
    /// The workload must use *every* listed API (it exercises the whole
    /// modification).
    All,
    /// The workload must use *at least one* listed API.
    Any,
}

/// Packages that would exercise the given APIs, most-installed first.
///
/// These are the evaluation workloads a prototype paper should run, and
/// simultaneously the users who would benefit from an optimization (or
/// break under a regression).
pub fn workloads_for<'a>(
    metrics: &'a Metrics<'_>,
    apis: &[Api],
    mode: Match,
) -> Vec<&'a PackageRecord> {
    let mut out: Vec<&PackageRecord> = metrics
        .data()
        .packages
        .iter()
        .filter(|p| match mode {
            Match::All => apis.iter().all(|a| p.footprint.contains(*a)),
            Match::Any => apis.iter().any(|a| p.footprint.contains(*a)),
        })
        .collect();
    out.sort_by(|a, b| b.prob.total_cmp(&a.prob).then(a.name.cmp(&b.name)));
    out
}

/// The fraction of a typical installation that exercises the APIs —
/// i.e. how representative a benchmark over these APIs is.
pub fn exercised_mass(metrics: &Metrics<'_>, apis: &[Api], mode: Match) -> f64 {
    let total: f64 = metrics.data().packages.iter().map(|p| p.prob).sum();
    if total == 0.0 {
        return 0.0;
    }
    let hit: f64 = workloads_for(metrics, apis, mode)
        .iter()
        .map(|p| p.prob)
        .sum();
    hit / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 200, installations: 50_000 },
            CalibrationSpec::default(),
            4,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn stat_open_workloads_are_broad() {
        // The paper's own example: a stat/open optimization touches almost
        // everything.
        let data = data();
        let metrics = Metrics::new(&data);
        let apis = [
            data.catalog.syscall("stat").unwrap(),
            data.catalog.syscall("openat").unwrap(),
        ];
        let all = workloads_for(&metrics, &apis, Match::All);
        assert!(all.len() > 60, "stat+open exercised by much of the corpus");
        // Sorted by installation probability.
        for w in all.windows(2) {
            assert!(w[0].prob >= w[1].prob);
        }
        assert!(exercised_mass(&metrics, &apis, Match::All) > 0.4);
    }

    #[test]
    fn niche_api_workloads_are_the_pins() {
        let data = data();
        let metrics = Metrics::new(&data);
        let mbind = [data.catalog.syscall("mbind").unwrap()];
        let users = workloads_for(&metrics, &mbind, Match::Any);
        let names: Vec<&str> = users.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"libnuma"), "{names:?}");
        assert!(
            exercised_mass(&metrics, &mbind, Match::Any) < 0.05,
            "an mbind benchmark represents almost nobody"
        );
    }

    #[test]
    fn all_is_stricter_than_any() {
        let data = data();
        let metrics = Metrics::new(&data);
        let apis = [
            data.catalog.syscall("mbind").unwrap(),
            data.catalog.syscall("kexec_load").unwrap(),
        ];
        let any = workloads_for(&metrics, &apis, Match::Any);
        let all = workloads_for(&metrics, &apis, Match::All);
        assert!(all.len() <= any.len());
        assert!(!any.is_empty());
        assert!(all.is_empty(), "nobody uses both NUMA and kexec");
    }

    #[test]
    fn empty_api_set_semantics() {
        let data = data();
        let metrics = Metrics::new(&data);
        // All-of-nothing is everything; any-of-nothing is nothing.
        assert_eq!(
            workloads_for(&metrics, &[], Match::All).len(),
            data.packages.len()
        );
        assert!(workloads_for(&metrics, &[], Match::Any).is_empty());
    }
}
