//! Classic-BPF seccomp filter generation (paper §6).
//!
//! The paper observes that a statically recovered footprint is exactly the
//! allow-list an application sandbox needs, and that seccomp-BPF policy
//! generation "can be easily automated using our framework". This module
//! does that end to end: it assembles a real classic-BPF program (the
//! format `seccomp(2)` loads) from a footprint, and ships a small BPF
//! interpreter so filters are *executable and testable* in-process.
//!
//! Two code generators share the range coalescer:
//!
//! - [`BpfProgram::try_allow_tree`] — the production layout: a **balanced
//!   binary-search dispatch tree** over the coalesced ranges. Every
//!   internal node compares the syscall number against a pivot and
//!   descends; every leaf is a self-contained range test ending in its own
//!   `ret`. Evaluation executes O(log n) instructions, and because a
//!   conditional jump never needs to span more than one subtree — far
//!   hops use `BPF_JA`, whose offset is a full 32-bit word — the layout
//!   is structurally immune to classic BPF's 255-instruction conditional
//!   jump limit. Only a program genuinely longer than the kernel's
//!   `BPF_MAXINSNS` (4096) fails, classified.
//! - [`BpfProgram::try_allow_list`] — the legacy **linear chain**
//!   (`jeq`/`jge`+`jgt` checks falling through to a shared KILL), kept as
//!   the independently-written baseline that equivalence tests and the
//!   fleet report compare the tree against. Pathologically fragmented
//!   allow-lists overflow its 8-bit jump offsets, which is a classified
//!   error.
//!
//! The tree layout for ranges `r_0 < r_1 < … < r_{n-1}`:
//!
//! ```text
//!   ld  [offsetof(seccomp_data, arch)]
//!   jeq AUDIT_ARCH_X86_64 ? +1 : fall   ; fall = ret KILL
//!   ret KILL
//!   ld  [offsetof(seccomp_data, nr)]
//!   jge pivot ? right-subtree : fall    ; fall = left subtree
//!   ...                                  ; each leaf: jge lo / jgt hi /
//!   ...                                  ;   ret ALLOW / ret KILL
//! ```

use crate::pipeline::StudyData;

/// `AUDIT_ARCH_X86_64`.
pub const AUDIT_ARCH_X86_64: u32 = 0xC000_003E;
/// `SECCOMP_RET_ALLOW`.
pub const RET_ALLOW: u32 = 0x7FFF_0000;
/// `SECCOMP_RET_KILL` (kill the thread).
pub const RET_KILL: u32 = 0x0000_0000;
/// The kernel's hard cap on a classic-BPF program's instruction count
/// (`BPF_MAXINSNS` in `linux/bpf_common.h`). Both code generators enforce
/// it as a classified error, and the interpreter's step guard matches it:
/// classic BPF has no backward jumps, so no conforming program can
/// execute more instructions than it contains.
pub const BPF_MAXINSNS: usize = 4096;

/// Offset of `seccomp_data.nr`.
const OFF_NR: u32 = 0;
/// Offset of `seccomp_data.arch`.
const OFF_ARCH: u32 = 4;

// Classic BPF opcodes (the subset seccomp filters use).
const LD_W_ABS: u16 = 0x20; // BPF_LD | BPF_W | BPF_ABS
const JMP_JA: u16 = 0x05; // BPF_JMP | BPF_JA (unconditional, 32-bit k)
const JMP_JEQ_K: u16 = 0x15; // BPF_JMP | BPF_JEQ | BPF_K
const JMP_JGE_K: u16 = 0x35; // BPF_JMP | BPF_JGE | BPF_K
const JMP_JGT_K: u16 = 0x25; // BPF_JMP | BPF_JGT | BPF_K
const RET_K: u16 = 0x06; // BPF_RET | BPF_K

/// One classic-BPF instruction (`struct sock_filter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpfInsn {
    /// Opcode.
    pub code: u16,
    /// Jump-if-true offset.
    pub jt: u8,
    /// Jump-if-false offset.
    pub jf: u8,
    /// Operand.
    pub k: u32,
}

impl BpfInsn {
    fn new(code: u16, jt: u8, jf: u8, k: u32) -> Self {
        Self { code, jt, jf, k }
    }

    /// Serializes to the kernel's 8-byte `sock_filter` wire format
    /// (little-endian).
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..2].copy_from_slice(&self.code.to_le_bytes());
        out[2] = self.jt;
        out[3] = self.jf;
        out[4..8].copy_from_slice(&self.k.to_le_bytes());
        out
    }
}

/// Coalesces sorted, deduplicated syscall numbers into inclusive ranges.
pub(crate) fn coalesce(numbers: &[u32]) -> Vec<(u32, u32)> {
    debug_assert!(
        numbers.windows(2).all(|w| w[0] < w[1]),
        "numbers must be sorted and unique"
    );
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    for &n in numbers {
        match ranges.last_mut() {
            Some((_, hi)) if *hi + 1 == n => *hi = n,
            _ => ranges.push((n, n)),
        }
    }
    ranges
}

/// Instruction count of the dispatch tree over `ranges` (excluding the
/// 4-instruction prologue).
fn tree_size(ranges: &[(u32, u32)]) -> usize {
    match ranges {
        [] => 1,
        [(lo, hi)] => {
            if lo == hi {
                3
            } else {
                4
            }
        }
        _ => {
            let mid = ranges.len() / 2;
            let left = tree_size(&ranges[..mid]);
            // The node is a single `jge` when the hop over the left
            // subtree fits a conditional offset; otherwise `jge` + `ja`.
            let node = if left <= usize::from(u8::MAX) { 1 } else { 2 };
            node + left + tree_size(&ranges[mid..])
        }
    }
}

/// Emits the balanced binary-search dispatch over `ranges`. Every path
/// through the emitted block ends in a `ret`, so sibling subtrees can be
/// laid out back to back without patching.
fn emit_tree(insns: &mut Vec<BpfInsn>, ranges: &[(u32, u32)]) {
    match ranges {
        [] => insns.push(BpfInsn::new(RET_K, 0, 0, RET_KILL)),
        [(lo, hi)] => {
            if lo == hi {
                insns.push(BpfInsn::new(JMP_JEQ_K, 0, 1, *lo));
            } else {
                insns.push(BpfInsn::new(JMP_JGE_K, 0, 2, *lo));
                insns.push(BpfInsn::new(JMP_JGT_K, 1, 0, *hi));
            }
            insns.push(BpfInsn::new(RET_K, 0, 0, RET_ALLOW));
            insns.push(BpfInsn::new(RET_K, 0, 0, RET_KILL));
        }
        _ => {
            // nr >= ranges[mid].lo can only match the right half: ranges
            // are sorted and disjoint, so the pivot splits them exactly.
            let mid = ranges.len() / 2;
            let pivot = ranges[mid].0;
            let left = tree_size(&ranges[..mid]);
            if left <= usize::from(u8::MAX) {
                insns.push(BpfInsn::new(JMP_JGE_K, left as u8, 0, pivot));
            } else {
                insns.push(BpfInsn::new(JMP_JGE_K, 0, 1, pivot));
                insns.push(BpfInsn::new(JMP_JA, 0, 0, left as u32));
            }
            emit_tree(insns, &ranges[..mid]);
            emit_tree(insns, &ranges[mid..]);
        }
    }
}

/// A complete seccomp-BPF filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    /// The instructions, in order.
    pub insns: Vec<BpfInsn>,
}

impl BpfProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Serializes the whole program to the `sock_fprog` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.insns.iter().flat_map(|i| i.to_bytes()).collect()
    }

    /// [`BpfProgram::try_allow_list`] for trusted input: panics if the
    /// allow-list cannot be laid out (a jump span over 255 instructions).
    /// Footprints decoded from disk or the wire must go through
    /// `try_allow_list` instead, where the failure is a classified error.
    pub fn allow_list(numbers: &[u32]) -> Self {
        Self::try_allow_list(numbers)
            .expect("filter fits classic BPF offsets")
    }

    /// [`BpfProgram::try_allow_tree`] for trusted input: panics on the one
    /// remaining failure, a program genuinely over [`BPF_MAXINSNS`].
    pub fn allow_tree(numbers: &[u32]) -> Self {
        Self::try_allow_tree(numbers)
            .expect("filter fits the kernel program-length cap")
    }

    /// Builds the **linear-chain** allow-list filter from sorted,
    /// deduplicated syscall numbers. Consecutive runs become range
    /// checks. This is the legacy baseline layout: evaluation is O(n) in
    /// the number of coalesced ranges, and a pathologically fragmented
    /// allow-list needs a jump longer than classic BPF's 8-bit
    /// conditional offsets can express — the case a corrupt or hostile
    /// on-disk footprint could manufacture — which fails classified
    /// ([`FilterTooLarge::JumpSpan`]) instead of panicking. Production
    /// callers should prefer [`BpfProgram::try_allow_tree`].
    pub fn try_allow_list(numbers: &[u32]) -> Result<Self, FilterTooLarge> {
        let ranges = coalesce(numbers);

        let mut insns = Vec::new();
        // Architecture pinning.
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_ARCH));
        // jeq ARCH ? fall through : jump to the final KILL. The false
        // offset is patched after layout.
        let arch_check = insns.len();
        insns.push(BpfInsn::new(JMP_JEQ_K, 0, 0, AUDIT_ARCH_X86_64));
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_NR));

        // Range and singleton checks. Each block either jumps to ALLOW
        // (placed just before the final KILL) or falls through.
        #[derive(Clone, Copy)]
        enum Check {
            Single(u32),
            Range(u32, u32),
        }
        let checks: Vec<Check> = ranges
            .iter()
            .map(|&(lo, hi)| {
                if lo == hi {
                    Check::Single(lo)
                } else {
                    Check::Range(lo, hi)
                }
            })
            .collect();
        // Emit with placeholder jump targets, then patch: ALLOW sits at
        // index `allow_at`, KILL at `allow_at + 1`.
        let mut check_sites: Vec<(usize, bool)> = Vec::new(); // (idx, is_range_second)
        for c in &checks {
            match *c {
                Check::Single(n) => {
                    check_sites.push((insns.len(), false));
                    insns.push(BpfInsn::new(JMP_JEQ_K, 0, 0, n));
                }
                Check::Range(lo, hi) => {
                    // jge lo ? continue : skip past the pair.
                    insns.push(BpfInsn::new(JMP_JGE_K, 0, 1, lo));
                    // jgt hi ? fall through (not allowed) : ALLOW.
                    check_sites.push((insns.len(), true));
                    insns.push(BpfInsn::new(JMP_JGT_K, 0, 0, hi));
                }
            }
        }
        // KILL is the fall-through after the last check; ALLOW sits
        // behind it as the jump target of every successful check.
        let kill_at = insns.len();
        insns.push(BpfInsn::new(RET_K, 0, 0, RET_KILL));
        let allow_at = insns.len();
        insns.push(BpfInsn::new(RET_K, 0, 0, RET_ALLOW));

        // Patch jump offsets (relative to the *next* instruction).
        let rel = |from: usize, to: usize| -> Result<u8, FilterTooLarge> {
            let span = to - from - 1;
            u8::try_from(span).map_err(|_| FilterTooLarge::JumpSpan { span })
        };
        for (idx, is_range_second) in check_sites {
            if is_range_second {
                // jgt hi: true → fall through to next check (offset 0 means
                // next insn; but next insn is the next check) — we want
                // true = NOT allowed → continue scanning, false = ALLOW.
                insns[idx].jt = 0;
                insns[idx].jf = rel(idx, allow_at)?;
            } else {
                insns[idx].jt = rel(idx, allow_at)?;
                insns[idx].jf = 0;
            }
        }
        insns[arch_check].jf = rel(arch_check, kill_at)?;
        if insns.len() > BPF_MAXINSNS {
            return Err(FilterTooLarge::ProgramLength { len: insns.len() });
        }
        Ok(Self { insns })
    }

    /// Builds the **balanced binary-search** allow-list filter from
    /// sorted, deduplicated syscall numbers.
    ///
    /// The coalesced ranges become a dispatch tree: each internal node is
    /// one `jge pivot` that descends into the half that could contain the
    /// number, and each leaf tests one range and returns. Evaluation
    /// executes at most `2·⌈log₂ ranges⌉ + 8` instructions regardless of
    /// how fragmented the allow-list is, and no conditional jump ever
    /// spans more than one subtree (far hops use `BPF_JA`, whose offset
    /// is 32-bit), so the 8-bit-offset overflow that limits the linear
    /// layout cannot occur. The only classified failure left is a program
    /// genuinely exceeding the kernel's [`BPF_MAXINSNS`] cap
    /// ([`FilterTooLarge::ProgramLength`]), which takes ~800+ disjoint
    /// ranges.
    pub fn try_allow_tree(numbers: &[u32]) -> Result<Self, FilterTooLarge> {
        let ranges = coalesce(numbers);
        let mut insns = Vec::with_capacity(4 + tree_size(&ranges));
        // Architecture pinning: a local `ret KILL` keeps every jump short.
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_ARCH));
        insns.push(BpfInsn::new(JMP_JEQ_K, 1, 0, AUDIT_ARCH_X86_64));
        insns.push(BpfInsn::new(RET_K, 0, 0, RET_KILL));
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_NR));
        emit_tree(&mut insns, &ranges);
        if insns.len() > BPF_MAXINSNS {
            return Err(FilterTooLarge::ProgramLength { len: insns.len() });
        }
        Ok(Self { insns })
    }

    /// Renders a human-readable disassembly.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            let text = match insn.code {
                LD_W_ABS => format!(
                    "ld [{}]{}",
                    insn.k,
                    if insn.k == OFF_ARCH { "  ; arch" } else { "  ; nr" }
                ),
                JMP_JA => format!("ja +{}", insn.k),
                JMP_JEQ_K => format!(
                    "jeq #{:#x}, +{}, +{}",
                    insn.k, insn.jt, insn.jf
                ),
                JMP_JGE_K => format!("jge #{}, +{}, +{}", insn.k, insn.jt, insn.jf),
                JMP_JGT_K => format!("jgt #{}, +{}, +{}", insn.k, insn.jt, insn.jf),
                RET_K => {
                    if insn.k == RET_ALLOW {
                        "ret ALLOW".to_owned()
                    } else {
                        "ret KILL".to_owned()
                    }
                }
                other => format!("op {other:#x}"),
            };
            let _ = writeln!(out, "{i:4}: {text}");
        }
        out
    }
}

/// The `seccomp_data` view the filter evaluates.
#[derive(Debug, Clone, Copy)]
pub struct SeccompData {
    /// System call number.
    pub nr: u32,
    /// Audit architecture.
    pub arch: u32,
}

/// Executes a classic-BPF seccomp filter over one syscall event.
///
/// Returns the filter's return value (`RET_ALLOW` / `RET_KILL`), or `None`
/// when the program is malformed (falls off the end, bad offset — which
/// the kernel verifier would reject).
pub fn run_filter(program: &BpfProgram, data: SeccompData) -> Option<u32> {
    run_filter_traced(program, data).map(|(verdict, _)| verdict)
}

/// [`run_filter`], also counting executed instructions — the *eval depth*
/// the fleet report and the O(log n) CI gate measure. The step guard is
/// [`BPF_MAXINSNS`]: classic BPF has no backward jumps, so a conforming
/// program can never execute more instructions than the kernel allows it
/// to contain.
pub fn run_filter_traced(
    program: &BpfProgram,
    data: SeccompData,
) -> Option<(u32, u32)> {
    let mut acc: u32 = 0;
    let mut pc = 0usize;
    let mut steps = 0u32;
    while pc < program.insns.len() {
        steps += 1;
        if steps as usize > BPF_MAXINSNS {
            return None; // Classic BPF cannot loop, but guard anyway.
        }
        let insn = program.insns[pc];
        match insn.code {
            LD_W_ABS => {
                acc = match insn.k {
                    OFF_NR => data.nr,
                    OFF_ARCH => data.arch,
                    _ => return None,
                };
                pc += 1;
            }
            JMP_JA => {
                pc += 1 + insn.k as usize;
            }
            JMP_JEQ_K => {
                let taken = acc == insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            JMP_JGE_K => {
                let taken = acc >= insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            JMP_JGT_K => {
                let taken = acc > insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            RET_K => return Some((insn.k, steps)),
            _ => return None,
        }
    }
    None
}

/// Executed-instruction statistics for one filter, probed over every
/// syscall number in `0..=max_nr` (matching architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthProfile {
    /// Deepest evaluation observed, in executed instructions.
    pub max: u32,
    /// Sum of executed instructions over all probes (for averages).
    pub total: u64,
    /// Number of probes (`max_nr + 1`).
    pub evals: u32,
}

impl DepthProfile {
    /// Mean executed instructions per evaluation.
    pub fn avg(&self) -> f64 {
        if self.evals == 0 {
            return 0.0;
        }
        self.total as f64 / f64::from(self.evals)
    }
}

/// Probes a filter's eval depth for every `nr` in `0..=max_nr`. Returns
/// `None` if any evaluation is malformed (which the generators never
/// produce).
pub fn depth_profile(program: &BpfProgram, max_nr: u32) -> Option<DepthProfile> {
    let mut max = 0u32;
    let mut total = 0u64;
    for nr in 0..=max_nr {
        let (_, steps) = run_filter_traced(
            program,
            SeccompData { nr, arch: AUDIT_ARCH_X86_64 },
        )?;
        max = max.max(steps);
        total += u64::from(steps);
    }
    Some(DepthProfile { max, total, evals: max_nr + 1 })
}

/// The allow-list cannot be laid out as a legal classic-BPF program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterTooLarge {
    /// The linear layout needs a conditional jump classic BPF's 8-bit
    /// offsets cannot express (a check more than 255 instructions from
    /// its ALLOW target). Ordinary footprints coalesce into far fewer
    /// checks; this arises from pathologically fragmented (corrupt or
    /// hostile) footprints. The tree layout is structurally immune.
    JumpSpan {
        /// The overflowing jump span, in instructions.
        span: usize,
    },
    /// The program exceeds the kernel's [`BPF_MAXINSNS`] cap — the
    /// filter genuinely cannot be loaded, whatever the layout.
    ProgramLength {
        /// The generated program's instruction count.
        len: usize,
    },
}

impl std::fmt::Display for FilterTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterTooLarge::JumpSpan { span } => write!(
                f,
                "allow-list needs a {span}-instruction jump; classic BPF \
                 offsets are 8-bit"
            ),
            FilterTooLarge::ProgramLength { len } => write!(
                f,
                "filter needs {len} instructions; the kernel caps classic \
                 BPF programs at {BPF_MAXINSNS}"
            ),
        }
    }
}

impl std::error::Error for FilterTooLarge {}

/// Why [`seccomp_filter`] could not produce a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeccompError {
    /// No package of that name in the dataset.
    UnknownPackage,
    /// The footprint's allow-list cannot be laid out as classic BPF.
    TooLarge(FilterTooLarge),
}

impl std::fmt::Display for SeccompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeccompError::UnknownPackage => write!(f, "unknown package"),
            SeccompError::TooLarge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SeccompError {}

/// Builds the seccomp-BPF filter for a package's measured footprint,
/// using the binary-search tree layout. Total over its inputs: an unknown
/// package or a footprint over the kernel program-length cap (possible
/// with a corrupt on-disk store) is a classified error, never a panic.
pub fn seccomp_filter(
    data: &StudyData,
    package: &str,
) -> Result<BpfProgram, SeccompError> {
    let record = data.package(package).ok_or(SeccompError::UnknownPackage)?;
    let numbers: Vec<u32> = record.footprint.syscalls().collect();
    BpfProgram::try_allow_tree(&numbers).map_err(SeccompError::TooLarge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allowed(program: &BpfProgram, nr: u32) -> bool {
        run_filter(program, SeccompData { nr, arch: AUDIT_ARCH_X86_64 })
            == Some(RET_ALLOW)
    }

    /// Both layouts, so every behavioral test pins both generators.
    fn both(numbers: &[u32]) -> [BpfProgram; 2] {
        [BpfProgram::allow_list(numbers), BpfProgram::allow_tree(numbers)]
    }

    #[test]
    fn empty_allow_list_kills_everything() {
        for p in both(&[]) {
            for nr in [0, 1, 59, 322] {
                assert!(!allowed(&p, nr));
            }
        }
    }

    #[test]
    fn singletons_allow_exactly_their_numbers() {
        for p in both(&[0, 3, 60]) {
            assert!(allowed(&p, 0));
            assert!(allowed(&p, 3));
            assert!(allowed(&p, 60));
            for nr in [1, 2, 4, 59, 61, 322] {
                assert!(!allowed(&p, nr), "{nr} must be killed");
            }
        }
    }

    #[test]
    fn ranges_are_coalesced_and_exact() {
        // 0..=4 and 10..=12 plus singleton 20.
        for p in both(&[0, 1, 2, 3, 4, 10, 11, 12, 20]) {
            for nr in 0..=4 {
                assert!(allowed(&p, nr));
            }
            for nr in 10..=12 {
                assert!(allowed(&p, nr));
            }
            assert!(allowed(&p, 20));
            for nr in [5, 9, 13, 19, 21] {
                assert!(!allowed(&p, nr), "{nr} must be killed");
            }
            // Three checks (two ranges + one singleton) rather than nine:
            // nine singleton leaves would cost 27+ instructions as a tree
            // and 9 checks in the chain; both layouts must come in under.
            assert!(
                p.len() < 19,
                "coalescing must shrink the filter: {}",
                p.len()
            );
        }
    }

    #[test]
    fn wrong_architecture_is_killed() {
        for p in both(&[0, 1, 2]) {
            let r = run_filter(&p, SeccompData { nr: 0, arch: 0x4000_0003 });
            assert_eq!(r, Some(RET_KILL));
        }
    }

    #[test]
    fn exhaustive_check_against_reference() {
        // Compare both layouts against the allow-set for every number the
        // study can see.
        let allow: Vec<u32> = vec![0, 1, 2, 3, 9, 10, 11, 12, 13, 14, 21,
                                   59, 60, 231, 257, 322];
        let set: std::collections::HashSet<u32> =
            allow.iter().copied().collect();
        for p in both(&allow) {
            for nr in 0..400 {
                assert_eq!(
                    allowed(&p, nr),
                    set.contains(&nr),
                    "mismatch at {nr}"
                );
            }
        }
    }

    #[test]
    fn tree_survives_fragmentation_that_overflows_the_linear_chain() {
        // 501 disjoint singletons: the linear chain needs jumps far over
        // 255 instructions and must fail classified; the tree is immune
        // and stays exact.
        let allow: Vec<u32> = (0..=1000).filter(|n| n % 2 == 0).collect();
        match BpfProgram::try_allow_list(&allow) {
            Err(FilterTooLarge::JumpSpan { span }) => assert!(span > 255),
            other => panic!("expected JumpSpan, got {other:?}"),
        }
        let p = BpfProgram::try_allow_tree(&allow).expect("tree is immune");
        for nr in 0..=1100u32 {
            assert_eq!(
                allowed(&p, nr),
                nr <= 1000 && nr % 2 == 0,
                "mismatch at {nr}"
            );
        }
        // The big tree exercises the far-hop path: at 501 ranges the left
        // subtree at the root is over 255 instructions, so `ja` must
        // appear.
        assert!(p.disassemble().contains("ja +"), "far hops must use BPF_JA");
    }

    #[test]
    fn genuinely_oversized_programs_fail_classified_in_both_layouts() {
        // ~1400 disjoint singletons need > 4096 instructions as a tree.
        let allow: Vec<u32> = (0..2800).filter(|n| n % 2 == 0).collect();
        match BpfProgram::try_allow_tree(&allow) {
            Err(FilterTooLarge::ProgramLength { len }) => {
                assert!(len > BPF_MAXINSNS)
            }
            other => panic!("expected ProgramLength, got {other:?}"),
        }
        // The linear chain fails too (its jump spans overflow first).
        assert!(BpfProgram::try_allow_list(&allow).is_err());
    }

    #[test]
    fn tree_eval_depth_is_logarithmic() {
        // Fragmented allow-lists of growing size: executed depth must stay
        // within 2·⌈log₂ ranges⌉ + 8 while the linear chain's grows
        // linearly.
        for singles in [1usize, 7, 64, 200, 501] {
            let allow: Vec<u32> =
                (0..singles as u32 * 2).filter(|n| n % 2 == 0).collect();
            let tree = BpfProgram::try_allow_tree(&allow).expect("tree");
            let ranges = singles as u32;
            let bound = 2 * (32 - (ranges - 1).leading_zeros()) + 8;
            let profile =
                depth_profile(&tree, allow.last().copied().unwrap_or(0) + 64)
                    .expect("well-formed");
            assert!(
                profile.max <= bound,
                "{singles} ranges: depth {} over bound {bound}",
                profile.max
            );
        }
    }

    #[test]
    fn traced_run_agrees_with_plain_run() {
        let allow: Vec<u32> = vec![0, 1, 2, 9, 14, 59, 60, 231];
        for p in both(&allow) {
            for nr in 0..300 {
                let data = SeccompData { nr, arch: AUDIT_ARCH_X86_64 };
                let plain = run_filter(&p, data);
                let traced = run_filter_traced(&p, data);
                assert_eq!(plain, traced.map(|(v, _)| v));
                let steps = traced.expect("well-formed").1;
                assert!(steps >= 1 && steps as usize <= p.len());
            }
        }
    }

    #[test]
    fn wire_format_is_8_bytes_per_insn() {
        let p = BpfProgram::allow_list(&[0, 1]);
        assert_eq!(p.to_bytes().len(), p.len() * 8);
        let first = p.insns[0].to_bytes();
        assert_eq!(u16::from_le_bytes([first[0], first[1]]), 0x20);
        assert_eq!(
            u32::from_le_bytes([first[4], first[5], first[6], first[7]]),
            4, // arch offset
        );
    }

    #[test]
    fn disassembly_mentions_every_ret() {
        for p in both(&[5]) {
            let text = p.disassemble();
            assert!(text.contains("ret ALLOW"));
            assert!(text.contains("ret KILL"));
            assert!(text.contains("; arch"));
        }
    }

    #[test]
    fn full_footprint_filter_is_verified_end_to_end() {
        use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};
        let repo = SynthRepo::new(
            Scale { packages: 120, installations: 20_000 },
            CalibrationSpec::default(),
            3,
        );
        let data = crate::pipeline::StudyData::from_synth(&repo);
        let record = data.package("coreutils").unwrap();
        let allow: std::collections::HashSet<u32> =
            record.footprint.syscalls().collect();
        let p = seccomp_filter(&data, "coreutils").unwrap();
        let numbers: Vec<u32> = record.footprint.syscalls().collect();
        let linear = BpfProgram::try_allow_list(&numbers).unwrap();
        for nr in 0..=330u32 {
            assert_eq!(
                allowed(&p, nr),
                allow.contains(&nr),
                "filter and footprint disagree at {nr}"
            );
            assert_eq!(allowed(&linear, nr), allowed(&p, nr), "layouts at {nr}");
        }
        // Broad footprints must still produce compact filters: far fewer
        // leaves than allowed numbers.
        let ranges = coalesce(&numbers).len();
        assert!(ranges < allow.len() / 2, "ranges must coalesce: {ranges}");
        assert!(p.len() <= 5 * ranges + 4, "tree size bound: {}", p.len());
    }
}
