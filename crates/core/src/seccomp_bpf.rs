//! Classic-BPF seccomp filter generation (paper §6).
//!
//! The paper observes that a statically recovered footprint is exactly the
//! allow-list an application sandbox needs, and that seccomp-BPF policy
//! generation "can be easily automated using our framework". This module
//! does that end to end: it assembles a real classic-BPF program (the
//! format `seccomp(2)` loads) from a footprint, and ships a small BPF
//! interpreter so filters are *executable and testable* in-process.
//!
//! The generated program follows the canonical seccomp filter layout:
//!
//! ```text
//!   ld  [offsetof(seccomp_data, arch)]
//!   jne AUDIT_ARCH_X86_64 -> KILL
//!   ld  [offsetof(seccomp_data, nr)]
//!   jeq nr_0 -> ALLOW
//!   ...
//!   jeq nr_n -> ALLOW
//!   ret KILL
//! ```
//!
//! Dense runs of allowed numbers are emitted as range checks
//! (`jge lo` + `jgt hi`), which keeps filters for broad footprints short.

use crate::pipeline::StudyData;

/// `AUDIT_ARCH_X86_64`.
pub const AUDIT_ARCH_X86_64: u32 = 0xC000_003E;
/// `SECCOMP_RET_ALLOW`.
pub const RET_ALLOW: u32 = 0x7FFF_0000;
/// `SECCOMP_RET_KILL` (kill the thread).
pub const RET_KILL: u32 = 0x0000_0000;

/// Offset of `seccomp_data.nr`.
const OFF_NR: u32 = 0;
/// Offset of `seccomp_data.arch`.
const OFF_ARCH: u32 = 4;

// Classic BPF opcodes (the subset seccomp filters use).
const LD_W_ABS: u16 = 0x20; // BPF_LD | BPF_W | BPF_ABS
const JMP_JEQ_K: u16 = 0x15; // BPF_JMP | BPF_JEQ | BPF_K
const JMP_JGE_K: u16 = 0x35; // BPF_JMP | BPF_JGE | BPF_K
const JMP_JGT_K: u16 = 0x25; // BPF_JMP | BPF_JGT | BPF_K
const RET_K: u16 = 0x06; // BPF_RET | BPF_K

/// One classic-BPF instruction (`struct sock_filter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpfInsn {
    /// Opcode.
    pub code: u16,
    /// Jump-if-true offset.
    pub jt: u8,
    /// Jump-if-false offset.
    pub jf: u8,
    /// Operand.
    pub k: u32,
}

impl BpfInsn {
    fn new(code: u16, jt: u8, jf: u8, k: u32) -> Self {
        Self { code, jt, jf, k }
    }

    /// Serializes to the kernel's 8-byte `sock_filter` wire format
    /// (little-endian).
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..2].copy_from_slice(&self.code.to_le_bytes());
        out[2] = self.jt;
        out[3] = self.jf;
        out[4..8].copy_from_slice(&self.k.to_le_bytes());
        out
    }
}

/// A complete seccomp-BPF filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    /// The instructions, in order.
    pub insns: Vec<BpfInsn>,
}

impl BpfProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Serializes the whole program to the `sock_fprog` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.insns.iter().flat_map(|i| i.to_bytes()).collect()
    }

    /// [`BpfProgram::try_allow_list`] for trusted input: panics if the
    /// allow-list cannot be laid out (a jump span over 255 instructions).
    /// Footprints decoded from disk or the wire must go through
    /// `try_allow_list` instead, where the failure is a classified error.
    pub fn allow_list(numbers: &[u32]) -> Self {
        Self::try_allow_list(numbers)
            .expect("filter fits classic BPF offsets")
    }

    /// Builds an allow-list filter from sorted, deduplicated syscall
    /// numbers. Consecutive runs become range checks. Fails (instead of
    /// panicking) when a pathologically fragmented allow-list needs a
    /// jump longer than classic BPF's 8-bit offsets can express — the
    /// case a corrupt or hostile on-disk footprint could manufacture.
    pub fn try_allow_list(numbers: &[u32]) -> Result<Self, FilterTooLarge> {
        debug_assert!(
            numbers.windows(2).all(|w| w[0] < w[1]),
            "numbers must be sorted and unique"
        );
        // Coalesce into inclusive ranges.
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for &n in numbers {
            match ranges.last_mut() {
                Some((_, hi)) if *hi + 1 == n => *hi = n,
                _ => ranges.push((n, n)),
            }
        }

        let mut insns = Vec::new();
        // Architecture pinning.
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_ARCH));
        // jeq ARCH ? fall through : jump to the final KILL. The false
        // offset is patched after layout.
        let arch_check = insns.len();
        insns.push(BpfInsn::new(JMP_JEQ_K, 0, 0, AUDIT_ARCH_X86_64));
        insns.push(BpfInsn::new(LD_W_ABS, 0, 0, OFF_NR));

        // Range and singleton checks. Each block either jumps to ALLOW
        // (placed just before the final KILL) or falls through.
        #[derive(Clone, Copy)]
        enum Check {
            Single(u32),
            Range(u32, u32),
        }
        let checks: Vec<Check> = ranges
            .iter()
            .map(|&(lo, hi)| {
                if lo == hi {
                    Check::Single(lo)
                } else {
                    Check::Range(lo, hi)
                }
            })
            .collect();
        // Emit with placeholder jump targets, then patch: ALLOW sits at
        // index `allow_at`, KILL at `allow_at + 1`.
        let mut check_sites: Vec<(usize, bool)> = Vec::new(); // (idx, is_range_second)
        for c in &checks {
            match *c {
                Check::Single(n) => {
                    check_sites.push((insns.len(), false));
                    insns.push(BpfInsn::new(JMP_JEQ_K, 0, 0, n));
                }
                Check::Range(lo, hi) => {
                    // jge lo ? continue : skip past the pair.
                    insns.push(BpfInsn::new(JMP_JGE_K, 0, 1, lo));
                    // jgt hi ? fall through (not allowed) : ALLOW.
                    check_sites.push((insns.len(), true));
                    insns.push(BpfInsn::new(JMP_JGT_K, 0, 0, hi));
                }
            }
        }
        // KILL is the fall-through after the last check; ALLOW sits
        // behind it as the jump target of every successful check.
        let kill_at = insns.len();
        insns.push(BpfInsn::new(RET_K, 0, 0, RET_KILL));
        let allow_at = insns.len();
        insns.push(BpfInsn::new(RET_K, 0, 0, RET_ALLOW));

        // Patch jump offsets (relative to the *next* instruction).
        let rel = |from: usize, to: usize| -> Result<u8, FilterTooLarge> {
            let span = to - from - 1;
            u8::try_from(span).map_err(|_| FilterTooLarge { span })
        };
        for (idx, is_range_second) in check_sites {
            if is_range_second {
                // jgt hi: true → fall through to next check (offset 0 means
                // next insn; but next insn is the next check) — we want
                // true = NOT allowed → continue scanning, false = ALLOW.
                insns[idx].jt = 0;
                insns[idx].jf = rel(idx, allow_at)?;
            } else {
                insns[idx].jt = rel(idx, allow_at)?;
                insns[idx].jf = 0;
            }
        }
        insns[arch_check].jf = rel(arch_check, kill_at)?;
        Ok(Self { insns })
    }

    /// Renders a human-readable disassembly.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            let text = match insn.code {
                LD_W_ABS => format!(
                    "ld [{}]{}",
                    insn.k,
                    if insn.k == OFF_ARCH { "  ; arch" } else { "  ; nr" }
                ),
                JMP_JEQ_K => format!(
                    "jeq #{:#x}, +{}, +{}",
                    insn.k, insn.jt, insn.jf
                ),
                JMP_JGE_K => format!("jge #{}, +{}, +{}", insn.k, insn.jt, insn.jf),
                JMP_JGT_K => format!("jgt #{}, +{}, +{}", insn.k, insn.jt, insn.jf),
                RET_K => {
                    if insn.k == RET_ALLOW {
                        "ret ALLOW".to_owned()
                    } else {
                        "ret KILL".to_owned()
                    }
                }
                other => format!("op {other:#x}"),
            };
            let _ = writeln!(out, "{i:4}: {text}");
        }
        out
    }
}

/// The `seccomp_data` view the filter evaluates.
#[derive(Debug, Clone, Copy)]
pub struct SeccompData {
    /// System call number.
    pub nr: u32,
    /// Audit architecture.
    pub arch: u32,
}

/// Executes a classic-BPF seccomp filter over one syscall event.
///
/// Returns the filter's return value (`RET_ALLOW` / `RET_KILL`), or `None`
/// when the program is malformed (falls off the end, bad offset — which
/// the kernel verifier would reject).
pub fn run_filter(program: &BpfProgram, data: SeccompData) -> Option<u32> {
    let mut acc: u32 = 0;
    let mut pc = 0usize;
    let mut steps = 0usize;
    while pc < program.insns.len() {
        steps += 1;
        if steps > 4096 {
            return None; // Classic BPF cannot loop, but guard anyway.
        }
        let insn = program.insns[pc];
        match insn.code {
            LD_W_ABS => {
                acc = match insn.k {
                    OFF_NR => data.nr,
                    OFF_ARCH => data.arch,
                    _ => return None,
                };
                pc += 1;
            }
            JMP_JEQ_K => {
                let taken = acc == insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            JMP_JGE_K => {
                let taken = acc >= insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            JMP_JGT_K => {
                let taken = acc > insn.k;
                pc += 1 + usize::from(if taken { insn.jt } else { insn.jf });
            }
            RET_K => return Some(insn.k),
            _ => return None,
        }
    }
    None
}

/// The allow-list needs a jump classic BPF's 8-bit offsets cannot
/// express: a filter over ~255 instructions between a check and its
/// ALLOW target. Ordinary footprints coalesce into far fewer checks;
/// this arises from pathologically fragmented (corrupt or hostile)
/// footprints, which must fail classified rather than panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterTooLarge {
    /// The overflowing jump span, in instructions.
    pub span: usize,
}

impl std::fmt::Display for FilterTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allow-list needs a {}-instruction jump; classic BPF offsets \
             are 8-bit",
            self.span
        )
    }
}

impl std::error::Error for FilterTooLarge {}

/// Why [`seccomp_filter`] could not produce a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeccompError {
    /// No package of that name in the dataset.
    UnknownPackage,
    /// The footprint's allow-list cannot be laid out as classic BPF.
    TooLarge(FilterTooLarge),
}

impl std::fmt::Display for SeccompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeccompError::UnknownPackage => write!(f, "unknown package"),
            SeccompError::TooLarge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SeccompError {}

/// Builds the seccomp-BPF filter for a package's measured footprint.
/// Total over its inputs: an unknown package or an unlayoutable
/// footprint (possible with a corrupt on-disk store) is a classified
/// error, never a panic.
pub fn seccomp_filter(
    data: &StudyData,
    package: &str,
) -> Result<BpfProgram, SeccompError> {
    let record = data.package(package).ok_or(SeccompError::UnknownPackage)?;
    let numbers: Vec<u32> = record.footprint.syscalls().collect();
    BpfProgram::try_allow_list(&numbers).map_err(SeccompError::TooLarge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allowed(program: &BpfProgram, nr: u32) -> bool {
        run_filter(program, SeccompData { nr, arch: AUDIT_ARCH_X86_64 })
            == Some(RET_ALLOW)
    }

    #[test]
    fn empty_allow_list_kills_everything() {
        let p = BpfProgram::allow_list(&[]);
        for nr in [0, 1, 59, 322] {
            assert!(!allowed(&p, nr));
        }
    }

    #[test]
    fn singletons_allow_exactly_their_numbers() {
        let p = BpfProgram::allow_list(&[0, 3, 60]);
        assert!(allowed(&p, 0));
        assert!(allowed(&p, 3));
        assert!(allowed(&p, 60));
        for nr in [1, 2, 4, 59, 61, 322] {
            assert!(!allowed(&p, nr), "{nr} must be killed");
        }
    }

    #[test]
    fn ranges_are_coalesced_and_exact() {
        // 0..=4 and 10..=12 plus singleton 20.
        let p = BpfProgram::allow_list(&[0, 1, 2, 3, 4, 10, 11, 12, 20]);
        for nr in 0..=4 {
            assert!(allowed(&p, nr));
        }
        for nr in 10..=12 {
            assert!(allowed(&p, nr));
        }
        assert!(allowed(&p, 20));
        for nr in [5, 9, 13, 19, 21] {
            assert!(!allowed(&p, nr), "{nr} must be killed");
        }
        // Three checks (two ranges + one singleton) rather than nine.
        assert!(p.len() < 9 + 4, "coalescing must shrink the filter: {}", p.len());
    }

    #[test]
    fn wrong_architecture_is_killed() {
        let p = BpfProgram::allow_list(&[0, 1, 2]);
        let r = run_filter(&p, SeccompData { nr: 0, arch: 0x4000_0003 });
        assert_eq!(r, Some(RET_KILL));
    }

    #[test]
    fn exhaustive_check_against_reference() {
        // Compare the filter against the allow-set for every number the
        // study can see.
        let allow: Vec<u32> = vec![0, 1, 2, 3, 9, 10, 11, 12, 13, 14, 21,
                                   59, 60, 231, 257, 322];
        let p = BpfProgram::allow_list(&allow);
        let set: std::collections::HashSet<u32> =
            allow.iter().copied().collect();
        for nr in 0..400 {
            assert_eq!(
                allowed(&p, nr),
                set.contains(&nr),
                "mismatch at {nr}"
            );
        }
    }

    #[test]
    fn wire_format_is_8_bytes_per_insn() {
        let p = BpfProgram::allow_list(&[0, 1]);
        assert_eq!(p.to_bytes().len(), p.len() * 8);
        let first = p.insns[0].to_bytes();
        assert_eq!(u16::from_le_bytes([first[0], first[1]]), 0x20);
        assert_eq!(
            u32::from_le_bytes([first[4], first[5], first[6], first[7]]),
            4, // arch offset
        );
    }

    #[test]
    fn disassembly_mentions_every_ret() {
        let p = BpfProgram::allow_list(&[5]);
        let text = p.disassemble();
        assert!(text.contains("ret ALLOW"));
        assert!(text.contains("ret KILL"));
        assert!(text.contains("; arch"));
    }

    #[test]
    fn full_footprint_filter_is_verified_end_to_end() {
        use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};
        let repo = SynthRepo::new(
            Scale { packages: 120, installations: 20_000 },
            CalibrationSpec::default(),
            3,
        );
        let data = crate::pipeline::StudyData::from_synth(&repo);
        let record = data.package("coreutils").unwrap();
        let allow: std::collections::HashSet<u32> =
            record.footprint.syscalls().collect();
        let p = seccomp_filter(&data, "coreutils").unwrap();
        for nr in 0..=330u32 {
            assert_eq!(
                allowed(&p, nr),
                allow.contains(&nr),
                "filter and footprint disagree at {nr}"
            );
        }
        // Broad footprints must still produce compact filters.
        assert!(p.len() < allow.len() + 8, "ranges must coalesce");
    }
}
