//! The end-to-end measurement pipeline.
//!
//! Mirrors the paper's §7 framework at repository scale: every binary of
//! every package is parsed and statically analyzed; shared libraries are
//! registered with the cross-binary linker; executables are resolved to
//! closed footprints; packages aggregate their executables (plus the
//! dynamic linker for dynamically linked programs, and the interpreter
//! package's footprint for scripts, §2.3); the popularity survey attaches
//! installation counts.
//!
//! Both corpus-wide phases run in parallel: per-package binary analysis,
//! and — once the linker is sealed and read-only — per-package footprint
//! resolution. Workers pull indices from a shared cursor and send results
//! through a channel keyed by package index, so no locks are held while
//! analyzing.
//!
//! The result, [`StudyData`], is the in-memory replacement for the paper's
//! 428-million-row Postgres database.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use apistudy_analysis::{AnalysisOptions, BinaryAnalysis, Linker};
use apistudy_catalog::Catalog;
use apistudy_corpus::{
    FaultPlan, Interpreter, MixCensus, Package, PackageFile, SynthRepo,
};
use apistudy_elf::{BinaryClass, ElfError, ElfFile, ErrorKind};

use crate::cache::{fold_hash, AnalysisCache, CacheKey};
use crate::diagnostics::{RunDiagnostics, SkipStage, SkippedBinary};
use crate::footprint::ApiFootprint;

/// Everything the study knows about one package.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageRecord {
    /// Package name.
    pub name: String,
    /// Installation probability (from popcon).
    pub prob: f64,
    /// Raw popcon installation count.
    pub install_count: u64,
    /// Dependencies (package names).
    pub depends: Vec<String>,
    /// The package's catalog-resolved API footprint.
    pub footprint: ApiFootprint,
    /// Interpreter-providing packages for the package's scripts.
    pub script_interpreters: Vec<String>,
    /// Numbers of shipped executables / libraries / scripts.
    pub file_counts: (usize, usize, usize),
    /// Unresolved syscall sites observed while analyzing this package.
    pub unresolved_syscall_sites: u32,
    /// Binaries of this package the pipeline could not analyze.
    pub skipped_binaries: u32,
    /// True when the footprint is known to under-count: a shipped binary
    /// was skipped or quarantined, a library this package's executables
    /// (transitively) link against was, or an interpreter package it
    /// inherits from is itself partial.
    pub partial_footprint: bool,
}

/// Which binaries contain *direct* call sites for each system call — the
/// paper's library-attribution signal (Tables 1, 2, 5).
///
/// Binary file names are interned as `Arc<str>`: a library that uses 100
/// syscalls appears in 100 users-sets but its name is allocated once.
///
/// The per-syscall user index is built once, at `assemble` time: names
/// are appended as binaries stream by, then [`Attribution::finalize`]
/// sorts and dedups each list in a single pass. Queries iterate a sorted
/// slice — no per-query set walk, no tree overhead, and the iteration
/// order matches the `BTreeSet` the index replaced (lexicographic, since
/// `Arc<str>` orders by content).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attribution {
    /// Syscall number → binary file names with direct call sites,
    /// sorted and deduplicated by [`Attribution::finalize`].
    pub direct_users: HashMap<u32, Vec<Arc<str>>>,
    /// Binary file name → owning package.
    pub binary_package: HashMap<Arc<str>, Arc<str>>,
}

impl Attribution {
    /// Records one binary as a direct user of a syscall (duplicates are
    /// fine until [`Attribution::finalize`] runs).
    pub(crate) fn record(&mut self, nr: u32, file: &Arc<str>) {
        self.direct_users.entry(nr).or_default().push(Arc::clone(file));
    }

    /// Sorts and dedups every user list; called exactly once after all
    /// binaries are registered.
    pub(crate) fn finalize(&mut self) {
        for users in self.direct_users.values_mut() {
            users.sort_unstable();
            users.dedup();
        }
    }

    /// Binaries with direct call sites for a syscall, in lexicographic
    /// order.
    pub fn users_of(&self, nr: u32) -> impl Iterator<Item = &str> {
        self.direct_users
            .get(&nr)
            .into_iter()
            .flatten()
            .map(|s| &**s)
    }
}

/// The aggregated study dataset.
pub struct StudyData {
    /// The API catalog measured against.
    pub catalog: Catalog,
    /// One record per package.
    pub packages: Vec<PackageRecord>,
    /// Package name → index.
    pub by_name: HashMap<String, usize>,
    /// Survey size.
    pub total_installations: u64,
    /// Figure 1 census.
    pub census: MixCensus,
    /// Direct-call-site attribution.
    pub attribution: Attribution,
    /// Total unresolved syscall sites across the corpus (paper: ~4% of
    /// sites).
    pub unresolved_syscall_sites: u64,
    /// Total syscall sites resolved (for the unresolved ratio).
    pub resolved_syscall_sites: u64,
    /// Robustness accounting: skips, contained panics, injected faults.
    pub diagnostics: RunDiagnostics,
}

/// Containment counters from one [`par_map_indexed`] run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ParStats {
    /// Work items whose first execution panicked.
    panics_contained: u64,
    /// Panicked items whose single retry then succeeded.
    retries_recovered: u64,
    /// Work items abandoned by the wall-clock watchdog.
    deadline_quarantined: u64,
}

/// Why a work item's result was substituted by the `recover` closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbortCause {
    /// `f(i)` panicked twice (deterministic panic).
    Panic,
    /// `f(i)` overran the per-item wall-clock deadline and the watchdog
    /// quarantined it.
    Deadline,
}

impl AbortCause {
    pub(crate) fn stage(self) -> SkipStage {
        match self {
            AbortCause::Panic => SkipStage::Panic,
            AbortCause::Deadline => SkipStage::Deadline,
        }
    }
}

/// Parses an `APISTUDY_ITEM_DEADLINE_MS`-style value: a positive integer
/// number of milliseconds enables the watchdog, anything else disables it.
fn parse_deadline_ms(v: Option<&str>) -> Option<std::time::Duration> {
    v.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis)
}

/// The per-item wall-clock deadline from `APISTUDY_ITEM_DEADLINE_MS`
/// (default: off — the watchdog's selections depend on machine speed, so
/// runs that must be bit-reproducible across hosts leave it unset).
pub(crate) fn item_deadline_from_env() -> Option<std::time::Duration> {
    parse_deadline_ms(
        std::env::var("APISTUDY_ITEM_DEADLINE_MS").ok().as_deref(),
    )
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The worker count for [`par_map_indexed`]: the `APISTUDY_THREADS`
/// environment variable when set to a positive integer (capped at 128),
/// otherwise the machine's available parallelism capped at 16; always
/// clamped to the number of work items.
fn worker_count(n: usize) -> usize {
    let from_env = std::env::var("APISTUDY_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .map(|t| t.min(128));
    from_env
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(16)
        })
        .min(n)
}

/// Per-item watchdog states (values other than these are the item's start
/// time as `epoch.elapsed()` nanoseconds plus one, so zero stays free for
/// IDLE and the two sentinels sit at the top of the range, far above any
/// plausible runtime).
const ITEM_IDLE: u64 = 0;
const ITEM_ABANDONED: u64 = u64::MAX - 1;
const ITEM_DONE: u64 = u64::MAX;

/// Runs `f(0..n)` across a scoped worker pool and returns the results in
/// index order. Workers pull the next index from an atomic cursor and send
/// `(index, value)` pairs down a channel — no lock is held around `f`.
///
/// Panic containment: a panicking `f(i)` is caught (the worker thread
/// survives) and retried once — deterministic panics fail again, and the
/// item's result is produced by `recover(i, AbortCause::Panic, message)`
/// instead, so one pathological work item degrades into one quarantined
/// result rather than aborting the corpus scan.
///
/// Wall-clock watchdog: with `deadline` set, a monitor thread scans the
/// in-flight items and *abandons* any that has been running longer than
/// the deadline — its result is produced by
/// `recover(i, AbortCause::Deadline, detail)` and the worker's eventual
/// value is discarded, so one adversarial input degrades into one
/// quarantined result instead of stalling the pipeline's progress. This
/// is a soft deadline: the abandoned `f(i)` is not preempted (impossible
/// without `unsafe`), it merely stops being waited for; `f` is expected
/// to terminate eventually (analysis work is budget-bounded), and the
/// scope still joins its thread at the end. Which items get abandoned
/// depends on machine speed, so the watchdog defaults to off.
pub(crate) fn par_map_indexed<T, F, R>(
    n: usize,
    deadline: Option<std::time::Duration>,
    f: F,
    recover: R,
) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Fn(usize, AbortCause, String) -> T + Sync,
{
    if n == 0 {
        return (Vec::new(), ParStats::default());
    }
    let workers = worker_count(n);
    let cursor = AtomicUsize::new(0);
    let panics = AtomicU64::new(0);
    let recovered = AtomicU64::new(0);
    let abandoned = AtomicU64::new(0);
    // Results delivered so far (by workers or the watchdog); the watchdog
    // exits once every index has one.
    let sent = AtomicUsize::new(0);
    let states: Vec<AtomicU64> =
        (0..n).map(|_| AtomicU64::new(ITEM_IDLE)).collect();
    let epoch = std::time::Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let panics = &panics;
            let recovered = &recovered;
            let sent = &sent;
            let states = &states;
            let f = &f;
            let recover = &recover;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                states[i].store(
                    epoch.elapsed().as_nanos() as u64 + 1,
                    Ordering::Release,
                );
                let value = match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => v,
                    Err(_) => {
                        panics.fetch_add(1, Ordering::Relaxed);
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => {
                                recovered.fetch_add(1, Ordering::Relaxed);
                                v
                            }
                            Err(payload) => recover(
                                i,
                                AbortCause::Panic,
                                panic_message(payload.as_ref()),
                            ),
                        }
                    }
                };
                // If the watchdog abandoned this item while it ran, its
                // substituted result is already in flight — discard ours.
                if states[i].swap(ITEM_DONE, Ordering::AcqRel)
                    == ITEM_ABANDONED
                {
                    continue;
                }
                if tx.send((i, value)).is_err() {
                    break;
                }
                sent.fetch_add(1, Ordering::Relaxed);
            });
        }
        if let Some(deadline) = deadline {
            let tx = tx.clone();
            let abandoned = &abandoned;
            let sent = &sent;
            let states = &states;
            let recover = &recover;
            let tick = (deadline / 4).max(std::time::Duration::from_millis(1));
            let limit = deadline.as_nanos() as u64;
            scope.spawn(move || {
                while sent.load(Ordering::Relaxed) < n {
                    std::thread::sleep(tick);
                    let now = epoch.elapsed().as_nanos() as u64;
                    for (i, state) in states.iter().enumerate() {
                        let s = state.load(Ordering::Acquire);
                        if s == ITEM_IDLE || s >= ITEM_ABANDONED {
                            continue;
                        }
                        if now.saturating_sub(s - 1) <= limit {
                            continue;
                        }
                        // Claim the overdue item; losing the race to the
                        // worker's DONE swap means it finished in time.
                        if state
                            .compare_exchange(
                                s,
                                ITEM_ABANDONED,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        abandoned.fetch_add(1, Ordering::Relaxed);
                        let detail = format!(
                            "exceeded the {}ms per-item wall-clock deadline",
                            deadline.as_millis()
                        );
                        let value = recover(i, AbortCause::Deadline, detail);
                        if tx.send((i, value)).is_err() {
                            return;
                        }
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        slots[i] = Some(v);
    }
    // Internal invariant, not input-reachable: the retry/quarantine path
    // above sends a fallback value for every index before a worker exits,
    // so each slot is filled exactly once by the time tx closes.
    let out = slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect();
    (
        out,
        ParStats {
            panics_contained: panics.load(Ordering::Relaxed),
            retries_recovered: recovered.load(Ordering::Relaxed),
            deadline_quarantined: abandoned.load(Ordering::Relaxed),
        },
    )
}

pub(crate) struct PkgIntermediate {
    /// Index into the repository plan (kept for deterministic ordering).
    #[allow(dead_code)]
    index: usize,
    package: Package,
    /// `(file name, content hash, analysis)` per shipped library. The
    /// hash is 0 when no cache is attached (it is only consumed by the
    /// footprint-cache key derivation, which is skipped in that case).
    libs: Vec<(String, u64, Arc<BinaryAnalysis>)>,
    /// `(content hash, analysis)` per shipped executable.
    execs: Vec<(u64, Arc<BinaryAnalysis>)>,
    /// `libs.len()` before the analyses are moved into the linker.
    lib_count: usize,
    /// Whether this package ships the dynamic linker.
    ships_ldso: bool,
    unresolved: u32,
    resolved: u64,
    /// Binaries this package shipped that could not be analyzed.
    skipped: Vec<SkippedBinary>,
    /// Faults injected into this package (ground truth, faulted runs only).
    injected: Vec<apistudy_corpus::FaultRecord>,
    /// Binary-level panics caught during this package's analysis.
    panics_contained: u64,
    /// Caught panics whose retry succeeded.
    retries_recovered: u64,
    /// Binaries of this package served straight from the analysis cache.
    cache_hits: u64,
    /// Binaries looked up in the cache but analyzed fresh.
    cache_misses: u64,
    /// True when the whole package was abandoned (package-level double
    /// panic): no binary was analyzed, the record is a placeholder.
    quarantined: bool,
}

impl PkgIntermediate {
    /// A placeholder for a package whose analysis was abandoned — a
    /// double panic or a watchdog deadline, `stage` says which: name and
    /// dependencies come from the plan, the footprint stays empty, and
    /// every planned binary is recorded as skipped. Library skips are
    /// keyed by soname so dependent packages' footprints get flagged as
    /// partial through the linker taint pass.
    pub(crate) fn quarantined(
        index: usize,
        repo: &SynthRepo,
        detail: String,
        stage: SkipStage,
    ) -> Self {
        let p = &repo.plan.packages[index];
        let mut skipped: Vec<SkippedBinary> = p
            .libs
            .iter()
            .map(|l| l.soname.clone())
            .chain(p.execs.iter().map(|e| e.file.clone()))
            .map(|file| SkippedBinary {
                package: p.name.clone(),
                file,
                stage,
                kind: None,
                detail: detail.clone(),
            })
            .collect();
        if skipped.is_empty() {
            skipped.push(SkippedBinary {
                package: p.name.clone(),
                file: "<package>".to_owned(),
                stage,
                kind: None,
                detail,
            });
        }
        Self {
            index,
            package: Package {
                name: p.name.clone(),
                depends: p.depends.clone(),
                files: Vec::new(),
            },
            libs: Vec::new(),
            execs: Vec::new(),
            lib_count: 0,
            ships_ldso: false,
            unresolved: 0,
            resolved: 0,
            skipped,
            injected: Vec::new(),
            panics_contained: 0,
            retries_recovered: 0,
            cache_hits: 0,
            cache_misses: 0,
            quarantined: true,
        }
    }
}

/// Why one binary was dropped: pipeline stage, taxonomy kind (absent for
/// panics), and the human-readable detail.
type SkipReason = (SkipStage, Option<ErrorKind>, String);

/// Parses and analyzes one ELF image, containing panics: a panicking
/// attempt is retried once, and a second panic becomes a classified
/// [`SkipStage::Panic`] skip. Returns the analysis plus the number of
/// panics caught (0, 1 with a successful retry, or 2).
pub(crate) fn analyze_binary(
    bytes: &[u8],
    options: AnalysisOptions,
) -> (Result<BinaryAnalysis, SkipReason>, u64) {
    let attempt = || -> Result<BinaryAnalysis, SkipReason> {
        let elf = ElfFile::parse(bytes)
            .map_err(|e: ElfError| (SkipStage::Parse, Some(e.kind()), e.to_string()))?;
        BinaryAnalysis::analyze_with(&elf, options)
            .map_err(|e| (SkipStage::Analyze, Some(e.kind()), e.to_string()))
    };
    match catch_unwind(AssertUnwindSafe(attempt)) {
        Ok(r) => (r, 0),
        Err(_) => match catch_unwind(AssertUnwindSafe(attempt)) {
            Ok(r) => (r, 1),
            Err(payload) => (
                Err((SkipStage::Panic, None, panic_message(payload.as_ref()))),
                2,
            ),
        },
    }
}

/// Analyzes every ELF of one package, consulting the incremental cache
/// when one is attached (`cache` carries the shared [`AnalysisCache`] and
/// the pre-computed [`AnalysisOptions::fingerprint`] so workers don't
/// re-derive it per binary). Cache policy: only clean, panic-free
/// successes are stored — an error (including a `ResourceLimit` skip)
/// must be re-derived each run so the skip ledger stays exact, and a
/// result recovered by a panic retry may be transient, so a retryable
/// panic stays retryable.
pub(crate) fn analyze_package(
    index: usize,
    package: Package,
    options: AnalysisOptions,
    cache: Option<(&AnalysisCache, u64)>,
) -> PkgIntermediate {
    let mut libs = Vec::new();
    let mut execs = Vec::new();
    let mut unresolved = 0u32;
    let mut resolved = 0u64;
    let mut skipped = Vec::new();
    let mut panics_contained = 0u64;
    let mut retries_recovered = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for file in &package.files {
        let PackageFile::Elf { name, bytes } = file else { continue };
        let key = cache
            .map(|(_, opts_fp)| CacheKey::for_bytes(bytes, opts_fp));
        let hash = key.map_or(0, |k| k.content);
        if let (Some((cache, _)), Some(key)) = (cache, key) {
            if let Some(ba) = cache.get(key) {
                cache_hits += 1;
                for f in &ba.funcs {
                    unresolved += f.facts.unresolved_syscall_sites;
                    resolved += f.facts.syscalls.len() as u64;
                }
                match ba.class {
                    BinaryClass::SharedLib => {
                        libs.push((name.clone(), hash, ba))
                    }
                    _ => execs.push((hash, ba)),
                }
                continue;
            }
            cache_misses += 1;
        }
        let (result, panics) = analyze_binary(bytes, options);
        panics_contained += panics.min(1);
        if panics == 1 {
            retries_recovered += 1;
        }
        let ba = match result {
            Ok(ba) => Arc::new(ba),
            Err((stage, kind, detail)) => {
                skipped.push(SkippedBinary {
                    package: package.name.clone(),
                    file: name.clone(),
                    stage,
                    kind,
                    detail,
                });
                continue;
            }
        };
        if panics == 0 {
            if let (Some((cache, _)), Some(key)) = (cache, key) {
                cache.insert(key, Arc::clone(&ba));
            }
        }
        for f in &ba.funcs {
            unresolved += f.facts.unresolved_syscall_sites;
            resolved += f.facts.syscalls.len() as u64;
        }
        match ba.class {
            BinaryClass::SharedLib => libs.push((name.clone(), hash, ba)),
            _ => execs.push((hash, ba)),
        }
    }
    let lib_count = libs.len();
    let ships_ldso = libs
        .iter()
        .any(|(name, _, _)| name == apistudy_corpus::libc_gen::LDSO_SONAME);
    PkgIntermediate {
        index,
        package,
        libs,
        execs,
        lib_count,
        ships_ldso,
        unresolved,
        resolved,
        skipped,
        injected: Vec::new(),
        panics_contained,
        retries_recovered,
        cache_hits,
        cache_misses,
        quarantined: false,
    }
}

/// ORs `packages[src]`'s APIs into `packages[dst]`'s, reporting growth.
pub(crate) fn inherit_apis(
    packages: &mut [PackageRecord],
    dst: usize,
    src: usize,
) -> bool {
    if dst == src {
        return false;
    }
    let (dst_rec, src_rec) = if dst < src {
        let (lo, hi) = packages.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = packages.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    };
    dst_rec.footprint.merge_apis(&src_rec.footprint)
}

/// Propagates `src`'s partial-footprint flag to `dst`: a package that
/// inherits an interpreter's footprint inherits its incompleteness too.
pub(crate) fn inherit_partial(
    packages: &mut [PackageRecord],
    dst: usize,
    src: usize,
) -> bool {
    if dst == src || packages[dst].partial_footprint || !packages[src].partial_footprint
    {
        return false;
    }
    packages[dst].partial_footprint = true;
    true
}

impl StudyData {
    /// Runs the full pipeline over a synthetic repository with the
    /// paper's default analysis choices.
    pub fn from_synth(repo: &SynthRepo) -> Self {
        Self::from_synth_with(repo, AnalysisOptions::default())
    }

    /// Runs the full pipeline with explicit [`AnalysisOptions`] — the
    /// corpus-wide ablation entry point: every metric downstream reflects
    /// the chosen analyzer behaviour.
    pub fn from_synth_with(repo: &SynthRepo, options: AnalysisOptions) -> Self {
        Self::from_synth_cached(repo, options, None)
    }

    /// [`Self::from_synth_with`] consulting a shared incremental
    /// [`AnalysisCache`]: binaries whose `(content hash, options
    /// fingerprint)` key is already resident skip parsing and analysis
    /// entirely. The result is bit-identical to an un-cached run — the
    /// cache stores only clean, panic-free successes of a deterministic
    /// analysis — and the traffic lands in the diagnostics' cache
    /// counters.
    pub fn from_synth_cached(
        repo: &SynthRepo,
        options: AnalysisOptions,
        cache: Option<&AnalysisCache>,
    ) -> Self {
        Self::run_cached(repo, options, cache, |i| (repo.package(i), Vec::new()))
    }

    /// [`Self::from_synth_cached`] over a pre-materialized corpus:
    /// workers clone `packages[i]` instead of regenerating it. Package
    /// synthesis costs more than an order of magnitude over a memcpy of
    /// the same bytes, so anything that runs the pipeline repeatedly over
    /// one repository (the corruption sweep above all) should materialize
    /// once with [`SynthRepo::materialize_all`] and pay the corpus's byte
    /// size in memory for the duration.
    pub fn from_packages_cached(
        repo: &SynthRepo,
        packages: &[Package],
        options: AnalysisOptions,
        cache: Option<&AnalysisCache>,
    ) -> Self {
        assert_eq!(packages.len(), repo.package_count());
        Self::run_cached(repo, options, cache, |i| {
            (packages[i].clone(), Vec::new())
        })
    }

    /// Runs the full pipeline over a *corrupted* copy of the repository:
    /// each package is materialized, the [`FaultPlan`] mutates the ELF
    /// files it selects, and the pipeline analyzes the result. The
    /// injection ledger lands in [`RunDiagnostics::injected`] so tests and
    /// the degradation report can verify quarantining against ground
    /// truth. With a rate of zero this is exactly [`Self::from_synth_with`].
    pub fn from_synth_faulted(
        repo: &SynthRepo,
        options: AnalysisOptions,
        plan: &FaultPlan,
    ) -> Self {
        Self::from_synth_faulted_cached(repo, options, plan, None)
    }

    /// [`Self::from_synth_faulted`] consulting a shared incremental
    /// [`AnalysisCache`] — the sweep's workhorse. Corruption is applied
    /// first and the *mutated* bytes are hashed, so an untouched binary
    /// hits the clean baseline's entry while a corrupted one looks up its
    /// own corrupted identity (nested fault plans corrupt a selected file
    /// identically at every rate that selects it, so survivable
    /// corruptions hit across sweep points too). Skips, quarantines, and
    /// panic-retried results are never cached.
    pub fn from_synth_faulted_cached(
        repo: &SynthRepo,
        options: AnalysisOptions,
        plan: &FaultPlan,
        cache: Option<&AnalysisCache>,
    ) -> Self {
        Self::run_cached(repo, options, cache, |i| {
            let mut package = repo.package(i);
            let injected = plan.corrupt_package(i, &mut package);
            (package, injected)
        })
    }

    /// [`Self::from_synth_faulted_cached`] over a pre-materialized
    /// corpus: each worker clones its (pristine) package and corrupts the
    /// clone, so the shared materialization stays clean across sweep
    /// points.
    pub fn from_packages_faulted_cached(
        repo: &SynthRepo,
        packages: &[Package],
        options: AnalysisOptions,
        plan: &FaultPlan,
        cache: Option<&AnalysisCache>,
    ) -> Self {
        assert_eq!(packages.len(), repo.package_count());
        Self::run_cached(repo, options, cache, |i| {
            let mut package = packages[i].clone();
            let injected = plan.corrupt_package(i, &mut package);
            (package, injected)
        })
    }

    /// The shared driver: produces each package (lazily generated or
    /// cloned from a materialization, clean or fault-mutated), analyzes
    /// the corpus in parallel, assembles, and stamps the run's cache
    /// accounting into the diagnostics.
    fn run_cached(
        repo: &SynthRepo,
        options: AnalysisOptions,
        cache: Option<&AnalysisCache>,
        produce: impl Fn(usize) -> (Package, Vec<apistudy_corpus::FaultRecord>)
            + Sync,
    ) -> Self {
        let with_fp = cache.map(|c| (c, options.fingerprint()));
        let evictions_before = cache.map_or(0, |c| c.stats().evictions);
        let deadline = item_deadline_from_env();
        let (inters, stats) = par_map_indexed(
            repo.package_count(),
            deadline,
            |i| {
                let (package, injected) = produce(i);
                let mut inter = analyze_package(i, package, options, with_fp);
                inter.injected = injected;
                inter
            },
            |i, cause, detail| {
                PkgIntermediate::quarantined(i, repo, detail, cause.stage())
            },
        );
        let mut data = Self::assemble(repo, inters, stats, with_fp, deadline);
        if let Some(cache) = cache {
            data.diagnostics.cache_mode = cache.mode();
            data.diagnostics.cache_evictions =
                cache.stats().evictions - evictions_before;
        }
        data
    }

    fn assemble(
        repo: &SynthRepo,
        inters: Vec<PkgIntermediate>,
        par_stats: ParStats,
        cache: Option<(&AnalysisCache, u64)>,
        deadline: Option<std::time::Duration>,
    ) -> Self {
        // The in-memory path is the streaming path run over one shard
        // covering the whole corpus: the same per-shard stage, the same
        // fold. Bit-identity between the two paths is by construction —
        // the shard boundaries are the only variable.
        let partial = Self::shard_assemble(
            repo, inters, par_stats, cache, deadline, None, 0, 0,
        );
        crate::stream::fold_partials(
            repo.plan.popcon.total_installations,
            vec![partial],
        )
    }

    /// The per-shard stage of the pipeline: registers one shard's
    /// libraries into a shard-local linker (seeded with the shared
    /// system-library base for shards past the first), seals it, runs
    /// taint propagation and parallel per-package footprint resolution,
    /// and returns the mergeable [`crate::stream::ShardPartial`].
    ///
    /// Shard-locality is sound because symbol resolution only ever
    /// searches an object's own `DT_NEEDED` closure, and every closure in
    /// the synthetic corpus is {system libraries} ∪ {the package's own
    /// libraries} — all registered here. The shard-local linker therefore
    /// resolves bit-identically to a whole-corpus linker.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shard_assemble(
        repo: &SynthRepo,
        mut inters: Vec<PkgIntermediate>,
        par_stats: ParStats,
        cache: Option<(&AnalysisCache, u64)>,
        deadline: Option<std::time::Duration>,
        base: Option<&crate::stream::SystemBase>,
        shard: usize,
        start: usize,
    ) -> crate::stream::ShardPartial {
        let catalog = Catalog::linux_3_19();
        let census = MixCensus::scan(inters.iter().map(|i| &i.package));

        // Register every shared library, moving each analysis into the
        // linker (it is not needed twice); collect per-binary attribution
        // fragments as we go (the fold turns them into the global
        // [`Attribution`]). `lib_hashes[i]` is the content hash of the
        // library the linker registered as index `i` — the footprint-cache
        // key derivation folds these over each executable's DT_NEEDED
        // closure.
        let mut linker = Linker::new();
        let mut lib_hashes: Vec<u64> = Vec::new();
        let mut attributions: Vec<crate::stream::PackageAttribution> =
            Vec::with_capacity(inters.len());
        let mut unresolved_total = 0u64;
        let mut resolved_total = 0u64;
        let mut lib_names: Vec<Vec<String>> = Vec::with_capacity(inters.len());
        if let Some(base) = base {
            for (name, hash, ba) in &base.libs {
                let idx = linker.add_library(name, Arc::clone(ba));
                debug_assert_eq!(idx, lib_hashes.len());
                lib_hashes.push(*hash);
            }
        }
        for inter in &mut inters {
            unresolved_total += u64::from(inter.unresolved);
            resolved_total += inter.resolved;
            lib_names
                .push(inter.libs.iter().map(|(n, _, _)| n.clone()).collect());
            let mut attr = crate::stream::PackageAttribution {
                libs: Vec::with_capacity(inter.libs.len()),
                execs: Vec::with_capacity(inter.execs.len()),
            };
            for (name, hash, ba) in inter.libs.drain(..) {
                attr.libs.push((
                    name.clone(),
                    ba.direct_syscalls().into_iter().collect(),
                ));
                let idx = linker.add_library(&name, ba);
                debug_assert_eq!(idx, lib_hashes.len());
                lib_hashes.push(hash);
            }
            for (_, ba) in &inter.execs {
                attr.execs.push(ba.direct_syscalls().into_iter().collect());
            }
            attributions.push(attr);
        }
        linker.seal();

        // Fault isolation: every binary the pipeline skipped taints its
        // file name (for libraries the file name *is* the soname, by
        // corpus convention), as does every fatally-injected file. The
        // taint then spreads over the sealed linker's DT_NEEDED edges to a
        // fixed point, so a package whose executables link — directly or
        // transitively — against a missing library is flagged as carrying
        // a partial footprint rather than silently under-reporting.
        let mut tainted: HashSet<String> = HashSet::new();
        if let Some(base) = base {
            // System libraries that failed analysis taint every shard.
            tainted.extend(base.tainted.iter().cloned());
        }
        for inter in &inters {
            for s in &inter.skipped {
                tainted.insert(s.file.clone());
            }
            for rec in &inter.injected {
                if rec.fatal {
                    tainted.insert(rec.file.clone());
                }
            }
        }
        if !tainted.is_empty() {
            loop {
                let mut changed = false;
                for (name, ba) in linker.libraries_iter() {
                    if !tainted.contains(name)
                        && ba.needed.iter().any(|n| tainted.contains(n))
                    {
                        tainted.insert(name.to_owned());
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // Resolved footprints are a pure function of (binary, closure
        // libraries, options): when a cache is attached and enabled, key
        // them by folding the binary's content hash with its closure
        // libraries' hashes in search order, and skip the cross-binary
        // resolution entirely on a hit. A sweep point re-resolves only
        // executables whose own bytes — or whose linked libraries —
        // actually mutated.
        let fp_cache = cache.filter(|(c, _)| c.enabled());
        // Whole-library keys get a fixed seed distinct from any exec's
        // avalanched content hash (the library's own hash is in its
        // closure fold, so identity is still captured).
        const WHOLE_LIB_SEED: u64 = u64::MAX;

        // The dynamic linker's own footprint belongs to the package that
        // ships it (libc6): applications do not import from ld.so, so its
        // calls (`access`, `arch_prctl`, ...) keep 100% weighted importance
        // through the always-installed libc package while their unweighted
        // importance stays a per-package property (paper Tables 5 and 8).
        let ldso_roots =
            [apistudy_corpus::libc_gen::LDSO_SONAME.to_owned()];
        let ldso_key = fp_cache.map(|(_, opts_fp)| {
            let mut acc = fold_hash(WHOLE_LIB_SEED, opts_fp);
            for &li in &linker.needed_closure(&ldso_roots) {
                acc = fold_hash(acc, lib_hashes[li]);
            }
            CacheKey { content: acc, options: opts_fp }
        });
        let cached_ldso = match (fp_cache, ldso_key) {
            (Some((c, _)), Some(key)) => c.get_footprint(key),
            _ => None,
        };
        let ldso_resolved = match cached_ldso {
            Some(fp) => (*fp).clone(),
            None => {
                let raw = linker
                    .resolve_whole_library(apistudy_corpus::libc_gen::LDSO_SONAME)
                    .unwrap_or_default();
                let resolved = ApiFootprint::resolve(&catalog, &raw);
                if let (Some((c, _)), Some(key)) = (fp_cache, ldso_key) {
                    c.insert_footprint(key, Arc::new(resolved.clone()));
                }
                resolved
            }
        };

        // Per-package closed footprints. The sealed linker is read-only,
        // so every package resolves independently in parallel.
        let (packages, resolve_stats): (Vec<PackageRecord>, ParStats) = {
            let (linker, catalog, ldso, inters, tainted, lib_names, lib_hashes) = (
                &linker,
                &catalog,
                &ldso_resolved,
                &inters,
                &tainted,
                &lib_names,
                &lib_hashes,
            );
            par_map_indexed(
                inters.len(),
                deadline,
                move |i| {
                    let inter = &inters[i];
                    let mut fp = ApiFootprint::default();
                    if inter.ships_ldso {
                        fp.merge(ldso);
                    }
                    for (h, ba) in &inter.execs {
                        let key = fp_cache.map(|(_, opts_fp)| {
                            let mut acc = fold_hash(*h, opts_fp);
                            for &li in &linker.needed_closure(&ba.needed) {
                                acc = fold_hash(acc, lib_hashes[li]);
                            }
                            CacheKey { content: acc, options: opts_fp }
                        });
                        if let (Some((c, _)), Some(key)) = (fp_cache, key) {
                            if let Some(hit) = c.get_footprint(key) {
                                fp.merge(&hit);
                                continue;
                            }
                        }
                        let raw = linker.resolve_executable(ba);
                        let resolved = ApiFootprint::resolve(catalog, &raw);
                        if let (Some((c, _)), Some(key)) = (fp_cache, key) {
                            c.insert_footprint(key, Arc::new(resolved.clone()));
                        }
                        fp.merge(&resolved);
                    }
                    let script_interpreters: Vec<String> = inter
                        .package
                        .files
                        .iter()
                        .filter_map(|f| match f {
                            PackageFile::Script { shebang, .. } => Some(
                                Interpreter::classify(shebang)
                                    .providing_package()
                                    .to_owned(),
                            ),
                            PackageFile::Elf { .. } => None,
                        })
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    let n_scripts = inter
                        .package
                        .files
                        .iter()
                        .filter(|f| matches!(f, PackageFile::Script { .. }))
                        .count();
                    // Partial when a shipped binary was skipped, or when
                    // anything this package links against is tainted.
                    let partial = inter.quarantined
                        || !inter.skipped.is_empty()
                        || inter.execs.iter().any(|(_, ba)| {
                            ba.needed.iter().any(|n| tainted.contains(n))
                        })
                        || lib_names[i].iter().any(|n| tainted.contains(n));
                    PackageRecord {
                        name: inter.package.name.clone(),
                        prob: repo.plan.popcon.probability(&inter.package.name),
                        install_count: repo
                            .plan
                            .popcon
                            .count(&inter.package.name),
                        depends: inter.package.depends.clone(),
                        footprint: fp,
                        script_interpreters,
                        file_counts: (
                            inter.execs.len(),
                            inter.lib_count,
                            n_scripts,
                        ),
                        unresolved_syscall_sites: inter.unresolved,
                        skipped_binaries: inter.skipped.len() as u32,
                        partial_footprint: partial,
                    }
                },
                // A package whose *resolution* panics twice or overruns
                // the watchdog deadline degrades into an empty, flagged
                // record instead of aborting (or stalling) the run.
                move |i, _cause, _detail| PackageRecord {
                    name: inters[i].package.name.clone(),
                    prob: repo.plan.popcon.probability(&inters[i].package.name),
                    install_count: repo
                        .plan
                        .popcon
                        .count(&inters[i].package.name),
                    depends: inters[i].package.depends.clone(),
                    footprint: ApiFootprint::default(),
                    script_interpreters: Vec::new(),
                    file_counts: (0, 0, 0),
                    unresolved_syscall_sites: 0,
                    skipped_binaries: inters[i].skipped.len() as u32,
                    partial_footprint: true,
                },
            )
        };
        // Interpreter inheritance is deliberately NOT applied here: a
        // script package's interpreter may live in another shard, so the
        // fixpoint runs once, globally, in the fold over compact
        // [`PackageRecord`]s (see [`crate::stream::fold_partials`]).
        let mut diagnostics = RunDiagnostics {
            panics_contained: par_stats.panics_contained
                + resolve_stats.panics_contained,
            retries_recovered: par_stats.retries_recovered
                + resolve_stats.retries_recovered,
            deadline_quarantined: par_stats.deadline_quarantined
                + resolve_stats.deadline_quarantined,
            ..RunDiagnostics::default()
        };
        for inter in &mut inters {
            diagnostics.analyzed_binaries +=
                (inter.lib_count + inter.execs.len()) as u64;
            diagnostics.panics_contained += inter.panics_contained;
            diagnostics.retries_recovered += inter.retries_recovered;
            diagnostics.quarantined_packages += u32::from(inter.quarantined);
            diagnostics.cache_hits += inter.cache_hits;
            diagnostics.cache_misses += inter.cache_misses;
            diagnostics.skipped.append(&mut inter.skipped);
            diagnostics.injected.append(&mut inter.injected);
        }

        crate::stream::ShardPartial {
            shard,
            start,
            records: packages,
            attributions,
            census,
            unresolved_sites: unresolved_total,
            resolved_sites: resolved_total,
            diagnostics,
            replayed: false,
        }
    }

    /// Rebuilds a measurable dataset from a published CSV export
    /// ([`crate::dataset::Dataset`]): downstream analyses can compute every
    /// metric without re-running the binary analysis. API names that no
    /// longer resolve against the catalog are counted in the footprint's
    /// `unresolved` field.
    pub fn from_dataset(ds: &crate::dataset::Dataset) -> Self {
        use apistudy_catalog::ApiKind;
        let catalog = Catalog::linux_3_19();
        let packages: Vec<PackageRecord> = ds
            .rows
            .iter()
            .map(|row| {
                let mut fp = ApiFootprint::default();
                for (kind, names) in &row.apis {
                    for name in names {
                        let api = match kind {
                            ApiKind::Syscall => catalog.syscall(name),
                            ApiKind::Ioctl => catalog.ioctl(name),
                            ApiKind::Fcntl => apistudy_catalog::FCNTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Fcntl(i as u32)),
                            ApiKind::Prctl => apistudy_catalog::PRCTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Prctl(i as u32)),
                            ApiKind::PseudoFile => catalog.pseudo_file(name),
                            ApiKind::LibcSymbol => catalog.libc_symbol(name),
                        };
                        match api {
                            Some(api) => {
                                fp.apis.insert(api);
                            }
                            None => fp.unresolved += 1,
                        }
                    }
                }
                PackageRecord {
                    name: row.name.clone(),
                    prob: row.probability,
                    install_count: row.install_count,
                    depends: row.depends.clone(),
                    footprint: fp,
                    script_interpreters: Vec::new(),
                    file_counts: (0, 0, 0),
                    unresolved_syscall_sites: 0,
                    skipped_binaries: 0,
                    partial_footprint: false,
                }
            })
            .collect();
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        Self {
            catalog,
            packages,
            by_name,
            total_installations: ds.installations,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 0,
            diagnostics: RunDiagnostics::default(),
        }
    }

    /// A package record by name.
    pub fn package(&self, name: &str) -> Option<&PackageRecord> {
        self.by_name.get(name).map(|&i| &self.packages[i])
    }

    /// Total installation mass (Σ probability), the denominator of
    /// weighted completeness.
    pub fn total_mass(&self) -> f64 {
        self.packages.iter().map(|p| p.prob).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_catalog::Api;
    use apistudy_corpus::{CalibrationSpec, Scale};

    fn tiny() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn pipeline_produces_a_record_per_package() {
        let data = tiny();
        assert_eq!(data.packages.len(), 150);
        assert!(data.package("libc6").is_some());
        assert!(data.package("coreutils").is_some());
    }

    #[test]
    fn every_dynamic_package_gets_the_startup_footprint() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let mut checked = 0;
        for p in &data.packages {
            if p.file_counts.0 == 0 || p.footprint.is_empty() {
                continue;
            }
            // Startup syscalls (exit_group) and ld.so's access must be
            // present in every dynamically linked package.
            if p.footprint.contains(Api::Syscall(nr("exit_group"))) {
                assert!(
                    p.footprint.contains(Api::Syscall(nr("mprotect"))),
                    "{} lacks mprotect",
                    p.name
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} packages checked");
    }

    #[test]
    fn attribution_places_access_in_ldso() {
        let data = tiny();
        let nr = data.catalog.syscalls.number_of("access").unwrap();
        let users: Vec<&str> = data.attribution.users_of(nr).collect();
        assert!(
            users.contains(&"ld-linux-x86-64.so.2"),
            "access direct users: {users:?}"
        );
    }

    #[test]
    fn unused_syscalls_have_no_package_users() {
        let data = tiny();
        for name in ["sysfs", "remap_file_pages", "mq_notify",
                     "lookup_dcookie", "restart_syscall", "move_pages",
                     "get_robust_list", "rt_tgsigqueueinfo", "tuxcall",
                     "create_module"] {
            let nr = data.catalog.syscalls.number_of(name).unwrap();
            let users = data
                .packages
                .iter()
                .filter(|p| p.footprint.contains(Api::Syscall(nr)))
                .count();
            assert_eq!(users, 0, "{name} should be unused");
        }
    }

    #[test]
    fn pin_packages_carry_their_syscalls() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let kexec = data.package("kexec-tools").expect("pin exists");
        assert!(kexec.footprint.contains(Api::Syscall(nr("kexec_load"))));
        let numa = data.package("libnuma").expect("pin exists");
        assert!(numa.footprint.contains(Api::Syscall(nr("mbind"))));
    }

    #[test]
    fn qemu_has_the_largest_syscall_footprint() {
        let data = tiny();
        let qemu = data.package("qemu").unwrap().footprint.syscalls().count();
        let max_other = data
            .packages
            .iter()
            .filter(|p| p.name != "qemu")
            .map(|p| p.footprint.syscalls().count())
            .max()
            .unwrap();
        assert!(qemu >= max_other, "qemu {qemu} vs max {max_other}");
        assert!(qemu >= 240, "qemu footprint is {qemu}");
    }

    #[test]
    fn corpus_wide_ablation_shrinks_footprints() {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        let full = StudyData::from_synth(&repo);
        let reduced = StudyData::from_synth_with(
            &repo,
            apistudy_analysis::AnalysisOptions {
                function_pointer_edges: false,
                ..Default::default()
            },
        );
        let count = |d: &StudyData| -> usize {
            d.packages.iter().map(|p| p.footprint.len()).sum()
        };
        assert!(
            count(&reduced) < count(&full),
            "disabling pointer edges must lose coverage corpus-wide: {} vs {}",
            count(&reduced),
            count(&full),
        );
    }

    #[test]
    fn unresolved_sites_are_rare() {
        let data = tiny();
        let total = data.unresolved_syscall_sites + data.resolved_syscall_sites;
        assert!(total > 0);
        let ratio = data.unresolved_syscall_sites as f64 / total as f64;
        assert!(ratio < 0.10, "unresolved ratio {ratio}");
    }

    #[test]
    fn par_map_preserves_index_order() {
        let never = |_: usize, _: AbortCause, _: String| {
            unreachable!("no panics expected")
        };
        let (out, stats) = par_map_indexed(1000, None, |i| i * 3, never);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        assert_eq!(stats.panics_contained, 0);
        assert_eq!(stats.retries_recovered, 0);
        assert_eq!(stats.deadline_quarantined, 0);
        let (empty, _) = par_map_indexed(0, None, |i| i, never);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_map_contains_deterministic_panics() {
        // Item 7 panics on every attempt: it must be recovered, not abort
        // the scope, and every other item must be unaffected.
        let (out, stats) = par_map_indexed(
            64,
            None,
            |i| {
                if i == 7 {
                    panic!("poison item");
                }
                i as i64
            },
            |i, cause, detail| {
                assert_eq!(cause, AbortCause::Panic);
                assert!(detail.contains("poison item"), "got: {detail}");
                -(i as i64)
            },
        );
        assert_eq!(out[7], -7);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| if i == 7 { v == -7 } else { v == i as i64 }));
        assert_eq!(stats.panics_contained, 1);
        assert_eq!(stats.retries_recovered, 0);
    }

    #[test]
    fn par_map_retry_recovers_transient_panics() {
        use std::sync::Mutex;
        // Item 3 panics only on its first attempt (a transient fault):
        // the retry must recover it without invoking the recover closure.
        let seen = Mutex::new(std::collections::HashSet::new());
        let (out, stats) = par_map_indexed(
            16,
            None,
            |i| {
                if i == 3 && seen.lock().unwrap().insert(3) {
                    panic!("transient");
                }
                i
            },
            |_, _, _| usize::MAX,
        );
        assert_eq!(out[3], 3);
        assert_eq!(stats.panics_contained, 1);
        assert_eq!(stats.retries_recovered, 1);
    }

    #[test]
    fn watchdog_quarantines_a_stalled_item() {
        use std::time::Duration;
        // Item 2 sleeps far past the deadline: the watchdog must
        // substitute its result while every fast item keeps its own, and
        // the slow worker's eventual value must be discarded, not
        // delivered over the substitution.
        let (out, stats) = par_map_indexed(
            8,
            Some(Duration::from_millis(25)),
            |i| {
                if i == 2 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                i as i64
            },
            |i, cause, detail| {
                assert_eq!(cause, AbortCause::Deadline);
                assert!(detail.contains("deadline"), "got: {detail}");
                -(i as i64)
            },
        );
        assert_eq!(out[2], -2, "stalled item must be quarantined");
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| if i == 2 { v == -2 } else { v == i as i64 }));
        assert_eq!(stats.deadline_quarantined, 1);
        assert_eq!(stats.panics_contained, 0);
    }

    #[test]
    fn watchdog_leaves_fast_items_alone() {
        use std::time::Duration;
        let (out, stats) = par_map_indexed(
            64,
            Some(Duration::from_secs(30)),
            |i| i,
            |_, _, _| usize::MAX,
        );
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        assert_eq!(stats.deadline_quarantined, 0);
    }

    #[test]
    fn deadline_parse_accepts_positive_millis_only() {
        use std::time::Duration;
        assert_eq!(
            parse_deadline_ms(Some("250")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            parse_deadline_ms(Some(" 42 ")),
            Some(Duration::from_millis(42))
        );
        for junk in [None, Some("0"), Some("-5"), Some("fast"), Some("")] {
            assert_eq!(parse_deadline_ms(junk), None, "junk {junk:?}");
        }
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) <= 128);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn threads_env_override_is_respected() {
        // Runs in-process, so keep every assertion valid under any value
        // other tests might observe concurrently (worker_count is pure
        // apart from this variable).
        std::env::set_var("APISTUDY_THREADS", "3");
        assert_eq!(worker_count(10), 3);
        assert_eq!(worker_count(2), 2, "still clamped to the item count");
        std::env::set_var("APISTUDY_THREADS", "999999");
        assert_eq!(worker_count(usize::MAX), 128, "hard cap");
        for junk in ["0", "-4", "banana", ""] {
            std::env::set_var("APISTUDY_THREADS", junk);
            let w = worker_count(10_000);
            assert!((1..=16).contains(&w), "junk {junk:?} must fall back");
        }
        std::env::remove_var("APISTUDY_THREADS");
    }
}
