//! The end-to-end measurement pipeline.
//!
//! Mirrors the paper's §7 framework at repository scale: every binary of
//! every package is parsed and statically analyzed; shared libraries are
//! registered with the cross-binary linker; executables are resolved to
//! closed footprints; packages aggregate their executables (plus the
//! dynamic linker for dynamically linked programs, and the interpreter
//! package's footprint for scripts, §2.3); the popularity survey attaches
//! installation counts.
//!
//! The result, [`StudyData`], is the in-memory replacement for the paper's
//! 428-million-row Postgres database.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use apistudy_analysis::{AnalysisOptions, BinaryAnalysis, Linker};
use apistudy_catalog::Catalog;
use apistudy_corpus::{
    Interpreter, MixCensus, Package, PackageFile, SynthRepo,
};
use apistudy_elf::{BinaryClass, ElfFile};
use parking_lot::Mutex;

use crate::footprint::ApiFootprint;

/// Everything the study knows about one package.
#[derive(Debug, Clone)]
pub struct PackageRecord {
    /// Package name.
    pub name: String,
    /// Installation probability (from popcon).
    pub prob: f64,
    /// Raw popcon installation count.
    pub install_count: u64,
    /// Dependencies (package names).
    pub depends: Vec<String>,
    /// The package's catalog-resolved API footprint.
    pub footprint: ApiFootprint,
    /// Interpreter-providing packages for the package's scripts.
    pub script_interpreters: Vec<String>,
    /// Numbers of shipped executables / libraries / scripts.
    pub file_counts: (usize, usize, usize),
    /// Unresolved syscall sites observed while analyzing this package.
    pub unresolved_syscall_sites: u32,
}

/// Which binaries contain *direct* call sites for each system call — the
/// paper's library-attribution signal (Tables 1, 2, 5).
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Syscall number → binary file names with direct call sites.
    pub direct_users: HashMap<u32, BTreeSet<String>>,
    /// Binary file name → owning package.
    pub binary_package: HashMap<String, String>,
}

impl Attribution {
    /// Binaries with direct call sites for a syscall.
    pub fn users_of(&self, nr: u32) -> impl Iterator<Item = &str> {
        self.direct_users
            .get(&nr)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }
}

/// The aggregated study dataset.
pub struct StudyData {
    /// The API catalog measured against.
    pub catalog: Catalog,
    /// One record per package.
    pub packages: Vec<PackageRecord>,
    /// Package name → index.
    pub by_name: HashMap<String, usize>,
    /// Survey size.
    pub total_installations: u64,
    /// Figure 1 census.
    pub census: MixCensus,
    /// Direct-call-site attribution.
    pub attribution: Attribution,
    /// Total unresolved syscall sites across the corpus (paper: ~4% of
    /// sites).
    pub unresolved_syscall_sites: u64,
    /// Total syscall sites resolved (for the unresolved ratio).
    pub resolved_syscall_sites: u64,
}

struct PkgIntermediate {
    /// Index into the repository plan (kept for deterministic ordering).
    #[allow(dead_code)]
    index: usize,
    package: Package,
    libs: Vec<(String, BinaryAnalysis)>,
    execs: Vec<BinaryAnalysis>,
    unresolved: u32,
    resolved: u64,
}

fn analyze_package(
    index: usize,
    package: Package,
    options: AnalysisOptions,
) -> PkgIntermediate {
    let mut libs = Vec::new();
    let mut execs = Vec::new();
    let mut unresolved = 0u32;
    let mut resolved = 0u64;
    for file in &package.files {
        let PackageFile::Elf { name, bytes } = file else { continue };
        let Ok(elf) = ElfFile::parse(bytes) else { continue };
        let Ok(ba) = BinaryAnalysis::analyze_with(&elf, options) else {
            continue;
        };
        for f in &ba.funcs {
            unresolved += f.facts.unresolved_syscall_sites;
            resolved += f.facts.syscalls.len() as u64;
        }
        match ba.class {
            BinaryClass::SharedLib => libs.push((name.clone(), ba)),
            _ => execs.push(ba),
        }
    }
    PkgIntermediate { index, package, libs, execs, unresolved, resolved }
}

impl StudyData {
    /// Runs the full pipeline over a synthetic repository with the
    /// paper's default analysis choices.
    pub fn from_synth(repo: &SynthRepo) -> Self {
        Self::from_synth_with(repo, AnalysisOptions::default())
    }

    /// Runs the full pipeline with explicit [`AnalysisOptions`] — the
    /// corpus-wide ablation entry point: every metric downstream reflects
    /// the chosen analyzer behaviour.
    pub fn from_synth_with(repo: &SynthRepo, options: AnalysisOptions) -> Self {
        let n = repo.package_count();
        let slots: Mutex<Vec<Option<PkgIntermediate>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(16);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let pkg = repo.package(i);
                    let inter = analyze_package(i, pkg, options);
                    slots.lock()[i] = Some(inter);
                });
            }
        })
        .expect("analysis workers");
        let inters: Vec<PkgIntermediate> = slots
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every package analyzed"))
            .collect();
        Self::assemble(repo, inters)
    }

    fn assemble(repo: &SynthRepo, inters: Vec<PkgIntermediate>) -> Self {
        let catalog = Catalog::linux_3_19();
        let census = MixCensus::scan(inters.iter().map(|i| &i.package));

        // Register every shared library; build attribution as we go.
        let mut linker = Linker::new();
        let mut attribution = Attribution::default();
        let mut unresolved_total = 0u64;
        let mut resolved_total = 0u64;
        for inter in &inters {
            unresolved_total += u64::from(inter.unresolved);
            resolved_total += inter.resolved;
            for (name, ba) in &inter.libs {
                for nr in ba.direct_syscalls() {
                    attribution
                        .direct_users
                        .entry(nr)
                        .or_default()
                        .insert(name.clone());
                }
                attribution
                    .binary_package
                    .insert(name.clone(), inter.package.name.clone());
                linker.add_library(name, ba.clone());
            }
            for (ei, ba) in inter.execs.iter().enumerate() {
                let file = format!("{}/exec{ei}", inter.package.name);
                for nr in ba.direct_syscalls() {
                    attribution
                        .direct_users
                        .entry(nr)
                        .or_default()
                        .insert(file.clone());
                }
                attribution
                    .binary_package
                    .insert(file, inter.package.name.clone());
            }
        }
        linker.seal();

        // The dynamic linker's own footprint belongs to the package that
        // ships it (libc6): applications do not import from ld.so, so its
        // calls (`access`, `arch_prctl`, ...) keep 100% weighted importance
        // through the always-installed libc package while their unweighted
        // importance stays a per-package property (paper Tables 5 and 8).
        let ldso_fp = linker
            .resolve_whole_library(apistudy_corpus::libc_gen::LDSO_SONAME)
            .unwrap_or_default();

        // Per-package closed footprints.
        let mut packages: Vec<PackageRecord> = Vec::with_capacity(inters.len());
        for inter in &inters {
            let mut fp = ApiFootprint::default();
            let ships_ldso = inter.libs.iter().any(|(name, _)| {
                name == apistudy_corpus::libc_gen::LDSO_SONAME
            });
            if ships_ldso {
                fp.merge(&ApiFootprint::resolve(&catalog, &ldso_fp));
            }
            for ba in &inter.execs {
                let raw = linker.resolve_executable(ba);
                fp.merge(&ApiFootprint::resolve(&catalog, &raw));
            }
            let script_interpreters: Vec<String> = inter
                .package
                .files
                .iter()
                .filter_map(|f| match f {
                    PackageFile::Script { shebang, .. } => Some(
                        Interpreter::classify(shebang)
                            .providing_package()
                            .to_owned(),
                    ),
                    PackageFile::Elf { .. } => None,
                })
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let n_scripts = inter.package.files.len()
                - inter.execs.len()
                - inter.libs.len();
            packages.push(PackageRecord {
                name: inter.package.name.clone(),
                prob: repo.plan.popcon.probability(&inter.package.name),
                install_count: repo.plan.popcon.count(&inter.package.name),
                depends: inter.package.depends.clone(),
                footprint: fp,
                script_interpreters,
                file_counts: (inter.execs.len(), inter.libs.len(), n_scripts),
                unresolved_syscall_sites: inter.unresolved,
            });
        }
        let by_name: HashMap<String, usize> = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();

        // Script packages inherit the interpreter package's footprint
        // (§2.3: the interpreter over-approximates the script). Two passes
        // settle interpreter-of-interpreter chains.
        for _ in 0..2 {
            let snapshot: Vec<ApiFootprint> =
                packages.iter().map(|p| p.footprint.clone()).collect();
            for p in packages.iter_mut() {
                for provider in p.script_interpreters.clone() {
                    if provider == p.name {
                        continue;
                    }
                    if let Some(&i) = by_name.get(&provider) {
                        p.footprint.merge(&snapshot[i]);
                    }
                }
            }
        }

        Self {
            catalog,
            packages,
            by_name,
            total_installations: repo.plan.popcon.total_installations,
            census,
            attribution,
            unresolved_syscall_sites: unresolved_total,
            resolved_syscall_sites: resolved_total,
        }
    }

    /// Rebuilds a measurable dataset from a published CSV export
    /// ([`crate::dataset::Dataset`]): downstream analyses can compute every
    /// metric without re-running the binary analysis. API names that no
    /// longer resolve against the catalog are counted in the footprint's
    /// `unresolved` field.
    pub fn from_dataset(ds: &crate::dataset::Dataset) -> Self {
        use apistudy_catalog::ApiKind;
        let catalog = Catalog::linux_3_19();
        let packages: Vec<PackageRecord> = ds
            .rows
            .iter()
            .map(|row| {
                let mut fp = ApiFootprint::default();
                for (kind, names) in &row.apis {
                    for name in names {
                        let api = match kind {
                            ApiKind::Syscall => catalog.syscall(name),
                            ApiKind::Ioctl => catalog.ioctl(name),
                            ApiKind::Fcntl => apistudy_catalog::FCNTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Fcntl(i as u32)),
                            ApiKind::Prctl => apistudy_catalog::PRCTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Prctl(i as u32)),
                            ApiKind::PseudoFile => catalog.pseudo_file(name),
                            ApiKind::LibcSymbol => catalog.libc_symbol(name),
                        };
                        match api {
                            Some(api) => {
                                fp.apis.insert(api);
                            }
                            None => fp.unresolved += 1,
                        }
                    }
                }
                PackageRecord {
                    name: row.name.clone(),
                    prob: row.probability,
                    install_count: row.install_count,
                    depends: row.depends.clone(),
                    footprint: fp,
                    script_interpreters: Vec::new(),
                    file_counts: (0, 0, 0),
                    unresolved_syscall_sites: 0,
                }
            })
            .collect();
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        Self {
            catalog,
            packages,
            by_name,
            total_installations: ds.installations,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 0,
        }
    }

    /// A package record by name.
    pub fn package(&self, name: &str) -> Option<&PackageRecord> {
        self.by_name.get(name).map(|&i| &self.packages[i])
    }

    /// Total installation mass (Σ probability), the denominator of
    /// weighted completeness.
    pub fn total_mass(&self) -> f64 {
        self.packages.iter().map(|p| p.prob).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_catalog::Api;
    use apistudy_corpus::{CalibrationSpec, Scale};

    fn tiny() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn pipeline_produces_a_record_per_package() {
        let data = tiny();
        assert_eq!(data.packages.len(), 150);
        assert!(data.package("libc6").is_some());
        assert!(data.package("coreutils").is_some());
    }

    #[test]
    fn every_dynamic_package_gets_the_startup_footprint() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let mut checked = 0;
        for p in &data.packages {
            if p.file_counts.0 == 0 || p.footprint.is_empty() {
                continue;
            }
            // Startup syscalls (exit_group) and ld.so's access must be
            // present in every dynamically linked package.
            if p.footprint.contains(Api::Syscall(nr("exit_group"))) {
                assert!(
                    p.footprint.contains(Api::Syscall(nr("mprotect"))),
                    "{} lacks mprotect",
                    p.name
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} packages checked");
    }

    #[test]
    fn attribution_places_access_in_ldso() {
        let data = tiny();
        let nr = data.catalog.syscalls.number_of("access").unwrap();
        let users: Vec<&str> = data.attribution.users_of(nr).collect();
        assert!(
            users.contains(&"ld-linux-x86-64.so.2"),
            "access direct users: {users:?}"
        );
    }

    #[test]
    fn unused_syscalls_have_no_package_users() {
        let data = tiny();
        for name in ["sysfs", "remap_file_pages", "mq_notify",
                     "lookup_dcookie", "restart_syscall", "move_pages",
                     "get_robust_list", "rt_tgsigqueueinfo", "tuxcall",
                     "create_module"] {
            let nr = data.catalog.syscalls.number_of(name).unwrap();
            let users = data
                .packages
                .iter()
                .filter(|p| p.footprint.contains(Api::Syscall(nr)))
                .count();
            assert_eq!(users, 0, "{name} should be unused");
        }
    }

    #[test]
    fn pin_packages_carry_their_syscalls() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let kexec = data.package("kexec-tools").expect("pin exists");
        assert!(kexec.footprint.contains(Api::Syscall(nr("kexec_load"))));
        let numa = data.package("libnuma").expect("pin exists");
        assert!(numa.footprint.contains(Api::Syscall(nr("mbind"))));
    }

    #[test]
    fn qemu_has_the_largest_syscall_footprint() {
        let data = tiny();
        let qemu = data.package("qemu").unwrap().footprint.syscalls().count();
        let max_other = data
            .packages
            .iter()
            .filter(|p| p.name != "qemu")
            .map(|p| p.footprint.syscalls().count())
            .max()
            .unwrap();
        assert!(qemu >= max_other, "qemu {qemu} vs max {max_other}");
        assert!(qemu >= 240, "qemu footprint is {qemu}");
    }

    #[test]
    fn corpus_wide_ablation_shrinks_footprints() {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        let full = StudyData::from_synth(&repo);
        let reduced = StudyData::from_synth_with(
            &repo,
            apistudy_analysis::AnalysisOptions {
                function_pointer_edges: false,
                ..Default::default()
            },
        );
        let count = |d: &StudyData| -> usize {
            d.packages.iter().map(|p| p.footprint.len()).sum()
        };
        assert!(
            count(&reduced) < count(&full),
            "disabling pointer edges must lose coverage corpus-wide: {} vs {}",
            count(&reduced),
            count(&full),
        );
    }

    #[test]
    fn unresolved_sites_are_rare() {
        let data = tiny();
        let total = data.unresolved_syscall_sites + data.resolved_syscall_sites;
        assert!(total > 0);
        let ratio = data.unresolved_syscall_sites as f64 / total as f64;
        assert!(ratio < 0.10, "unresolved ratio {ratio}");
    }
}
