//! The end-to-end measurement pipeline.
//!
//! Mirrors the paper's §7 framework at repository scale: every binary of
//! every package is parsed and statically analyzed; shared libraries are
//! registered with the cross-binary linker; executables are resolved to
//! closed footprints; packages aggregate their executables (plus the
//! dynamic linker for dynamically linked programs, and the interpreter
//! package's footprint for scripts, §2.3); the popularity survey attaches
//! installation counts.
//!
//! Both corpus-wide phases run in parallel: per-package binary analysis,
//! and — once the linker is sealed and read-only — per-package footprint
//! resolution. Workers pull indices from a shared cursor and send results
//! through a channel keyed by package index, so no locks are held while
//! analyzing.
//!
//! The result, [`StudyData`], is the in-memory replacement for the paper's
//! 428-million-row Postgres database.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use apistudy_analysis::{AnalysisOptions, BinaryAnalysis, Linker};
use apistudy_catalog::Catalog;
use apistudy_corpus::{
    Interpreter, MixCensus, Package, PackageFile, SynthRepo,
};
use apistudy_elf::{BinaryClass, ElfFile};

use crate::footprint::ApiFootprint;

/// Everything the study knows about one package.
#[derive(Debug, Clone)]
pub struct PackageRecord {
    /// Package name.
    pub name: String,
    /// Installation probability (from popcon).
    pub prob: f64,
    /// Raw popcon installation count.
    pub install_count: u64,
    /// Dependencies (package names).
    pub depends: Vec<String>,
    /// The package's catalog-resolved API footprint.
    pub footprint: ApiFootprint,
    /// Interpreter-providing packages for the package's scripts.
    pub script_interpreters: Vec<String>,
    /// Numbers of shipped executables / libraries / scripts.
    pub file_counts: (usize, usize, usize),
    /// Unresolved syscall sites observed while analyzing this package.
    pub unresolved_syscall_sites: u32,
}

/// Which binaries contain *direct* call sites for each system call — the
/// paper's library-attribution signal (Tables 1, 2, 5).
///
/// Binary file names are interned as `Arc<str>`: a library that uses 100
/// syscalls appears in 100 users-sets but its name is allocated once.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Syscall number → binary file names with direct call sites.
    pub direct_users: HashMap<u32, BTreeSet<Arc<str>>>,
    /// Binary file name → owning package.
    pub binary_package: HashMap<Arc<str>, Arc<str>>,
}

impl Attribution {
    /// Binaries with direct call sites for a syscall.
    pub fn users_of(&self, nr: u32) -> impl Iterator<Item = &str> {
        self.direct_users
            .get(&nr)
            .into_iter()
            .flatten()
            .map(|s| &**s)
    }
}

/// The aggregated study dataset.
pub struct StudyData {
    /// The API catalog measured against.
    pub catalog: Catalog,
    /// One record per package.
    pub packages: Vec<PackageRecord>,
    /// Package name → index.
    pub by_name: HashMap<String, usize>,
    /// Survey size.
    pub total_installations: u64,
    /// Figure 1 census.
    pub census: MixCensus,
    /// Direct-call-site attribution.
    pub attribution: Attribution,
    /// Total unresolved syscall sites across the corpus (paper: ~4% of
    /// sites).
    pub unresolved_syscall_sites: u64,
    /// Total syscall sites resolved (for the unresolved ratio).
    pub resolved_syscall_sites: u64,
}

/// Runs `f(0..n)` across a scoped worker pool and returns the results in
/// index order. Workers pull the next index from an atomic cursor and send
/// `(index, value)` pairs down a channel — no lock is held around `f`.
fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(16)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

struct PkgIntermediate {
    /// Index into the repository plan (kept for deterministic ordering).
    #[allow(dead_code)]
    index: usize,
    package: Package,
    libs: Vec<(String, BinaryAnalysis)>,
    execs: Vec<BinaryAnalysis>,
    /// `libs.len()` before the analyses are moved into the linker.
    lib_count: usize,
    /// Whether this package ships the dynamic linker.
    ships_ldso: bool,
    unresolved: u32,
    resolved: u64,
}

fn analyze_package(
    index: usize,
    package: Package,
    options: AnalysisOptions,
) -> PkgIntermediate {
    let mut libs = Vec::new();
    let mut execs = Vec::new();
    let mut unresolved = 0u32;
    let mut resolved = 0u64;
    for file in &package.files {
        let PackageFile::Elf { name, bytes } = file else { continue };
        let Ok(elf) = ElfFile::parse(bytes) else { continue };
        let Ok(ba) = BinaryAnalysis::analyze_with(&elf, options) else {
            continue;
        };
        for f in &ba.funcs {
            unresolved += f.facts.unresolved_syscall_sites;
            resolved += f.facts.syscalls.len() as u64;
        }
        match ba.class {
            BinaryClass::SharedLib => libs.push((name.clone(), ba)),
            _ => execs.push(ba),
        }
    }
    let lib_count = libs.len();
    let ships_ldso = libs
        .iter()
        .any(|(name, _)| name == apistudy_corpus::libc_gen::LDSO_SONAME);
    PkgIntermediate {
        index,
        package,
        libs,
        execs,
        lib_count,
        ships_ldso,
        unresolved,
        resolved,
    }
}

/// ORs `packages[src]`'s APIs into `packages[dst]`'s, reporting growth.
fn inherit_apis(packages: &mut [PackageRecord], dst: usize, src: usize) -> bool {
    if dst == src {
        return false;
    }
    let (dst_rec, src_rec) = if dst < src {
        let (lo, hi) = packages.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = packages.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    };
    dst_rec.footprint.merge_apis(&src_rec.footprint)
}

impl StudyData {
    /// Runs the full pipeline over a synthetic repository with the
    /// paper's default analysis choices.
    pub fn from_synth(repo: &SynthRepo) -> Self {
        Self::from_synth_with(repo, AnalysisOptions::default())
    }

    /// Runs the full pipeline with explicit [`AnalysisOptions`] — the
    /// corpus-wide ablation entry point: every metric downstream reflects
    /// the chosen analyzer behaviour.
    pub fn from_synth_with(repo: &SynthRepo, options: AnalysisOptions) -> Self {
        let inters = par_map_indexed(repo.package_count(), |i| {
            analyze_package(i, repo.package(i), options)
        });
        Self::assemble(repo, inters)
    }

    fn assemble(repo: &SynthRepo, mut inters: Vec<PkgIntermediate>) -> Self {
        let catalog = Catalog::linux_3_19();
        let census = MixCensus::scan(inters.iter().map(|i| &i.package));

        // Register every shared library, moving each analysis into the
        // linker (it is not needed twice); build attribution as we go.
        let mut linker = Linker::new();
        let mut attribution = Attribution::default();
        let mut unresolved_total = 0u64;
        let mut resolved_total = 0u64;
        for inter in &mut inters {
            unresolved_total += u64::from(inter.unresolved);
            resolved_total += inter.resolved;
            let pkg: Arc<str> = Arc::from(inter.package.name.as_str());
            for (name, ba) in inter.libs.drain(..) {
                let file: Arc<str> = Arc::from(name.as_str());
                for nr in ba.direct_syscalls() {
                    attribution
                        .direct_users
                        .entry(nr)
                        .or_default()
                        .insert(Arc::clone(&file));
                }
                attribution
                    .binary_package
                    .insert(Arc::clone(&file), Arc::clone(&pkg));
                linker.add_library(&name, ba);
            }
            for (ei, ba) in inter.execs.iter().enumerate() {
                let file: Arc<str> =
                    Arc::from(format!("{}/exec{ei}", inter.package.name));
                for nr in ba.direct_syscalls() {
                    attribution
                        .direct_users
                        .entry(nr)
                        .or_default()
                        .insert(Arc::clone(&file));
                }
                attribution.binary_package.insert(file, Arc::clone(&pkg));
            }
        }
        linker.seal();

        // The dynamic linker's own footprint belongs to the package that
        // ships it (libc6): applications do not import from ld.so, so its
        // calls (`access`, `arch_prctl`, ...) keep 100% weighted importance
        // through the always-installed libc package while their unweighted
        // importance stays a per-package property (paper Tables 5 and 8).
        let ldso_fp = linker
            .resolve_whole_library(apistudy_corpus::libc_gen::LDSO_SONAME)
            .unwrap_or_default();
        let ldso_resolved = ApiFootprint::resolve(&catalog, &ldso_fp);

        // Per-package closed footprints. The sealed linker is read-only,
        // so every package resolves independently in parallel.
        let mut packages: Vec<PackageRecord> = {
            let (linker, catalog, ldso, inters) =
                (&linker, &catalog, &ldso_resolved, &inters);
            par_map_indexed(inters.len(), move |i| {
                let inter = &inters[i];
                let mut fp = ApiFootprint::default();
                if inter.ships_ldso {
                    fp.merge(ldso);
                }
                for ba in &inter.execs {
                    let raw = linker.resolve_executable(ba);
                    fp.merge(&ApiFootprint::resolve(catalog, &raw));
                }
                let script_interpreters: Vec<String> = inter
                    .package
                    .files
                    .iter()
                    .filter_map(|f| match f {
                        PackageFile::Script { shebang, .. } => Some(
                            Interpreter::classify(shebang)
                                .providing_package()
                                .to_owned(),
                        ),
                        PackageFile::Elf { .. } => None,
                    })
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let n_scripts = inter.package.files.len()
                    - inter.execs.len()
                    - inter.lib_count;
                PackageRecord {
                    name: inter.package.name.clone(),
                    prob: repo.plan.popcon.probability(&inter.package.name),
                    install_count: repo.plan.popcon.count(&inter.package.name),
                    depends: inter.package.depends.clone(),
                    footprint: fp,
                    script_interpreters,
                    file_counts: (inter.execs.len(), inter.lib_count, n_scripts),
                    unresolved_syscall_sites: inter.unresolved,
                }
            })
        };
        let by_name: HashMap<String, usize> = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();

        // Script packages inherit the interpreter package's footprint
        // (§2.3: the interpreter over-approximates the script). Word-OR
        // to a fixed point: interpreter-of-interpreter chains settle at
        // any depth with no per-pass snapshot of every footprint.
        let providers: Vec<Vec<usize>> = packages
            .iter()
            .map(|p| {
                p.script_interpreters
                    .iter()
                    .filter(|provider| **provider != p.name)
                    .filter_map(|provider| by_name.get(provider).copied())
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for (i, provs) in providers.iter().enumerate() {
                for &src in provs {
                    changed |= inherit_apis(&mut packages, i, src);
                }
            }
            if !changed {
                break;
            }
        }

        Self {
            catalog,
            packages,
            by_name,
            total_installations: repo.plan.popcon.total_installations,
            census,
            attribution,
            unresolved_syscall_sites: unresolved_total,
            resolved_syscall_sites: resolved_total,
        }
    }

    /// Rebuilds a measurable dataset from a published CSV export
    /// ([`crate::dataset::Dataset`]): downstream analyses can compute every
    /// metric without re-running the binary analysis. API names that no
    /// longer resolve against the catalog are counted in the footprint's
    /// `unresolved` field.
    pub fn from_dataset(ds: &crate::dataset::Dataset) -> Self {
        use apistudy_catalog::ApiKind;
        let catalog = Catalog::linux_3_19();
        let packages: Vec<PackageRecord> = ds
            .rows
            .iter()
            .map(|row| {
                let mut fp = ApiFootprint::default();
                for (kind, names) in &row.apis {
                    for name in names {
                        let api = match kind {
                            ApiKind::Syscall => catalog.syscall(name),
                            ApiKind::Ioctl => catalog.ioctl(name),
                            ApiKind::Fcntl => apistudy_catalog::FCNTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Fcntl(i as u32)),
                            ApiKind::Prctl => apistudy_catalog::PRCTL_OPS
                                .iter()
                                .position(|&(_, n)| n == name)
                                .map(|i| apistudy_catalog::Api::Prctl(i as u32)),
                            ApiKind::PseudoFile => catalog.pseudo_file(name),
                            ApiKind::LibcSymbol => catalog.libc_symbol(name),
                        };
                        match api {
                            Some(api) => {
                                fp.apis.insert(api);
                            }
                            None => fp.unresolved += 1,
                        }
                    }
                }
                PackageRecord {
                    name: row.name.clone(),
                    prob: row.probability,
                    install_count: row.install_count,
                    depends: row.depends.clone(),
                    footprint: fp,
                    script_interpreters: Vec::new(),
                    file_counts: (0, 0, 0),
                    unresolved_syscall_sites: 0,
                }
            })
            .collect();
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        Self {
            catalog,
            packages,
            by_name,
            total_installations: ds.installations,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 0,
        }
    }

    /// A package record by name.
    pub fn package(&self, name: &str) -> Option<&PackageRecord> {
        self.by_name.get(name).map(|&i| &self.packages[i])
    }

    /// Total installation mass (Σ probability), the denominator of
    /// weighted completeness.
    pub fn total_mass(&self) -> f64 {
        self.packages.iter().map(|p| p.prob).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_catalog::Api;
    use apistudy_corpus::{CalibrationSpec, Scale};

    fn tiny() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn pipeline_produces_a_record_per_package() {
        let data = tiny();
        assert_eq!(data.packages.len(), 150);
        assert!(data.package("libc6").is_some());
        assert!(data.package("coreutils").is_some());
    }

    #[test]
    fn every_dynamic_package_gets_the_startup_footprint() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let mut checked = 0;
        for p in &data.packages {
            if p.file_counts.0 == 0 || p.footprint.is_empty() {
                continue;
            }
            // Startup syscalls (exit_group) and ld.so's access must be
            // present in every dynamically linked package.
            if p.footprint.contains(Api::Syscall(nr("exit_group"))) {
                assert!(
                    p.footprint.contains(Api::Syscall(nr("mprotect"))),
                    "{} lacks mprotect",
                    p.name
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} packages checked");
    }

    #[test]
    fn attribution_places_access_in_ldso() {
        let data = tiny();
        let nr = data.catalog.syscalls.number_of("access").unwrap();
        let users: Vec<&str> = data.attribution.users_of(nr).collect();
        assert!(
            users.contains(&"ld-linux-x86-64.so.2"),
            "access direct users: {users:?}"
        );
    }

    #[test]
    fn unused_syscalls_have_no_package_users() {
        let data = tiny();
        for name in ["sysfs", "remap_file_pages", "mq_notify",
                     "lookup_dcookie", "restart_syscall", "move_pages",
                     "get_robust_list", "rt_tgsigqueueinfo", "tuxcall",
                     "create_module"] {
            let nr = data.catalog.syscalls.number_of(name).unwrap();
            let users = data
                .packages
                .iter()
                .filter(|p| p.footprint.contains(Api::Syscall(nr)))
                .count();
            assert_eq!(users, 0, "{name} should be unused");
        }
    }

    #[test]
    fn pin_packages_carry_their_syscalls() {
        let data = tiny();
        let nr = |name: &str| data.catalog.syscalls.number_of(name).unwrap();
        let kexec = data.package("kexec-tools").expect("pin exists");
        assert!(kexec.footprint.contains(Api::Syscall(nr("kexec_load"))));
        let numa = data.package("libnuma").expect("pin exists");
        assert!(numa.footprint.contains(Api::Syscall(nr("mbind"))));
    }

    #[test]
    fn qemu_has_the_largest_syscall_footprint() {
        let data = tiny();
        let qemu = data.package("qemu").unwrap().footprint.syscalls().count();
        let max_other = data
            .packages
            .iter()
            .filter(|p| p.name != "qemu")
            .map(|p| p.footprint.syscalls().count())
            .max()
            .unwrap();
        assert!(qemu >= max_other, "qemu {qemu} vs max {max_other}");
        assert!(qemu >= 240, "qemu footprint is {qemu}");
    }

    #[test]
    fn corpus_wide_ablation_shrinks_footprints() {
        let repo = SynthRepo::new(
            Scale { packages: 150, installations: 50_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        let full = StudyData::from_synth(&repo);
        let reduced = StudyData::from_synth_with(
            &repo,
            apistudy_analysis::AnalysisOptions {
                function_pointer_edges: false,
                ..Default::default()
            },
        );
        let count = |d: &StudyData| -> usize {
            d.packages.iter().map(|p| p.footprint.len()).sum()
        };
        assert!(
            count(&reduced) < count(&full),
            "disabling pointer edges must lose coverage corpus-wide: {} vs {}",
            count(&reduced),
            count(&full),
        );
    }

    #[test]
    fn unresolved_sites_are_rare() {
        let data = tiny();
        let total = data.unresolved_syscall_sites + data.resolved_syscall_sites;
        assert!(total > 0);
        let ratio = data.unresolved_syscall_sites as f64 / total as f64;
        assert!(ratio < 0.10, "unresolved ratio {ratio}");
    }

    #[test]
    fn par_map_preserves_index_order() {
        let out = par_map_indexed(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        assert!(par_map_indexed(0, |i| i).is_empty());
    }
}
