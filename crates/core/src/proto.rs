//! The query daemon's wire protocol: length-prefixed, checksummed frames.
//!
//! Every byte off the wire is untrusted. The framing is the write-ahead
//! journal's, deliberately — a `u32` length prefix, a 64-bit content
//! checksum, then the payload — with hard limits enforced *before* any
//! allocation: a corrupt or hostile length prefix can cost at most
//! [`MAX_FRAME`] bytes, never a giant allocation, and a checksum mismatch
//! or undecodable payload is a classified [`FrameError`] /
//! [`ErrorCode::BadRequest`], never a panic. No serde.
//!
//! Decoding is total: [`Request::decode`] and [`Response::decode`] accept
//! arbitrary byte strings and return `None` for anything that is not the
//! canonical encoding of exactly one message (trailing bytes included).
//! The chaos suite drives millions of fuzzed payloads through them and
//! through a live daemon to hold that line.
//!
//! Reads are deadline-bound ([`read_frame`]): the caller supplies an
//! *idle* budget (how long to wait for the first byte of the next frame)
//! and a *request* budget (how long a started frame may take to arrive in
//! full), so a slowloris writer dribbling one byte per second is cut off
//! at the request deadline instead of pinning a worker forever.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use apistudy_analysis::content_hash;

/// Hard cap on one frame's payload. Requests and replies are small
/// (syscall-number lists and f64 bit patterns); anything larger is either
/// corruption or an attack, and is rejected before allocation.
pub const MAX_FRAME: usize = 1 << 16;
/// Hard cap on a supported-set list in one request (the syscall catalog
/// is ~550 entries; 4096 leaves headroom without inviting abuse).
pub const MAX_SET: usize = 4096;
/// Hard cap on the pick budget of one `Suggest` request.
pub const MAX_PICKS: usize = 256;
/// Hard cap on sub-requests in one [`Request::Batch`] frame (and on the
/// replies in its [`Response::Batch`] mirror).
pub const MAX_BATCH: usize = 64;
/// Hard cap on an error reply's detail string, in bytes.
pub const MAX_ERR_MSG: usize = 200;
/// Frame header length: length prefix (4) plus content checksum (8).
pub const FRAME_HEADER: usize = 12;

/// How a frame read ended short of a whole valid frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The peer closed mid-frame: a truncated frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`]. The stream is no longer
    /// framed; the connection must be closed.
    TooLarge(usize),
    /// The payload's checksum does not match its header. The stream may
    /// be corrupt or hostile; the connection must be closed.
    Checksum,
    /// The idle budget expired while waiting for the next frame to start.
    Idle,
    /// The request budget expired mid-frame (slowloris or stall).
    Deadline,
    /// The server is draining; no further frames will be read.
    Draining,
    /// Any other socket failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
            FrameError::Idle => write!(f, "idle deadline expired"),
            FrameError::Deadline => write!(f, "request deadline expired"),
            FrameError::Draining => write!(f, "server draining"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl FrameError {
    /// Whether this failure lives in the **transport**, so a reconnect
    /// (with backoff) may genuinely succeed: the peer vanished
    /// (`Closed`/`Truncated`), the socket failed (`Io` — `EINTR`,
    /// `EAGAIN`, `ECONNRESET` mid-handshake), the server said come back
    /// later (`Draining`), or it simply never answered in budget
    /// (`Idle`/`Deadline`). The remaining cases — `Checksum`,
    /// `TooLarge` — mean the *content* is wrong: the same bytes will be
    /// wrong on every retry, so retrying a malformed reply only burns
    /// the backoff budget and masks corruption.
    pub fn is_transport(&self) -> bool {
        match self {
            FrameError::Closed
            | FrameError::Truncated
            | FrameError::Io(_)
            | FrameError::Idle
            | FrameError::Deadline
            | FrameError::Draining => true,
            FrameError::Checksum | FrameError::TooLarge(_) => false,
        }
    }
}

impl std::error::Error for FrameError {}

/// Classified request-level failures, carried in [`Response::Err`]
/// replies so clients can tell overload from corruption from misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was damaged (checksum mismatch or truncation);
    /// the stream is desynchronized and the connection will close.
    BadFrame,
    /// The frame's length prefix exceeded [`MAX_FRAME`]; the connection
    /// will close.
    TooLarge,
    /// The frame arrived intact but its payload is not a valid request.
    BadRequest,
    /// A referenced API is not in the catalog.
    UnknownApi,
    /// Admission control rejected the connection or request; retry with
    /// backoff.
    Busy,
    /// The request exceeded its processing deadline.
    Deadline,
    /// The server is draining and will not take new work.
    Draining,
    /// A server-side failure that is not the client's fault.
    Internal,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownApi => 2,
            ErrorCode::Busy => 3,
            ErrorCode::Deadline => 4,
            ErrorCode::Draining => 5,
            ErrorCode::Internal => 6,
            ErrorCode::BadFrame => 7,
            ErrorCode::TooLarge => 8,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownApi,
            3 => ErrorCode::Busy,
            4 => ErrorCode::Deadline,
            5 => ErrorCode::Draining,
            6 => ErrorCode::Internal,
            7 => ErrorCode::BadFrame,
            8 => ErrorCode::TooLarge,
            _ => return None,
        })
    }

    /// Short stable label for logs and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownApi => "unknown-api",
            ErrorCode::Busy => "busy",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::TooLarge => "too-large",
        }
    }
}

/// One client request. Syscalls cross the wire as catalog numbers (stable
/// across processes), never interner ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / snapshot-identity probe.
    Ping,
    /// Importance of one syscall number.
    Importance {
        /// Syscall number.
        nr: u32,
    },
    /// Weighted completeness of a supported syscall set (the
    /// masked fast path).
    Completeness {
        /// Supported syscall numbers.
        supported: Vec<u32>,
    },
    /// Greedy next-pick plan from a supported set.
    Suggest {
        /// Supported syscall numbers.
        supported: Vec<u32>,
        /// Maximum picks to return (capped at [`MAX_PICKS`]).
        limit: u32,
    },
    /// Open (or reset) this connection's incremental completeness
    /// session over the given supported set.
    SessionOpen {
        /// Supported syscall numbers.
        supported: Vec<u32>,
    },
    /// Mark a syscall supported in the connection's session.
    SessionAdd {
        /// Syscall number.
        nr: u32,
    },
    /// Mark a syscall unsupported in the connection's session.
    SessionRemove {
        /// Syscall number.
        nr: u32,
    },
    /// Probe the marginal gain of a syscall without changing the session.
    SessionProbe {
        /// Syscall number.
        nr: u32,
    },
    /// Re-run the analysis and atomically swap the snapshot. The expected
    /// fingerprint must match the live snapshot (compare-and-swap
    /// semantics), so racing or stale reload intents fail cleanly.
    Reload {
        /// The fingerprint the client believes is live.
        expect_fingerprint: u64,
    },
    /// Graceful drain: finish in-flight requests, stop accepting, exit.
    Shutdown,
    /// A pipelined bundle of 1..=[`MAX_BATCH`] sub-requests, answered in
    /// order by one [`Response::Batch`]. Sub-requests may be anything
    /// except another `Batch` (nesting depth is exactly one), and the
    /// whole bundle still fits one [`MAX_FRAME`]-bounded frame — batching
    /// amortizes syscall and framing cost, it does not raise any cap.
    Batch(
        /// The sub-requests, answered in this order.
        Vec<Request>,
    ),
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_nr_list(buf: &mut Vec<u8>, nrs: &[u32]) {
    put_u32(buf, nrs.len() as u32);
    for &nr in nrs {
        put_u32(buf, nr);
    }
}

/// Byte cursor over an untrusted payload. Every read is bounds-checked;
/// exhaustion is `None`, never a panic.
struct Take<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Take<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.bytes(4)?);
        Some(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Option<u64> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.bytes(8)?);
        Some(u64::from_le_bytes(raw))
    }

    fn nr_list(&mut self, cap: usize) -> Option<Vec<u32>> {
        let count = self.u32()? as usize;
        if count > cap {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32()?);
        }
        Some(out)
    }

    /// The payload must be fully consumed: trailing bytes mean the frame
    /// is not what the peer framed, so the message is rejected whole.
    fn finish<T>(self, value: T) -> Option<T> {
        (self.at == self.bytes.len()).then_some(value)
    }
}

impl Request {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ping => buf.push(1),
            Request::Importance { nr } => {
                buf.push(2);
                put_u32(buf, *nr);
            }
            Request::Completeness { supported } => {
                buf.push(3);
                put_nr_list(buf, supported);
            }
            Request::Suggest { supported, limit } => {
                buf.push(4);
                put_nr_list(buf, supported);
                put_u32(buf, *limit);
            }
            Request::SessionOpen { supported } => {
                buf.push(5);
                put_nr_list(buf, supported);
            }
            Request::SessionAdd { nr } => {
                buf.push(6);
                put_u32(buf, *nr);
            }
            Request::SessionRemove { nr } => {
                buf.push(7);
                put_u32(buf, *nr);
            }
            Request::SessionProbe { nr } => {
                buf.push(8);
                put_u32(buf, *nr);
            }
            Request::Reload { expect_fingerprint } => {
                buf.push(9);
                put_u64(buf, *expect_fingerprint);
            }
            Request::Shutdown => buf.push(10),
            Request::Batch(subs) => {
                buf.push(11);
                put_u32(buf, subs.len() as u32);
                // Sub-requests are self-delimiting, so they concatenate
                // without per-item length prefixes; a nested Batch would
                // encode (and then fail to decode), which Batch's own
                // decoder forbids — callers must not nest.
                for sub in subs {
                    sub.encode_into(buf);
                }
            }
        }
    }

    /// Canonical encoding (the exact byte string [`Request::decode`]
    /// accepts).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes exactly one request from the cursor's current position
    /// (sub-requests are self-delimiting). `allow_batch` is false inside
    /// a batch: nesting depth is exactly one.
    fn decode_inner(c: &mut Take<'_>, allow_batch: bool) -> Option<Self> {
        Some(match c.u8()? {
            1 => Request::Ping,
            2 => Request::Importance { nr: c.u32()? },
            3 => Request::Completeness { supported: c.nr_list(MAX_SET)? },
            4 => Request::Suggest {
                supported: c.nr_list(MAX_SET)?,
                limit: c.u32()?,
            },
            5 => Request::SessionOpen { supported: c.nr_list(MAX_SET)? },
            6 => Request::SessionAdd { nr: c.u32()? },
            7 => Request::SessionRemove { nr: c.u32()? },
            8 => Request::SessionProbe { nr: c.u32()? },
            9 => Request::Reload { expect_fingerprint: c.u64()? },
            10 => Request::Shutdown,
            11 => {
                if !allow_batch {
                    return None;
                }
                let count = c.u32()? as usize;
                if count == 0 || count > MAX_BATCH {
                    return None;
                }
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    subs.push(Request::decode_inner(c, false)?);
                }
                Request::Batch(subs)
            }
            _ => return None,
        })
    }

    /// Total decoder over untrusted bytes: returns `None` unless `payload`
    /// is the canonical encoding of exactly one request, with every list
    /// under its hard cap.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut c = Take::new(payload);
        let req = Request::decode_inner(&mut c, true)?;
        c.finish(req)
    }
}

/// One server reply. All floating-point results cross the wire as raw
/// `f64` bit patterns, so daemon answers are bit-identical to direct
/// library calls by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong {
        /// The live snapshot's fingerprint (corpus ⊕ options ⊕ catalog).
        fingerprint: u64,
        /// Monotonic snapshot generation (bumps on every swap).
        generation: u64,
        /// Packages in the snapshot.
        packages: u32,
    },
    /// Reply to [`Request::Importance`].
    Importance {
        /// `Metrics::importance` as bits.
        importance_bits: u64,
        /// `Metrics::unweighted_importance` as bits.
        unweighted_bits: u64,
    },
    /// Reply to [`Request::Completeness`].
    Completeness {
        /// `Metrics::syscall_completeness` as bits.
        bits: u64,
    },
    /// Reply to [`Request::Suggest`].
    Suggest {
        /// `(syscall number, exact gain bits)` in pick order.
        picks: Vec<(u32, u64)>,
    },
    /// Reply to every session request: the operation's exact delta and
    /// the session completeness after it, both as bits.
    Session {
        /// The operation's completeness delta (or probe gain) as bits.
        delta_bits: u64,
        /// Session completeness after the operation, as bits.
        completeness_bits: u64,
    },
    /// Reply to a successful [`Request::Reload`].
    Reload {
        /// The new snapshot's fingerprint.
        fingerprint: u64,
        /// The new snapshot generation.
        generation: u64,
    },
    /// Shutdown acknowledged; the server is draining.
    Bye,
    /// A classified failure.
    Err {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (capped at [`MAX_ERR_MSG`] bytes).
        msg: String,
    },
    /// The ordered replies to a [`Request::Batch`], one per sub-request
    /// (a failed sub-request gets an [`Response::Err`] in its slot; the
    /// rest of the batch still completes).
    Batch(
        /// Per-sub-request replies, in request order.
        Vec<Response>,
    ),
}

impl Response {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Pong { fingerprint, generation, packages } => {
                buf.push(1);
                put_u64(buf, *fingerprint);
                put_u64(buf, *generation);
                put_u32(buf, *packages);
            }
            Response::Importance { importance_bits, unweighted_bits } => {
                buf.push(2);
                put_u64(buf, *importance_bits);
                put_u64(buf, *unweighted_bits);
            }
            Response::Completeness { bits } => {
                buf.push(3);
                put_u64(buf, *bits);
            }
            Response::Suggest { picks } => {
                buf.push(4);
                put_u32(buf, picks.len() as u32);
                for &(nr, gain_bits) in picks {
                    put_u32(buf, nr);
                    put_u64(buf, gain_bits);
                }
            }
            Response::Session { delta_bits, completeness_bits } => {
                buf.push(5);
                put_u64(buf, *delta_bits);
                put_u64(buf, *completeness_bits);
            }
            Response::Reload { fingerprint, generation } => {
                buf.push(6);
                put_u64(buf, *fingerprint);
                put_u64(buf, *generation);
            }
            Response::Bye => buf.push(7),
            Response::Err { code, msg } => {
                buf.push(8);
                buf.push(code.tag());
                let mut cut = msg.len().min(MAX_ERR_MSG);
                while !msg.is_char_boundary(cut) {
                    cut -= 1;
                }
                let bytes = &msg.as_bytes()[..cut];
                put_u32(buf, bytes.len() as u32);
                buf.extend_from_slice(bytes);
            }
            Response::Batch(subs) => {
                buf.push(9);
                put_u32(buf, subs.len() as u32);
                for sub in subs {
                    sub.encode_into(buf);
                }
            }
        }
    }

    /// Canonical encoding (the exact byte string [`Response::decode`]
    /// accepts). Error details longer than [`MAX_ERR_MSG`] bytes are
    /// truncated at a character boundary.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes exactly one reply from the cursor's current position.
    /// `allow_batch` is false inside a batch (nesting depth one, mirroring
    /// the request side).
    fn decode_inner(c: &mut Take<'_>, allow_batch: bool) -> Option<Self> {
        Some(match c.u8()? {
            1 => Response::Pong {
                fingerprint: c.u64()?,
                generation: c.u64()?,
                packages: c.u32()?,
            },
            2 => Response::Importance {
                importance_bits: c.u64()?,
                unweighted_bits: c.u64()?,
            },
            3 => Response::Completeness { bits: c.u64()? },
            4 => {
                let count = c.u32()? as usize;
                if count > MAX_PICKS {
                    return None;
                }
                let mut picks = Vec::with_capacity(count);
                for _ in 0..count {
                    picks.push((c.u32()?, c.u64()?));
                }
                Response::Suggest { picks }
            }
            5 => Response::Session {
                delta_bits: c.u64()?,
                completeness_bits: c.u64()?,
            },
            6 => Response::Reload {
                fingerprint: c.u64()?,
                generation: c.u64()?,
            },
            7 => Response::Bye,
            8 => {
                let code = ErrorCode::from_tag(c.u8()?)?;
                let len = c.u32()? as usize;
                if len > MAX_ERR_MSG {
                    return None;
                }
                let raw = c.bytes(len)?;
                let msg = std::str::from_utf8(raw).ok()?.to_owned();
                Response::Err { code, msg }
            }
            9 => {
                if !allow_batch {
                    return None;
                }
                let count = c.u32()? as usize;
                if count == 0 || count > MAX_BATCH {
                    return None;
                }
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    subs.push(Response::decode_inner(c, false)?);
                }
                Response::Batch(subs)
            }
            _ => return None,
        })
    }

    /// Total decoder over untrusted bytes (the client's guard against a
    /// corrupt or impostor server): `None` unless `payload` is the
    /// canonical encoding of exactly one reply.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut c = Take::new(payload);
        let resp = Response::decode_inner(&mut c, true)?;
        c.finish(resp)
    }

    /// Convenience constructor for error replies.
    pub fn err(code: ErrorCode, msg: impl Into<String>) -> Self {
        Response::Err { code, msg: msg.into() }
    }
}

/// Frames one payload for the wire: length prefix, checksum, bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&content_hash(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses a complete in-memory frame: `Some((payload, bytes_consumed))`
/// when `bytes` starts with one whole valid frame. Used by tests and the
/// fuzz harness; the socket path is [`read_frame`].
pub fn decode_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    let mut c = Take::new(bytes);
    let len = c.u32()? as usize;
    if len > MAX_FRAME {
        return None;
    }
    let check = c.u64()?;
    let payload = c.bytes(len)?;
    if content_hash(payload) != check {
        return None;
    }
    Some((payload, FRAME_HEADER + len))
}

/// Incremental frame scan over a reactor's accumulation buffer.
///
/// Returns `Ok(None)` while the buffer holds only a partial frame (read
/// more), `Ok(Some(total))` when `buf[..total]` is one whole valid frame
/// whose payload is `buf[FRAME_HEADER..total]`, and classifies damage the
/// moment it is provable: an over-cap length prefix fails
/// [`FrameError::TooLarge`] before the body arrives (no attacker-sized
/// buffering), a checksum mismatch fails [`FrameError::Checksum`] once
/// the body is complete. Unlike [`decode_frame`] this never waits for
/// bytes that the header already proves will be rejected.
pub fn scan_frame(buf: &[u8]) -> Result<Option<usize>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[..4]);
    let len = u32::from_le_bytes(raw) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let total = FRAME_HEADER + len;
    if buf.len() < total {
        return Ok(None);
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[4..12]);
    let check = u64::from_le_bytes(raw);
    if content_hash(&buf[FRAME_HEADER..total]) != check {
        return Err(FrameError::Checksum);
    }
    Ok(Some(total))
}

/// Read budgets for [`read_frame`].
#[derive(Debug, Clone, Copy)]
pub struct ReadBudget {
    /// How long to wait for the first byte of the next frame.
    pub idle: Duration,
    /// How long a started frame may take to arrive in full (the
    /// slowloris bound).
    pub request: Duration,
}

/// The granularity at which blocked reads re-check deadlines and the
/// drain flag. Coarse enough to stay cheap, fine enough that drain and
/// deadline enforcement feel immediate.
const POLL: Duration = Duration::from_millis(100);

/// Reads exactly `buf.len()` bytes with deadline polling. `deadline` is
/// absolute once armed; `arm` is called on the first byte (the idle →
/// request budget transition). `stop` aborts between bytes at a frame
/// boundary only.
fn read_exact_deadline(
    stream: &TcpStream,
    buf: &mut [u8],
    deadline: &mut Instant,
    mut on_first_byte: Option<&mut dyn FnMut(&mut Instant)>,
    stop: &dyn Fn() -> bool,
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= *deadline {
            return Err(if at_boundary && filled == 0 {
                FrameError::Idle
            } else {
                FrameError::Deadline
            });
        }
        if at_boundary && filled == 0 && stop() {
            return Err(FrameError::Draining);
        }
        let wait = (*deadline - now).min(POLL);
        stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(FrameError::Io)?;
        match (&*stream).read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => {
                if filled == 0 {
                    if let Some(arm) = on_first_byte.take() {
                        arm(deadline);
                    }
                }
                filled += n;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Validates a just-read header and reads the payload it announces under
/// the (already armed) deadline.
fn finish_frame(
    stream: &TcpStream,
    header: &[u8; FRAME_HEADER],
    deadline: &mut Instant,
    stop: &dyn Fn() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&header[..4]);
    let len = u32::from_le_bytes(raw) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&header[4..12]);
    let check = u64::from_le_bytes(raw);
    let mut payload = vec![0u8; len];
    read_exact_deadline(stream, &mut payload, deadline, None, stop, false)?;
    if content_hash(&payload) != check {
        return Err(FrameError::Checksum);
    }
    Ok(payload)
}

/// Reads one whole frame from the socket under the given budgets,
/// returning its validated payload. `stop` (the server's drain flag) is
/// honored only between frames — an in-flight frame is always finished or
/// failed, never half-read and abandoned.
pub fn read_frame(
    stream: &TcpStream,
    budget: ReadBudget,
    stop: &dyn Fn() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    // Idle budget until the first byte lands, then the request budget
    // governs the rest of the frame.
    let mut deadline = Instant::now() + budget.idle;
    let mut arm = |d: &mut Instant| *d = Instant::now() + budget.request;
    read_exact_deadline(
        stream,
        &mut header,
        &mut deadline,
        Some(&mut arm),
        stop,
        true,
    )?;
    finish_frame(stream, &header, &mut deadline, stop)
}

/// Reads one whole frame under a single **absolute** deadline. Unlike
/// [`read_frame`]'s idle → request budget hand-off, nothing re-arms when
/// the first byte lands: the whole frame must arrive by `deadline_at`.
/// This is the client's per-request budget — a server that accepts the
/// request but stalls mid-reply is cut at exactly one deadline, not a
/// stack of idle and request budgets.
pub fn read_frame_by(
    stream: &TcpStream,
    deadline_at: Instant,
    stop: &dyn Fn() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    let mut deadline = deadline_at;
    read_exact_deadline(stream, &mut header, &mut deadline, None, stop, true)?;
    finish_frame(stream, &header, &mut deadline, stop)
}

/// Writes one frame under a write deadline. A peer that stops draining
/// its receive buffer (backpressure) fails the write at the deadline
/// instead of pinning the worker.
pub fn write_frame(
    stream: &TcpStream,
    payload: &[u8],
    timeout: Duration,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(timeout.max(Duration::from_millis(1))))?;
    (&*stream).write_all(&encode_frame(payload))?;
    (&*stream).flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Importance { nr: 0 },
            Request::Importance { nr: u32::MAX },
            Request::Completeness { supported: vec![] },
            Request::Completeness { supported: vec![0, 1, 60, 231] },
            Request::Suggest { supported: vec![0, 1], limit: 10 },
            Request::SessionOpen { supported: vec![2, 3, 5, 7] },
            Request::SessionAdd { nr: 17 },
            Request::SessionRemove { nr: 17 },
            Request::SessionProbe { nr: 202 },
            Request::Reload { expect_fingerprint: 0xDEAD_BEEF_1234_5678 },
            Request::Shutdown,
            Request::Batch(vec![Request::Ping]),
            Request::Batch(vec![
                Request::Importance { nr: 0 },
                Request::Completeness { supported: vec![0, 1, 60] },
                Request::Suggest { supported: vec![], limit: 3 },
                Request::Ping,
            ]),
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong { fingerprint: 1, generation: 2, packages: 150 },
            Response::Importance {
                importance_bits: 1.0f64.to_bits(),
                unweighted_bits: 0.25f64.to_bits(),
            },
            Response::Completeness { bits: (-0.0f64).to_bits() },
            Response::Suggest {
                picks: vec![(0, 0.5f64.to_bits()), (231, 1u64)],
            },
            Response::Session {
                delta_bits: 0x3FF5_5555_5555_5555,
                completeness_bits: 0,
            },
            Response::Reload { fingerprint: 9, generation: 3 },
            Response::Bye,
            Response::err(ErrorCode::Busy, "at capacity"),
            Response::err(ErrorCode::BadRequest, ""),
            Response::err(ErrorCode::BadFrame, "checksum mismatch"),
            Response::err(ErrorCode::TooLarge, "frame over cap"),
            Response::Batch(vec![Response::Bye]),
            Response::Batch(vec![
                Response::Completeness { bits: 7 },
                Response::err(ErrorCode::UnknownApi, "nr 9999"),
                Response::Pong { fingerprint: 3, generation: 1, packages: 2 },
            ]),
        ]
    }

    #[test]
    fn requests_roundtrip_canonically() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes), Some(req.clone()));
            // Any strict prefix or extension must be rejected whole.
            for cut in 0..bytes.len() {
                assert_eq!(Request::decode(&bytes[..cut]), None, "prefix {cut}");
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert_eq!(Request::decode(&extended), None, "trailing byte");
        }
    }

    #[test]
    fn responses_roundtrip_canonically() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes), Some(resp.clone()));
            for cut in 0..bytes.len() {
                assert_eq!(Response::decode(&bytes[..cut]), None, "prefix {cut}");
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert_eq!(Response::decode(&extended), None, "trailing byte");
        }
    }

    #[test]
    fn batch_nesting_and_cardinality_are_rejected() {
        // Empty batch: meaningless, rejected.
        assert_eq!(Request::decode(&Request::Batch(vec![]).encode()), None);
        assert_eq!(Response::decode(&Response::Batch(vec![]).encode()), None);
        // Over-cap batch: MAX_BATCH + 1 pings.
        let big = Request::Batch(vec![Request::Ping; MAX_BATCH + 1]);
        assert_eq!(Request::decode(&big.encode()), None);
        // Nested batch: depth two encodes but must not decode.
        let nested = Request::Batch(vec![
            Request::Ping,
            Request::Batch(vec![Request::Ping]),
        ]);
        assert_eq!(Request::decode(&nested.encode()), None);
        let nested = Response::Batch(vec![Response::Batch(vec![Response::Bye])]);
        assert_eq!(Response::decode(&nested.encode()), None);
        // A full-size batch of scalar requests is fine.
        let full = Request::Batch(vec![Request::Importance { nr: 1 }; MAX_BATCH]);
        assert_eq!(Request::decode(&full.encode()), Some(full));
    }

    #[test]
    fn scan_frame_is_incremental_and_classifies_damage_early() {
        let payload = Request::Batch(vec![Request::Ping, Request::Shutdown])
            .encode();
        let frame = encode_frame(&payload);
        // Every strict prefix: incomplete, never an error.
        for cut in 0..frame.len() {
            match scan_frame(&frame[..cut]) {
                Ok(None) => {}
                other => panic!("prefix {cut} gave {other:?}"),
            }
        }
        // The whole frame (with unrelated trailing bytes of a next frame):
        // exactly this frame's extent.
        let mut two = frame.clone();
        two.extend_from_slice(&encode_frame(&Request::Ping.encode()));
        assert_eq!(scan_frame(&two).unwrap(), Some(frame.len()));
        assert_eq!(
            &two[FRAME_HEADER..frame.len()],
            &payload[..],
            "payload extent"
        );
        // An over-cap length prefix fails as soon as 4 bytes exist, long
        // before any body arrives.
        let mut huge = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
        assert!(matches!(scan_frame(&huge), Err(FrameError::TooLarge(_))));
        huge.extend_from_slice(&[0; 16]);
        assert!(matches!(scan_frame(&huge), Err(FrameError::TooLarge(_))));
        // A corrupted body fails Checksum once complete.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert!(matches!(scan_frame(&bad), Err(FrameError::Checksum)));
    }

    #[test]
    fn oversized_lists_are_rejected_before_allocation() {
        // A Completeness request claiming u32::MAX entries: the count is
        // validated against MAX_SET before any Vec::with_capacity.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&bytes), None);
        // Same for the Suggest picks cap on the reply side.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&((MAX_PICKS as u32) + 1).to_le_bytes());
        assert_eq!(Response::decode(&bytes), None);
    }

    #[test]
    fn error_detail_is_capped_and_utf8_safe() {
        // A detail far over the cap, ending in multibyte characters so
        // truncation must land on a char boundary.
        let msg = "é".repeat(MAX_ERR_MSG);
        let resp = Response::err(ErrorCode::Internal, msg);
        let bytes = resp.encode();
        let Some(Response::Err { code, msg }) = Response::decode(&bytes) else {
            panic!("capped error must decode");
        };
        assert_eq!(code, ErrorCode::Internal);
        assert!(msg.len() <= MAX_ERR_MSG);
    }

    #[test]
    fn frames_roundtrip_and_reject_damage() {
        let payload = Request::Suggest { supported: vec![1, 2, 3], limit: 5 }
            .encode();
        let frame = encode_frame(&payload);
        let (got, consumed) = decode_frame(&frame).expect("valid frame");
        assert_eq!(got, &payload[..]);
        assert_eq!(consumed, frame.len());
        // Flip any single byte: either the checksum rejects it, or (for
        // length-prefix damage) the frame no longer parses at all. The
        // one admissible outcome of tampering is rejection.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            if let Some((p, _)) = decode_frame(&bad) {
                panic!("tampered byte {i} still decoded to {p:?}");
            }
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(decode_frame(&bytes).is_none());
    }

    /// Splitmix-style deterministic byte fuzzer (no process randomness:
    /// reproducible by construction).
    fn fuzz_bytes(seed: &mut u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                (*seed >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn decoders_are_total_over_fuzzed_bytes() {
        let mut seed = 0x5EED_CAFE;
        for round in 0..20_000 {
            let len = (round % 97) as usize;
            let bytes = fuzz_bytes(&mut seed, len);
            // Must never panic; almost always None.
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
            let _ = decode_frame(&bytes);
        }
    }

    #[test]
    fn fuzzed_mutations_of_valid_messages_never_panic() {
        let mut seed = 0xF00D;
        for req in sample_requests() {
            let frame = encode_frame(&req.encode());
            for _ in 0..500 {
                let mut bad = frame.clone();
                let noise = fuzz_bytes(&mut seed, 3);
                let at = (noise[0] as usize) % bad.len();
                bad[at] ^= noise[1] | 1;
                if noise[2].is_multiple_of(4) {
                    bad.truncate(at);
                }
                if let Some((payload, _)) = decode_frame(&bad) {
                    let _ = Request::decode(payload);
                }
            }
        }
    }
}
