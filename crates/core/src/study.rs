//! The end-to-end [`Study`] facade.
//!
//! Bundles corpus generation, the analysis pipeline, and the metric engine
//! behind one entry point — the library's quickstart surface:
//!
//! ```no_run
//! use apistudy_core::Study;
//! use apistudy_corpus::Scale;
//!
//! let study = Study::run(Scale::test(), 42);
//! let m = study.metrics();
//! let read = study.syscall("read").unwrap();
//! println!("read importance: {:.1}%", 100.0 * m.importance(read));
//! ```

use apistudy_catalog::Api;
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

use crate::{
    metrics::Metrics,
    pipeline::StudyData,
    planner::{stages, CompletenessCurve, Stage},
};

/// A completed study over a (synthetic) distribution.
pub struct Study {
    repo: SynthRepo,
    data: StudyData,
}

impl Study {
    /// Generates a corpus at `scale` and runs the full measurement
    /// pipeline over it.
    pub fn run(scale: Scale, seed: u64) -> Self {
        Self::run_with(scale, CalibrationSpec::default(), seed)
    }

    /// Like [`Study::run`] with an explicit calibration.
    pub fn run_with(scale: Scale, spec: CalibrationSpec, seed: u64) -> Self {
        let repo = SynthRepo::new(scale, spec, seed);
        let data = StudyData::from_synth(&repo);
        Self { repo, data }
    }

    /// The measured dataset.
    pub fn data(&self) -> &StudyData {
        &self.data
    }

    /// The generated corpus (plans are the generator's ground truth).
    pub fn repo(&self) -> &SynthRepo {
        &self.repo
    }

    /// A fresh metric engine over the dataset.
    pub fn metrics(&self) -> Metrics<'_> {
        Metrics::new(&self.data)
    }

    /// The [`Api`] for a kernel syscall name.
    pub fn syscall(&self, name: &str) -> Option<Api> {
        self.data.catalog.syscall(name)
    }

    /// The Figure 3 completeness curve and Table 4 stages.
    pub fn implementation_plan(&self) -> (CompletenessCurve, Vec<Stage>) {
        let metrics = self.metrics();
        let curve = CompletenessCurve::compute(&metrics);
        let st = stages(&metrics, &curve);
        (curve, st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_end_to_end() {
        let study = Study::run(
            Scale { packages: 120, installations: 20_000 },
            3,
        );
        let m = study.metrics();
        let read = study.syscall("read").expect("read exists");
        assert!(m.importance(read) > 0.99);
        let (curve, stages) = study.implementation_plan();
        assert_eq!(stages.len(), 5);
        assert!(curve.at(200) > curve.at(50));
    }
}
