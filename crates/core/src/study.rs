//! The end-to-end [`Study`] facade.
//!
//! Bundles corpus generation, the analysis pipeline, and the metric engine
//! behind one entry point — the library's quickstart surface:
//!
//! ```no_run
//! use apistudy_core::Study;
//! use apistudy_corpus::Scale;
//!
//! let study = Study::run(Scale::test(), 42);
//! let m = study.metrics();
//! let read = study.syscall("read").unwrap();
//! println!("read importance: {:.1}%", 100.0 * m.importance(read));
//! ```

use std::path::Path;

use apistudy_analysis::AnalysisOptions;
use apistudy_catalog::Api;
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

use crate::{
    journal::JournalError,
    metrics::Metrics,
    pipeline::StudyData,
    planner::{stages, CompletenessCurve, Stage},
    store::StoreStats,
    stream::{study_sharded, study_sharded_stored},
};

/// A completed study over a (synthetic) distribution.
pub struct Study {
    repo: SynthRepo,
    data: StudyData,
}

impl Study {
    /// Generates a corpus at `scale` and runs the full measurement
    /// pipeline over it.
    pub fn run(scale: Scale, seed: u64) -> Self {
        Self::run_with(scale, CalibrationSpec::default(), seed)
    }

    /// Like [`Study::run`] with an explicit calibration.
    pub fn run_with(scale: Scale, spec: CalibrationSpec, seed: u64) -> Self {
        let repo = SynthRepo::new(scale, spec, seed);
        let data = StudyData::from_synth(&repo);
        Self { repo, data }
    }

    /// [`Study::run`] through the streaming, sharded pipeline: only one
    /// shard of binaries is ever materialized, so paper-scale corpora run
    /// in shard-bounded memory. Bit-identical to [`Study::run`] for any
    /// `shard_size` (0 means one shard over the whole corpus).
    pub fn run_streamed(scale: Scale, seed: u64, shard_size: usize) -> Self {
        let repo = SynthRepo::new(scale, CalibrationSpec::default(), seed);
        let data = study_sharded(
            &repo,
            AnalysisOptions::default(),
            shard_size,
            None,
        );
        Self { repo, data }
    }

    /// [`Study::run_streamed`] persisting every clean shard to the
    /// [`FootprintStore`](crate::store::FootprintStore) at `path`; with
    /// `resume`, shards already stored under the same run fingerprint are
    /// replayed instead of recomputed.
    pub fn run_streamed_stored(
        scale: Scale,
        seed: u64,
        shard_size: usize,
        path: &Path,
        resume: bool,
    ) -> Result<(Self, StoreStats), JournalError> {
        let repo = SynthRepo::new(scale, CalibrationSpec::default(), seed);
        let (data, stats) = study_sharded_stored(
            &repo,
            AnalysisOptions::default(),
            shard_size,
            None,
            path,
            resume,
        )?;
        Ok((Self { repo, data }, stats))
    }

    /// The measured dataset.
    pub fn data(&self) -> &StudyData {
        &self.data
    }

    /// The generated corpus (plans are the generator's ground truth).
    pub fn repo(&self) -> &SynthRepo {
        &self.repo
    }

    /// A fresh metric engine over the dataset.
    pub fn metrics(&self) -> Metrics<'_> {
        Metrics::new(&self.data)
    }

    /// The [`Api`] for a kernel syscall name.
    pub fn syscall(&self, name: &str) -> Option<Api> {
        self.data.catalog.syscall(name)
    }

    /// The Figure 3 completeness curve and Table 4 stages.
    pub fn implementation_plan(&self) -> (CompletenessCurve, Vec<Stage>) {
        let metrics = self.metrics();
        let curve = CompletenessCurve::compute(&metrics);
        let st = stages(&metrics, &curve);
        (curve, st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_end_to_end() {
        let study = Study::run(
            Scale { packages: 120, installations: 20_000 },
            3,
        );
        let m = study.metrics();
        let read = study.syscall("read").expect("read exists");
        assert!(m.importance(read) > 0.99);
        let (curve, stages) = study.implementation_plan();
        assert_eq!(stages.len(), 5);
        assert!(curve.at(200) > curve.at(50));
    }
}
