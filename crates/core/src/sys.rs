//! Thin, classified wrappers over the modern event-driven syscall
//! surface the reactor ([`crate::serve`]) is built on: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd2` (via glibc's `eventfd`), and
//! `accept4`, plus the raw `read`/`write`/`close` the connection state
//! machines drive.
//!
//! A study *of* modern Linux API usage should itself exercise the modern
//! API surface it measures — every call here is in our own catalog
//! (`apistudy serve --self-audit` reports the mapping) — so the bindings
//! are direct `extern "C"` declarations against the system libc, no
//! external crates. This is the **only** module in the crate allowed to
//! contain FFI `unsafe`; everything it exports is a safe function with a
//! classified [`SysError`] on failure, and the unsafety is confined to
//! the few lines that cross the C boundary with invariants stated at
//! each site.
//!
//! Errno handling is explicit: every failing call captures `errno` at
//! the call site and carries the call's name, and [`SysError::kind`]
//! classifies the handful of values control flow depends on
//! (would-block, interrupted, peer-gone, fd-exhausted) so callers never
//! match on raw integers.
//!
//! Every wrapper is also a fault-injection point: it consults the
//! [`crate::sysfault`] shim with its callsite tag before crossing the C
//! boundary, so an armed plan can make any call here fail with a
//! plausible errno (or transfer short) deterministically. Disarmed, the
//! check is a single relaxed atomic load.

#![allow(unsafe_code)]

use crate::sysfault::{self, SysFaultKind};
use std::fs::File;
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

// The raw C surface. These symbols come from the system libc the binary
// is already linked against; `eventfd` is glibc's wrapper over the
// `eventfd2` syscall (the flags-bearing modern form).
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(
        epfd: c_int,
        op: c_int,
        fd: c_int,
        event: *mut EpollEvent,
    ) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn accept4(
        sockfd: c_int,
        addr: *mut c_void,
        addrlen: *mut u32,
        flags: c_int,
    ) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn __errno_location() -> *mut c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const EPIPE: i32 = 32;
const ECONNRESET: i32 = 104;
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;

/// One readiness record, kernel layout. On x86-64 the kernel declares
/// `struct epoll_event` packed (12 bytes); elsewhere it is naturally
/// aligned — the cfg_attr mirrors the kernel headers exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, round-tripped verbatim by the kernel.
    pub token: u64,
}

impl EpollEvent {
    /// The event bitmask (a method because the struct may be packed, so
    /// direct field borrows are not always well-aligned).
    pub fn ready(&self) -> u32 {
        self.events
    }

    /// The registration token this readiness belongs to.
    pub fn data(&self) -> u64 {
        self.token
    }
}

/// A failed syscall: which call, and the `errno` it left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysError {
    /// The libc entry point that failed.
    pub call: &'static str,
    /// The `errno` value captured immediately after the failure.
    pub errno: i32,
}

/// The errno classes control flow branches on. Everything else is
/// [`SysErrorKind::Other`] and treated as fatal for the descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysErrorKind {
    /// `EAGAIN`/`EWOULDBLOCK`: the operation would block; retry on the
    /// next readiness event.
    WouldBlock,
    /// `EINTR`: interrupted by a signal; retry immediately.
    Interrupted,
    /// `EPIPE`/`ECONNRESET`: the peer is gone; close the connection.
    Disconnected,
    /// `EMFILE`/`ENFILE`: the process (or system) descriptor table is
    /// full; stop creating descriptors until one is released.
    FdExhausted,
    /// Anything else (including `EBADF`, which is always a logic bug).
    Other,
}

impl SysError {
    fn capture(call: &'static str) -> Self {
        // SAFETY: __errno_location always returns a valid pointer to the
        // calling thread's errno slot.
        let errno = unsafe { *__errno_location() };
        Self { call, errno }
    }

    /// Classifies the errno into the cases callers branch on.
    pub fn kind(self) -> SysErrorKind {
        match self.errno {
            EAGAIN => SysErrorKind::WouldBlock,
            EINTR => SysErrorKind::Interrupted,
            EPIPE | ECONNRESET => SysErrorKind::Disconnected,
            EMFILE | ENFILE => SysErrorKind::FdExhausted,
            _ => SysErrorKind::Other,
        }
    }
}

/// Materializes an injected fault as the [`SysError`] the real call
/// would have produced. `ShortIo` has no errno; if a plan forces it at
/// a non-stream site it degrades to `EINTR` (a retry), never a bogus
/// errno 0.
fn fault_error(site: &'static str, kind: SysFaultKind) -> SysError {
    let errno = match kind.errno() {
        0 => EINTR,
        e => e,
    };
    SysError { call: site, errno }
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed with errno {}", self.call, self.errno)
    }
}

impl std::error::Error for SysError {}

/// An epoll instance. Owns the descriptor; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> Result<Self, SysError> {
        // SAFETY: no pointers cross the boundary.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(SysError::capture("epoll_create1"));
        }
        Ok(Self { fd })
    }

    fn ctl(
        &self,
        op: c_int,
        call: &'static str,
        fd: RawFd,
        events: u32,
        token: u64,
    ) -> Result<(), SysError> {
        if let Some(k) = sysfault::check(call) {
            return Err(fault_error(call, k));
        }
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. A DEL op ignores the event pointer entirely.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(SysError::capture(call));
        }
        Ok(())
    }

    /// Registers `fd` for the given interest mask under `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> Result<(), SysError> {
        self.ctl(EPOLL_CTL_ADD, "epoll_ctl(ADD)", fd, events, token)
    }

    /// Rewrites `fd`'s interest mask (token re-stated, kernel replaces both).
    pub fn modify(
        &self,
        fd: RawFd,
        events: u32,
        token: u64,
    ) -> Result<(), SysError> {
        self.ctl(EPOLL_CTL_MOD, "epoll_ctl(MOD)", fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: RawFd) -> Result<(), SysError> {
        self.ctl(EPOLL_CTL_DEL, "epoll_ctl(DEL)", fd, 0, 0)
    }

    /// Blocks until readiness or timeout (`None` = forever), filling
    /// `events`. Returns the ready prefix. `EINTR` retries internally —
    /// callers never see a spurious empty wake from a signal.
    pub fn wait<'e>(
        &self,
        events: &'e mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> Result<&'e [EpollEvent], SysError> {
        let timeout_ms: c_int = match timeout {
            // Round *up* so a 100 µs deadline does not busy-spin at 0 ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as c_int,
            None => -1,
        };
        loop {
            if let Some(k) = sysfault::check("epoll_wait") {
                let err = fault_error("epoll_wait", k);
                if err.kind() == SysErrorKind::Interrupted {
                    continue; // the same signal-retry path a real EINTR takes
                }
                return Err(err);
            }
            // SAFETY: `events` is a valid, writable slice; maxevents is
            // its exact length, so the kernel cannot write past it.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(&events[..rc as usize]);
            }
            let err = SysError::capture("epoll_wait");
            if err.kind() != SysErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the descriptor; double-close is impossible
        // because drop runs once.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used as the reactor's cross-thread doorbell:
/// worker completions and drain requests `signal` it, and the event loop
/// `drain`s it when epoll reports it readable.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)` — the modern `eventfd2`
    /// form (flags require it; the original `eventfd` syscall has none).
    pub fn new() -> Result<Self, SysError> {
        // SAFETY: no pointers cross the boundary.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(SysError::capture("eventfd"));
        }
        Ok(Self { fd })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Safe from any thread; a full counter
    /// (`WouldBlock`) already guarantees the reader will wake, so that
    /// case is success, not failure, and `EINTR` retries — a signal
    /// landing mid-ring must never lose a wakeup.
    pub fn signal(&self) -> Result<(), SysError> {
        let one: u64 = 1;
        loop {
            if let Some(k) = sysfault::check("write(eventfd)") {
                let err = fault_error("write(eventfd)", k);
                match err.kind() {
                    SysErrorKind::WouldBlock => return Ok(()),
                    SysErrorKind::Interrupted => continue,
                    _ => return Err(err),
                }
            }
            // SAFETY: 8 valid bytes for the eventfd write protocol.
            let rc = unsafe {
                write(self.fd, (&one as *const u64).cast::<c_void>(), 8)
            };
            if rc >= 0 {
                return Ok(());
            }
            let err = SysError::capture("write(eventfd)");
            match err.kind() {
                SysErrorKind::WouldBlock => return Ok(()),
                SysErrorKind::Interrupted => continue,
                _ => return Err(err),
            }
        }
    }

    /// Clears the counter, returning how many signals had accumulated
    /// (0 if the bell was not rung — a spurious wake). `EINTR` retries;
    /// a swallowed drain would leave the bell permanently ready.
    pub fn drain(&self) -> Result<u64, SysError> {
        let mut count: u64 = 0;
        loop {
            if let Some(k) = sysfault::check("read(eventfd)") {
                let err = fault_error("read(eventfd)", k);
                match err.kind() {
                    SysErrorKind::WouldBlock => return Ok(0),
                    SysErrorKind::Interrupted => continue,
                    _ => return Err(err),
                }
            }
            // SAFETY: 8 writable bytes for the eventfd read protocol.
            let rc = unsafe {
                read(self.fd, (&mut count as *mut u64).cast::<c_void>(), 8)
            };
            if rc >= 0 {
                return Ok(count);
            }
            let err = SysError::capture("read(eventfd)");
            match err.kind() {
                SysErrorKind::WouldBlock => return Ok(0),
                SysErrorKind::Interrupted => continue,
                _ => return Err(err),
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the descriptor.
        unsafe { close(self.fd) };
    }
}

/// `accept4(SOCK_NONBLOCK | SOCK_CLOEXEC)` on a listening socket:
/// `Ok(Some(stream))` for a new connection (already nonblocking, no
/// follow-up fcntl round trip — the point of the modern call),
/// `Ok(None)` when the backlog is empty.
pub fn accept_nonblocking(
    listener: &TcpListener,
) -> Result<Option<TcpStream>, SysError> {
    loop {
        if let Some(k) = sysfault::check("accept4") {
            let err = fault_error("accept4", k);
            match err.kind() {
                SysErrorKind::WouldBlock => return Ok(None),
                SysErrorKind::Interrupted
                | SysErrorKind::Disconnected => continue,
                // FdExhausted (EMFILE/ENFILE) and Other surface to the
                // reactor, which pauses accepting on exhaustion.
                _ => return Err(err),
            }
        }
        // SAFETY: null addr/addrlen is the documented "don't care" form.
        let fd = unsafe {
            accept4(
                listener.as_raw_fd(),
                std::ptr::null_mut(),
                std::ptr::null_mut(),
                SOCK_NONBLOCK | SOCK_CLOEXEC,
            )
        };
        if fd >= 0 {
            // SAFETY: `fd` is a fresh, owned socket descriptor returned
            // by accept4; TcpStream takes sole ownership.
            return Ok(Some(unsafe { TcpStream::from_raw_fd(fd) }));
        }
        let err = SysError::capture("accept4");
        match err.kind() {
            SysErrorKind::WouldBlock => return Ok(None),
            SysErrorKind::Interrupted => continue,
            // A connection that was reset between arrival and accept is
            // not the listener's problem; try the next one.
            SysErrorKind::Disconnected => continue,
            SysErrorKind::FdExhausted | SysErrorKind::Other => {
                return Err(err)
            }
        }
    }
}

/// Raw nonblocking read. `Ok(0)` is end-of-stream (peer closed). An
/// injected `ShortIo` clamps the transfer to one byte — a real read,
/// just maximally short — so accumulation logic is exercised, not faked.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> Result<usize, SysError> {
    let mut len = buf.len();
    if let Some(k) = sysfault::check("read") {
        if k == SysFaultKind::ShortIo {
            len = len.min(1);
        } else {
            return Err(fault_error("read", k));
        }
    }
    // SAFETY: `buf` is a valid writable slice; count never exceeds it.
    let rc = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), len) };
    if rc < 0 {
        return Err(SysError::capture("read"));
    }
    Ok(rc as usize)
}

/// Raw nonblocking write. Short writes are normal under backpressure;
/// an injected `ShortIo` forces the shortest one possible (1 byte).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> Result<usize, SysError> {
    let mut len = buf.len();
    if let Some(k) = sysfault::check("write") {
        if k == SysFaultKind::ShortIo {
            len = len.min(1);
        } else {
            return Err(fault_error("write", k));
        }
    }
    // SAFETY: `buf` is a valid readable slice; count never exceeds it.
    let rc = unsafe { write(fd, buf.as_ptr().cast::<c_void>(), len) };
    if rc < 0 {
        return Err(SysError::capture("write"));
    }
    Ok(rc as usize)
}

/// Fault-aware `write_all` for the durable append paths (journal and
/// store), tagged with their callsite (`"journal.write"` /
/// `"store.write"`). Injected `EINTR` retries in place, `ShortIo`
/// continues from the short position, and `ENOSPC` first lands a torn
/// prefix of the remaining bytes — a real full disk tears writes — then
/// surfaces as a classified `io::Error`; `EIO` (and any other errno a
/// plan forces) surfaces directly. Disarmed, this is `write_all`.
pub fn file_write_all(
    mut file: &File,
    buf: &[u8],
    site: &'static str,
) -> io::Result<()> {
    let mut off = 0usize;
    while off < buf.len() {
        match sysfault::check(site) {
            None => {
                file.write_all(&buf[off..])?;
                off = buf.len();
            }
            Some(SysFaultKind::Eintr) | Some(SysFaultKind::Eagain) => {
                continue; // retried; the ledger still records the fault
            }
            Some(SysFaultKind::ShortIo) => {
                file.write_all(&buf[off..=off])?;
                off += 1;
            }
            Some(SysFaultKind::Enospc) => {
                let torn = (buf.len() - off) / 2;
                file.write_all(&buf[off..off + torn])?;
                return Err(io::Error::from_raw_os_error(
                    SysFaultKind::Enospc.errno(),
                ));
            }
            Some(k) => {
                return Err(io::Error::from_raw_os_error(fault_error(
                    site, k,
                )
                .errno));
            }
        }
    }
    Ok(())
}

/// Fault-aware `sync_data` for the durable append paths, tagged
/// (`"journal.fsync"` / `"store.fsync"`). Injected `EINTR` retries;
/// `EIO`/`ENOSPC` surface classified — the "fsyncgate" trigger: after a
/// failed fsync the page-cache state is unknowable, so callers must
/// fail stop, not retry. Disarmed, this is `sync_data`.
pub fn file_sync_data(file: &File, site: &'static str) -> io::Result<()> {
    loop {
        match sysfault::check(site) {
            None => return file.sync_data(),
            Some(SysFaultKind::Eintr)
            | Some(SysFaultKind::Eagain)
            | Some(SysFaultKind::ShortIo) => continue,
            Some(k) => {
                return Err(io::Error::from_raw_os_error(
                    fault_error(site, k).errno,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EBADF: i32 = 9;

    #[test]
    fn epoll_event_layout_matches_the_kernel() {
        // x86-64 packs the struct to 12 bytes; the kernel reads/writes
        // exactly that layout, so a mismatch here corrupts every token.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn eventfd_signal_wakes_epoll_and_drains() {
        let ep = Epoll::new().expect("epoll_create1");
        let bell = EventFd::new().expect("eventfd");
        ep.add(bell.raw(), EPOLLIN, 7).expect("register eventfd");

        // Nothing signalled: a short wait times out empty.
        let mut events = [EpollEvent { events: 0, token: 0 }; 8];
        let ready = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(ready.is_empty(), "spurious readiness before signal");

        // Two signals coalesce into one readiness with count 2.
        bell.signal().expect("signal");
        bell.signal().expect("signal");
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].data(), 7);
        assert!(ready[0].ready() & EPOLLIN != 0);
        assert_eq!(bell.drain().expect("drain"), 2);
        // Drained: the bell is quiet again.
        assert_eq!(bell.drain().expect("drain empty"), 0);
        let ready = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(ready.is_empty(), "readiness must clear after drain");
    }

    #[test]
    fn accept4_returns_nonblocking_streams_and_empty_backlog_is_none() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking listener");
        // Empty backlog: None, not an error and not a hang.
        assert!(accept_nonblocking(&listener)
            .expect("accept on empty backlog")
            .is_none());

        let addr = listener.local_addr().expect("addr");
        let mut peer = TcpStream::connect(addr).expect("connect");
        // The connect is local, but give the kernel a beat to queue it.
        let ep = Epoll::new().expect("epoll");
        ep.add(listener.as_raw_fd(), EPOLLIN, 1).expect("add");
        let mut events = [EpollEvent { events: 0, token: 0 }; 4];
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait for backlog");
        assert_eq!(ready.len(), 1);
        let stream = accept_nonblocking(&listener)
            .expect("accept")
            .expect("one queued connection");
        // The accepted socket must already be nonblocking: a read with
        // nothing pending is WouldBlock, not a hang.
        let mut buf = [0u8; 4];
        let err = read_fd(stream.as_raw_fd(), &mut buf)
            .expect_err("empty socket must not block");
        assert_eq!(err.kind(), SysErrorKind::WouldBlock);
        // Data pushed by the peer arrives through the raw read.
        peer.write_all(b"ping").expect("peer write");
        peer.flush().expect("peer flush");
        ep.add(stream.as_raw_fd(), EPOLLIN, 2).expect("add conn");
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait for data");
        assert!(ready.iter().any(|e| e.data() == 2));
        assert_eq!(read_fd(stream.as_raw_fd(), &mut buf).expect("read"), 4);
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn errors_are_classified_with_call_and_errno() {
        let ep = Epoll::new().expect("epoll");
        // Registering an invalid fd: EBADF, classified Other, with the
        // failing call named for the log line.
        let err = ep.add(-1, EPOLLIN, 0).expect_err("bad fd must fail");
        assert_eq!(err.call, "epoll_ctl(ADD)");
        assert_eq!(err.errno, EBADF);
        assert_eq!(err.kind(), SysErrorKind::Other);
        assert!(err.to_string().contains("epoll_ctl"));
    }

    #[test]
    fn interest_modification_switches_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = TcpStream::connect(addr).expect("connect");
        let (conn, _) = listener.accept().expect("accept");
        conn.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll");
        // Interest: writable — an idle socket with buffer space reports
        // EPOLLOUT immediately.
        ep.add(conn.as_raw_fd(), EPOLLOUT, 9).expect("add");
        let mut events = [EpollEvent { events: 0, token: 0 }; 4];
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(ready.iter().any(|e| e.data() == 9 && e.ready() & EPOLLOUT != 0));
        // Switch to read-only interest: no data pending, so no readiness.
        ep.modify(conn.as_raw_fd(), EPOLLIN, 9).expect("modify");
        let ready = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(ready.is_empty(), "EPOLLOUT must be gone after MOD");
        // Deregister entirely; readiness can never be reported again.
        ep.del(conn.as_raw_fd()).expect("del");
        drop(peer);
        let ready = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(ready.is_empty(), "deregistered fd must stay silent");
    }
}
