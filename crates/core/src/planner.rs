//! The implementation planner: "From Hello World to qemu" (paper §3.2).
//!
//! Given the measured importance ranking of system calls, computes the
//! accumulated weighted completeness of supporting the N most important
//! calls (Figure 3) and partitions the ranking into the five development
//! stages of Table 4.

use std::collections::HashMap;

use apistudy_catalog::{Api, ApiKind};

use crate::metrics::Metrics;

/// The measured syscall importance ranking and the completeness curve over
/// its prefixes.
#[derive(Debug, Clone)]
pub struct CompletenessCurve {
    /// Syscall numbers, most important first.
    pub ranking: Vec<u32>,
    /// `points[n]` = weighted completeness when the first `n` calls of
    /// `ranking` are supported (`points[0]` = 0 support).
    pub points: Vec<f64>,
}

impl CompletenessCurve {
    /// Computes the curve. Efficient: packages are bucketed by the maximum
    /// rank in their (dependency-closed) syscall footprint, so the sweep is
    /// one pass rather than one completeness evaluation per N.
    pub fn compute(metrics: &Metrics<'_>) -> Self {
        let data = metrics.data();
        let ranking: Vec<u32> = metrics
            .importance_ranking(ApiKind::Syscall)
            .into_iter()
            .map(|(api, _)| match api {
                Api::Syscall(n) => n,
                _ => unreachable!("syscall ranking"),
            })
            .collect();
        let rank_of: HashMap<u32, usize> = ranking
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i + 1)) // 1-based: supported once N ≥ rank
            .collect();

        // Max rank per package footprint.
        let n = data.packages.len();
        let mut max_rank: Vec<usize> = data
            .packages
            .iter()
            .map(|p| {
                p.footprint
                    .syscalls()
                    .map(|nr| rank_of.get(&nr).copied().unwrap_or(usize::MAX))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        // Dependency closure: a package needs its dependencies to work, so
        // its effective rank is the max over the dependency closure.
        loop {
            let mut changed = false;
            for i in 0..n {
                let mut m = max_rank[i];
                for dep in &data.packages[i].depends {
                    if let Some(&d) = data.by_name.get(dep) {
                        m = m.max(max_rank[d]);
                    }
                }
                if m != max_rank[i] {
                    max_rank[i] = m;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Mass histogram by effective rank.
        let total_mass: f64 = data.packages.iter().map(|p| p.prob).sum();
        let mut mass_at = vec![0.0f64; ranking.len() + 1];
        for (i, p) in data.packages.iter().enumerate() {
            if max_rank[i] <= ranking.len() {
                mass_at[max_rank[i]] += p.prob;
            }
            // Packages needing an API outside the ranking never become
            // supported (cannot happen for syscalls, kept for safety).
        }
        let mut points = Vec::with_capacity(ranking.len() + 1);
        let mut acc = 0.0;
        for m in mass_at {
            acc += m;
            points.push(if total_mass > 0.0 { acc / total_mass } else { 0.0 });
        }
        Self { ranking, points }
    }

    /// Completeness with the top `n` calls supported.
    pub fn at(&self, n: usize) -> f64 {
        self.points[n.min(self.points.len() - 1)]
    }

    /// Smallest N reaching at least the given completeness.
    pub fn calls_needed(&self, completeness: f64) -> usize {
        self.points
            .iter()
            .position(|&c| c >= completeness)
            .unwrap_or(self.points.len() - 1)
    }
}

/// One development stage (Table 4).
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage label (I–V).
    pub label: &'static str,
    /// Number of calls added in this stage.
    pub added: usize,
    /// Cumulative number of calls after this stage.
    pub cumulative: usize,
    /// Sample syscall names from this stage.
    pub samples: Vec<String>,
    /// Weighted completeness reached.
    pub completeness: f64,
}

/// Partitions the curve into the paper's five stages (40 / 81 / 145 / 202 /
/// everything used).
pub fn stages(metrics: &Metrics<'_>, curve: &CompletenessCurve) -> Vec<Stage> {
    let data = metrics.data();
    // The last stage ends where importance hits zero (all used calls).
    let used = curve
        .ranking
        .iter()
        .take_while(|&&nr| metrics.importance(Api::Syscall(nr)) > 0.0)
        .count();
    let bounds = [40usize, 81, 145, 202, used.max(202)];
    let labels = ["I", "II", "III", "IV", "V"];
    let mut out = Vec::with_capacity(5);
    let mut prev = 0usize;
    for (i, &b) in bounds.iter().enumerate() {
        let b = b.min(curve.ranking.len());
        let samples: Vec<String> = curve.ranking[prev..b]
            .iter()
            .take(10)
            .filter_map(|&nr| {
                data.catalog.syscalls.by_number(nr).map(|d| d.name.to_owned())
            })
            .collect();
        out.push(Stage {
            label: labels[i],
            added: b - prev,
            cumulative: b,
            samples,
            completeness: curve.at(b),
        });
        prev = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 200, installations: 50_000 },
            CalibrationSpec::default(),
            11,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn curve_is_monotone_and_reaches_one() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        assert_eq!(curve.ranking.len(), 323);
        for w in curve.points.windows(2) {
            assert!(w[1] >= w[0], "curve must be monotone");
        }
        assert!((curve.at(323) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hello_world_needs_about_40_calls() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        // Nothing runs with fewer than ~40 calls...
        assert!(curve.at(30) < 0.005, "at 30: {}", curve.at(30));
        // ...but the first packages appear by 40.
        assert!(curve.at(45) > 0.0, "at 45: {}", curve.at(45));
    }

    #[test]
    fn knees_match_figure_3_shape() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        let at81 = curve.at(81);
        let at145 = curve.at(145);
        let at202 = curve.at(202);
        assert!(at81 > 0.01 && at81 < 0.40, "at 81: {at81}");
        assert!(at145 > 0.25 && at145 < 0.75, "at 145: {at145}");
        assert!(at202 > 0.70, "at 202: {at202}");
        assert!(at81 < at145 && at145 < at202);
    }

    #[test]
    fn stage_partition_covers_ranking() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        let st = stages(&metrics, &curve);
        assert_eq!(st.len(), 5);
        assert_eq!(st[0].cumulative, 40);
        assert_eq!(st[1].cumulative, 81);
        assert_eq!(st[2].cumulative, 145);
        assert_eq!(st[3].cumulative, 202);
        assert!(st[4].cumulative >= 202);
        for w in st.windows(2) {
            assert!(w[1].completeness >= w[0].completeness);
        }
    }
}
