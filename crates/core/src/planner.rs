//! The implementation planner: "From Hello World to qemu" (paper §3.2).
//!
//! Given the measured importance ranking of system calls, computes the
//! accumulated weighted completeness of supporting the N most important
//! calls (Figure 3) and partitions the ranking into the five development
//! stages of Table 4. [`CompletenessCurve::compute_greedy`] and
//! [`greedy_suggestions`] replace the static importance order with a
//! lazy-greedy marginal-gain order driven by the incremental
//! [`CompletenessEngine`].

use std::collections::{HashMap, HashSet};
use std::path::Path;

use apistudy_catalog::{Api, ApiKind};

use crate::cache::fold_hash;
use crate::engine::CompletenessEngine;
use crate::journal::{
    catalog_fingerprint, Journal, JournalError, JournalRecord, JournalStats,
    RunFingerprint, RunKind,
};
use crate::metrics::Metrics;

/// The measured syscall importance ranking and the completeness curve over
/// its prefixes.
#[derive(Debug, Clone)]
pub struct CompletenessCurve {
    /// Syscall numbers, most important first.
    pub ranking: Vec<u32>,
    /// `points[n]` = weighted completeness when the first `n` calls of
    /// `ranking` are supported (`points[0]` = 0 support).
    pub points: Vec<f64>,
}

impl CompletenessCurve {
    /// Computes the curve. Efficient: packages are bucketed by the maximum
    /// rank in their (dependency-closed) syscall footprint, so the sweep is
    /// one pass rather than one completeness evaluation per N.
    pub fn compute(metrics: &Metrics<'_>) -> Self {
        let data = metrics.data();
        let ranking: Vec<u32> = metrics
            .importance_ranking(ApiKind::Syscall)
            .into_iter()
            .map(|(api, _)| match api {
                Api::Syscall(n) => n,
                _ => unreachable!("syscall ranking"),
            })
            .collect();
        let rank_of: HashMap<u32, usize> = ranking
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i + 1)) // 1-based: supported once N ≥ rank
            .collect();

        // Max rank per package footprint.
        let own_rank: Vec<usize> = data
            .packages
            .iter()
            .map(|p| {
                p.footprint
                    .syscalls()
                    .map(|nr| rank_of.get(&nr).copied().unwrap_or(usize::MAX))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        // Dependency closure: a package needs its dependencies to work, so
        // its effective rank is the max over the dependency closure. Max is
        // monotone, so one bottom-up pass over the condensation suffices —
        // a component's dependencies carry smaller ids and are final by the
        // time it is visited, and cycle members share one value.
        let cond = metrics.condensation();
        let ncomp = cond.len();
        let mut comp_rank = vec![0usize; ncomp];
        for c in 0..ncomp {
            let own = cond
                .members(c as u32)
                .iter()
                .map(|&i| own_rank[i])
                .max()
                .unwrap_or(0);
            let dep = cond
                .deps(c as u32)
                .iter()
                .map(|&d| comp_rank[d as usize])
                .max()
                .unwrap_or(0);
            comp_rank[c] = own.max(dep);
        }
        let max_rank: Vec<usize> = (0..data.packages.len())
            .map(|i| comp_rank[cond.comp_of(i) as usize])
            .collect();

        // Mass histogram by effective rank.
        let total_mass: f64 = data.packages.iter().map(|p| p.prob).sum();
        let mut mass_at = vec![0.0f64; ranking.len() + 1];
        for (i, p) in data.packages.iter().enumerate() {
            if max_rank[i] <= ranking.len() {
                mass_at[max_rank[i]] += p.prob;
            }
            // Packages needing an API outside the ranking never become
            // supported (cannot happen for syscalls, kept for safety).
        }
        let mut points = Vec::with_capacity(ranking.len() + 1);
        let mut acc = 0.0;
        for m in mass_at {
            acc += m;
            points.push(if total_mass > 0.0 { acc / total_mass } else { 0.0 });
        }
        Self { ranking, points }
    }

    /// Computes the curve in **greedy marginal-gain order** instead of
    /// static importance order: each position of `ranking` is the syscall
    /// whose addition buys the largest completeness gain at that point,
    /// evaluated lazily through the incremental [`CompletenessEngine`].
    /// Every point is bit-identical to a from-scratch
    /// [`Metrics::syscall_completeness`] over the same prefix.
    pub fn compute_greedy(metrics: &Metrics<'_>) -> Self {
        let greedy = run_greedy(metrics, &HashSet::new(), usize::MAX);
        let mut points = Vec::with_capacity(greedy.picks.len() + 1);
        points.push(greedy.baseline);
        points.extend(greedy.after.iter().copied());
        Self {
            ranking: greedy.picks.iter().map(|&(nr, _)| nr).collect(),
            points,
        }
    }

    /// Completeness with the top `n` calls supported.
    pub fn at(&self, n: usize) -> f64 {
        self.points[n.min(self.points.len() - 1)]
    }

    /// Smallest N reaching at least the given completeness.
    pub fn calls_needed(&self, completeness: f64) -> usize {
        self.points
            .iter()
            .position(|&c| c >= completeness)
            .unwrap_or(self.points.len() - 1)
    }
}

/// The next `n` syscalls a compat layer should implement, in greedy
/// marginal-gain order, with each pick's exact completeness gain.
///
/// Starts from `supported` and repeatedly commits the syscall whose
/// addition buys the largest weighted-completeness gain (ties broken by
/// the paper's importance order). Gains are evaluated lazily: most
/// candidates are dismissed by a non-increasing upper bound and never
/// probed.
pub fn greedy_suggestions(
    metrics: &Metrics<'_>,
    supported: &HashSet<u32>,
    n: usize,
) -> Vec<(u32, f64)> {
    run_greedy(metrics, supported, n).picks
}

/// [`greedy_suggestions`] under a write-ahead journal: every committed
/// pick is appended (syscall number plus the gain and after-completeness
/// f64 bit patterns) as it is decided, and with `resume` the journaled
/// pick prefix is *replayed* — committed into the engine without any
/// probing — before live greedy selection continues. Each replayed pick's
/// gain and cumulative completeness are re-derived by the engine and
/// verified bit-for-bit against the journal; a mismatch is a
/// [`JournalError::Diverged`], never a silently different plan.
///
/// `corpus` and `options` identify the measured dataset (the caller's
/// corpus fingerprint and [`AnalysisOptions::fingerprint`](apistudy_analysis::AnalysisOptions::fingerprint));
/// they, the catalog, the starting `supported` set, and `n` are bound
/// into the journal header's [`RunFingerprint`].
pub fn greedy_suggestions_journaled(
    metrics: &Metrics<'_>,
    supported: &HashSet<u32>,
    n: usize,
    corpus: u64,
    options: u64,
    journal_path: &Path,
    resume: bool,
) -> Result<(Vec<(u32, f64)>, JournalStats), JournalError> {
    let fp = RunFingerprint {
        kind: RunKind::GreedyPlan,
        corpus,
        options,
        catalog: catalog_fingerprint(&metrics.data().catalog),
        plan: {
            let mut nrs: Vec<u32> = supported.iter().copied().collect();
            nrs.sort_unstable();
            let mut h = fold_hash(0, n as u64);
            for nr in nrs {
                h = fold_hash(h, u64::from(nr));
            }
            h
        },
    };
    let (mut journal, records) = if resume {
        Journal::resume_or_create(journal_path, &fp)?
    } else {
        (Journal::create(journal_path, &fp)?, Vec::new())
    };
    let mut replay = Vec::with_capacity(records.len());
    for rec in records {
        match rec {
            JournalRecord::GreedyPick { nr, gain_bits, after_bits } => {
                replay.push((nr, gain_bits, after_bits))
            }
            other => {
                return Err(JournalError::Diverged(format!(
                    "unexpected record in a greedy journal: {other:?}"
                )))
            }
        }
    }
    if replay.len() > n {
        return Err(JournalError::Diverged(format!(
            "journal holds {} picks, run asked for {n}",
            replay.len()
        )));
    }
    let run = run_greedy_replayed(metrics, supported, n, &replay, |pick| {
        journal.append(&pick)
    })?;
    Ok((run.picks, journal.stats()))
}

/// Result of a greedy planning run.
struct GreedyRun {
    /// `(syscall number, exact completeness gain)` in pick order.
    picks: Vec<(u32, f64)>,
    /// Completeness after each pick (`after[k]` follows `picks[k]`).
    after: Vec<f64>,
    /// Completeness before the first pick.
    baseline: f64,
}

/// Slack for the lazy-evaluation cutoff: upper bounds are maintained by
/// subtracting flipped-component masses, so they can drift a few ulps
/// below the true bound. The slack keeps the cutoff sound (worst case: a
/// handful of extra probes).
const UB_SLACK: f64 = 1e-12;

/// Lazy-greedy (CELF-style) syscall selection over the incremental
/// engine.
///
/// Weighted completeness is **supermodular** in the supported set (a
/// package flips only once its *last* missing API arrives, so marginal
/// gains grow as the set grows). The classic CELF trick of reusing stale
/// *gains* as upper bounds is therefore invalid here. What is valid is a
/// structural bound: the gain of adding syscall `a` can never exceed the
/// mass of the currently-failing components whose dependency-closed
/// footprint contains `a` — and since greedy only ever adds support,
/// failing components only disappear, so that bound is non-increasing
/// across rounds. Candidates are scanned in descending bound order and
/// probing stops as soon as the best exact gain beats every remaining
/// bound.
fn run_greedy(
    metrics: &Metrics<'_>,
    supported: &HashSet<u32>,
    limit: usize,
) -> GreedyRun {
    run_greedy_replayed(metrics, supported, limit, &[], |_| {
        Ok::<(), std::convert::Infallible>(())
    })
    .unwrap_or_else(|e| match e {
        GreedyRunError::Sink(never) => match never {},
        GreedyRunError::Diverged(why) => {
            unreachable!("empty replay cannot diverge: {why}")
        }
    })
}

/// [`run_greedy`] failures: replay divergence, or an error from the
/// per-pick sink (journal appends). Generic over the sink's error so the
/// un-journaled path statically cannot fail.
enum GreedyRunError<E> {
    Diverged(String),
    Sink(E),
}

impl From<GreedyRunError<JournalError>> for JournalError {
    fn from(e: GreedyRunError<JournalError>) -> Self {
        match e {
            GreedyRunError::Diverged(why) => JournalError::Diverged(why),
            GreedyRunError::Sink(e) => e,
        }
    }
}

/// The lazy-greedy loop with a replay prefix and a per-pick sink.
///
/// The first `replay.len()` rounds skip sorting and probing entirely:
/// each `(nr, gain_bits, after_bits)` tuple is committed straight into
/// the engine (upper bounds still updated from the flipped components, so
/// later live rounds stay sound) and the engine's exact delta and
/// cumulative completeness are verified bit-for-bit against the recorded
/// values. Every *live* pick is handed to `on_pick` before it is returned
/// — the journaled path appends it there, write-ahead of any use.
fn run_greedy_replayed<E>(
    metrics: &Metrics<'_>,
    supported: &HashSet<u32>,
    limit: usize,
    replay: &[(u32, u64, u64)],
    mut on_pick: impl FnMut(JournalRecord) -> Result<(), E>,
) -> Result<GreedyRun, GreedyRunError<E>> {
    let data = metrics.data();
    let cond = metrics.condensation();
    let ncomp = cond.len();
    let total_mass = metrics.total_mass;
    let mut engine = CompletenessEngine::for_syscalls(metrics, supported);
    let baseline = engine.completeness();

    // Upper bounds live in completeness units (mass / total mass).
    let comp_mass: Vec<f64> = (0..ncomp)
        .map(|c| {
            if total_mass == 0.0 {
                return 0.0;
            }
            cond.members(c as u32)
                .iter()
                .map(|&i| data.packages[i].prob)
                .sum::<f64>()
                / total_mass
        })
        .collect();

    struct Cand {
        nr: u32,
        api: Api,
        /// Position in the importance ranking (tie-break order).
        rank: usize,
        /// Non-increasing upper bound on this candidate's gain.
        ub: f64,
    }
    let mut cands: Vec<Cand> = metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .enumerate()
        .filter_map(|(rank, (api, _))| match api {
            Api::Syscall(nr) if !supported.contains(&nr) => {
                Some(Cand { nr, api, rank, ub: 0.0 })
            }
            _ => None,
        })
        .collect();
    for (c, &mass) in comp_mass.iter().enumerate().take(ncomp) {
        if engine.comp_ok(c as u32) || mass == 0.0 {
            continue;
        }
        for cand in cands.iter_mut() {
            if metrics.comp_closure[c].contains(cand.api) {
                cand.ub += mass;
            }
        }
    }

    let total = cands.len().min(limit);
    let mut picks = Vec::with_capacity(total);
    let mut after = Vec::with_capacity(total);
    while picks.len() < total {
        let round = picks.len();
        let mut probed_gain: Option<f64> = None;
        let (bi, recorded) = if let Some(&(nr, gain_bits, after_bits)) =
            replay.get(round)
        {
            // Replay: the journal already decided this round — commit it
            // without sorting or probing a single candidate.
            let Some(bi) = cands.iter().position(|c| c.nr == nr) else {
                return Err(GreedyRunError::Diverged(format!(
                    "replayed pick {round} (syscall {nr}) is not an \
                     available candidate"
                )));
            };
            (bi, Some((gain_bits, after_bits)))
        } else {
            cands.sort_by(|x, y| {
                y.ub.total_cmp(&x.ub).then(x.rank.cmp(&y.rank))
            });
            // Probe in descending-bound order until no remaining bound
            // can beat the best exact gain seen.
            let mut best: Option<(usize, f64)> = None;
            for (i, cand) in cands.iter().enumerate() {
                if let Some((_, bg)) = best {
                    if bg > cand.ub + UB_SLACK {
                        break;
                    }
                }
                let g = engine.probe_gain(cand.api);
                let replace = match best {
                    None => true,
                    Some((bi, bg)) => {
                        g > bg || (g == bg && cand.rank < cands[bi].rank)
                    }
                };
                if replace {
                    best = Some((i, g));
                }
            }
            // Internal invariant, not input-reachable: the enclosing loop
            // runs only while cands is non-empty, so the probe above
            // always selects at least one candidate.
            let (bi, bg) = best.expect("non-empty candidate list");
            probed_gain = Some(bg);
            (bi, None)
        };
        let nr = cands[bi].nr;
        let delta = engine.add_api(cands[bi].api);
        let cum = engine.completeness();
        if let Some(bg) = probed_gain {
            debug_assert_eq!(delta.to_bits(), bg.to_bits());
        }
        match recorded {
            Some((gain_bits, after_bits)) => {
                // The engine re-derives the replayed pick's effect; any
                // bit of drift means the journal and this run disagree.
                if delta.to_bits() != gain_bits || cum.to_bits() != after_bits
                {
                    return Err(GreedyRunError::Diverged(format!(
                        "replayed pick {round} (syscall {nr}) does not \
                         reproduce: gain bits {:#018x} vs journaled \
                         {gain_bits:#018x}, completeness bits {:#018x} vs \
                         journaled {after_bits:#018x}",
                        delta.to_bits(),
                        cum.to_bits(),
                    )));
                }
            }
            None => on_pick(JournalRecord::GreedyPick {
                nr,
                gain_bits: delta.to_bits(),
                after_bits: cum.to_bits(),
            })
            .map_err(GreedyRunError::Sink)?,
        }
        picks.push((nr, delta));
        after.push(cum);
        let flipped: Vec<u32> = engine.last_flipped().to_vec();
        cands.swap_remove(bi);
        for &c in &flipped {
            let mass = comp_mass[c as usize];
            if mass == 0.0 {
                continue;
            }
            for cand in cands.iter_mut() {
                if metrics.comp_closure[c as usize].contains(cand.api) {
                    cand.ub -= mass;
                }
            }
        }
    }
    Ok(GreedyRun { picks, after, baseline })
}

/// One development stage (Table 4).
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage label (I–V).
    pub label: &'static str,
    /// Number of calls added in this stage.
    pub added: usize,
    /// Cumulative number of calls after this stage.
    pub cumulative: usize,
    /// Sample syscall names from this stage.
    pub samples: Vec<String>,
    /// Weighted completeness reached.
    pub completeness: f64,
}

/// Partitions the curve into the paper's five stages (40 / 81 / 145 / 202 /
/// everything used).
pub fn stages(metrics: &Metrics<'_>, curve: &CompletenessCurve) -> Vec<Stage> {
    let data = metrics.data();
    // The last stage ends where importance hits zero (all used calls).
    let used = curve
        .ranking
        .iter()
        .take_while(|&&nr| metrics.importance(Api::Syscall(nr)) > 0.0)
        .count();
    let bounds = [40usize, 81, 145, 202, used.max(202)];
    let labels = ["I", "II", "III", "IV", "V"];
    let mut out = Vec::with_capacity(5);
    let mut prev = 0usize;
    for (i, &b) in bounds.iter().enumerate() {
        let b = b.min(curve.ranking.len());
        let samples: Vec<String> = curve.ranking[prev..b]
            .iter()
            .take(10)
            .filter_map(|&nr| {
                data.catalog.syscalls.by_number(nr).map(|d| d.name.to_owned())
            })
            .collect();
        out.push(Stage {
            label: labels[i],
            added: b - prev,
            cumulative: b,
            samples,
            completeness: curve.at(b),
        });
        prev = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 200, installations: 50_000 },
            CalibrationSpec::default(),
            11,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn curve_is_monotone_and_reaches_one() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        // One entry per catalog syscall — derived, not hard-coded, so a
        // catalog revision cannot silently invalidate the test.
        assert_eq!(curve.ranking.len(), data.catalog.syscalls.len());
        for w in curve.points.windows(2) {
            assert!(w[1] >= w[0], "curve must be monotone");
        }
        assert!((curve.at(323) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_curve_is_monotone_reaches_one_and_matches_scratch() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute_greedy(&metrics);
        assert_eq!(curve.ranking.len(), data.catalog.syscalls.len());
        for w in curve.points.windows(2) {
            assert!(w[1] >= w[0], "greedy curve must be monotone");
        }
        assert!((curve.points.last().unwrap() - 1.0).abs() < 1e-9);
        // Every point is bit-identical to a from-scratch evaluation of the
        // same support prefix.
        for k in [0usize, 1, 40, 120, curve.ranking.len()] {
            let prefix: HashSet<u32> =
                curve.ranking[..k].iter().copied().collect();
            assert_eq!(
                curve.points[k].to_bits(),
                metrics.syscall_completeness(&prefix).to_bits(),
                "prefix {k}"
            );
        }
    }

    #[test]
    fn greedy_dominates_importance_order() {
        // Greedy optimizes the curve directly, so its prefix completeness
        // can never trail the static importance order by construction of
        // the first pick, and in practice dominates everywhere. Check a
        // sample of prefixes (greedy ≥ static, small tolerance for the
        // tail where both saturate).
        let data = data();
        let metrics = Metrics::new(&data);
        let static_curve = CompletenessCurve::compute(&metrics);
        let greedy_curve = CompletenessCurve::compute_greedy(&metrics);
        for k in [50usize, 100, 150, 200, 250, 323] {
            assert!(
                greedy_curve.at(k) >= static_curve.at(k) - 1e-12,
                "greedy must not trail at {k}: {} vs {}",
                greedy_curve.at(k),
                static_curve.at(k)
            );
        }
    }

    #[test]
    fn greedy_matches_exhaustive_oracle() {
        // The lazy bound-pruned greedy must pick exactly what a brute
        // force greedy — every candidate re-evaluated from scratch every
        // round — picks, gains bit-identical.
        let data = StudyData::from_synth(&SynthRepo::new(
            Scale { packages: 150, installations: 40_000 },
            CalibrationSpec::default(),
            7,
        ));
        let metrics = Metrics::new(&data);
        let rounds = 25;
        let lazy = greedy_suggestions(&metrics, &HashSet::new(), rounds);
        assert_eq!(lazy.len(), rounds);

        let ranking: Vec<u32> = metrics
            .importance_ranking(ApiKind::Syscall)
            .into_iter()
            .map(|(api, _)| match api {
                Api::Syscall(nr) => nr,
                _ => unreachable!(),
            })
            .collect();
        let mut supported: HashSet<u32> = HashSet::new();
        let mut current = metrics.syscall_completeness(&supported);
        for (round, &(picked, gain)) in lazy.iter().enumerate() {
            let mut best: Option<(u32, f64, usize)> = None;
            for (rank, &nr) in ranking.iter().enumerate() {
                if supported.contains(&nr) {
                    continue;
                }
                let mut trial = supported.clone();
                trial.insert(nr);
                let g = metrics.syscall_completeness(&trial) - current;
                let replace = match best {
                    None => true,
                    Some((_, bg, br)) => g > bg || (g == bg && rank < br),
                };
                if replace {
                    best = Some((nr, g, rank));
                }
            }
            let (oracle_nr, oracle_gain, _) = best.unwrap();
            assert_eq!(picked, oracle_nr, "round {round}");
            assert_eq!(
                gain.to_bits(),
                oracle_gain.to_bits(),
                "round {round} gain"
            );
            supported.insert(picked);
            current = metrics.syscall_completeness(&supported);
        }
    }

    #[test]
    fn greedy_suggestions_resume_from_partial_support() {
        let data = data();
        let metrics = Metrics::new(&data);
        let base: HashSet<u32> = CompletenessCurve::compute(&metrics)
            .ranking
            .iter()
            .take(60)
            .copied()
            .collect();
        let picks = greedy_suggestions(&metrics, &base, 10);
        assert_eq!(picks.len(), 10);
        for &(nr, gain) in &picks {
            assert!(!base.contains(&nr), "must not re-suggest {nr}");
            assert!(gain >= 0.0);
        }
        // Committing the picks reproduces the reported cumulative gain.
        let mut grown = base.clone();
        grown.extend(picks.iter().map(|&(nr, _)| nr));
        let before = metrics.syscall_completeness(&base);
        let after = metrics.syscall_completeness(&grown);
        let reported: f64 = picks.iter().map(|&(_, g)| g).sum();
        assert!(
            (after - before - reported).abs() < 1e-9,
            "gains must account for the completeness growth"
        );
    }

    #[test]
    fn journaled_greedy_is_bitwise_stable_across_resume() {
        let data = data();
        let metrics = Metrics::new(&data);
        let path = std::env::temp_dir().join(format!(
            "apistudy-greedy-{}.apsj",
            std::process::id()
        ));
        let none = HashSet::new();
        let plain = greedy_suggestions(&metrics, &none, 12);

        // A fresh journaled run picks bit-for-bit what the plain one does.
        let (full, stats) = greedy_suggestions_journaled(
            &metrics, &none, 12, 0xC0FFEE, 0xD0, &path, false,
        )
        .expect("fresh journaled run");
        assert_eq!(stats, JournalStats { replayed: 0, appended: 12 });
        let bits = |picks: &[(u32, f64)]| -> Vec<(u32, u64)> {
            picks.iter().map(|&(nr, g)| (nr, g.to_bits())).collect()
        };
        assert_eq!(bits(&plain), bits(&full));

        // Resuming the complete journal replays every pick (no engine
        // probing, every gain re-verified) and appends nothing.
        let (replayed, stats) = greedy_suggestions_journaled(
            &metrics, &none, 12, 0xC0FFEE, 0xD0, &path, true,
        )
        .expect("full replay");
        assert_eq!(stats, JournalStats { replayed: 12, appended: 0 });
        assert_eq!(bits(&plain), bits(&replayed));

        // Tear the journal's tail mid-record (a crash during the last
        // append): resume replays the surviving prefix and recomputes the
        // rest, still bit-identical.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let (resumed, stats) = greedy_suggestions_journaled(
            &metrics, &none, 12, 0xC0FFEE, 0xD0, &path, true,
        )
        .expect("partial resume");
        assert_eq!(stats, JournalStats { replayed: 11, appended: 1 });
        assert_eq!(bits(&plain), bits(&resumed));

        // A different starting set is a different plan: refused.
        let other: HashSet<u32> = [7u32].into_iter().collect();
        match greedy_suggestions_journaled(
            &metrics, &other, 12, 0xC0FFEE, 0xD0, &path, true,
        ) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            r => panic!("expected fingerprint mismatch, got {r:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hello_world_needs_about_40_calls() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        // Nothing runs with fewer than ~40 calls...
        assert!(curve.at(30) < 0.005, "at 30: {}", curve.at(30));
        // ...but the first packages appear by 40.
        assert!(curve.at(45) > 0.0, "at 45: {}", curve.at(45));
    }

    #[test]
    fn knees_match_figure_3_shape() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        let at81 = curve.at(81);
        let at145 = curve.at(145);
        let at202 = curve.at(202);
        assert!(at81 > 0.01 && at81 < 0.40, "at 81: {at81}");
        assert!(at145 > 0.25 && at145 < 0.75, "at 145: {at145}");
        assert!(at202 > 0.70, "at 202: {at202}");
        assert!(at81 < at145 && at145 < at202);
    }

    #[test]
    fn stage_partition_covers_ranking() {
        let data = data();
        let metrics = Metrics::new(&data);
        let curve = CompletenessCurve::compute(&metrics);
        let st = stages(&metrics, &curve);
        assert_eq!(st.len(), 5);
        assert_eq!(st[0].cumulative, 40);
        assert_eq!(st[1].cumulative, 81);
        assert_eq!(st[2].cumulative, 145);
        assert_eq!(st[3].cumulative, 202);
        assert!(st[4].cumulative >= 202);
        for w in st.windows(2) {
            assert!(w[1].completeness >= w[0].completeness);
        }
    }
}
