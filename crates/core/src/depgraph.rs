//! Condensation of the package `depends` graph.
//!
//! Every headline metric — weighted completeness (Appendix A.2), the
//! Figure 3 curve, the dependency-closed footprints behind Figure 2's
//! importance bands — is a fixed point over the same graph: package →
//! dependency edges, with APT cycles (mutual `depends`) allowed. Instead
//! of iterating those fixed points to convergence per query, [`Condensation`]
//! runs Tarjan's strongly-connected-components algorithm **once** per
//! [`StudyData`](crate::pipeline::StudyData) and exposes the component DAG
//! in dependencies-first topological order. Any monotone propagation
//! (footprint closure OR, failure AND, max-rank) then completes in a
//! single pass over the components, because within an SCC every member
//! shares the propagated value and across SCCs the order guarantees a
//! component's dependencies are finished before it starts.
//!
//! The traversal is iterative (explicit DFS frames), so a 30,976-package
//! dependency chain — the paper's full archive laid end to end — cannot
//! overflow the stack.

/// Sentinel for an unvisited node in the Tarjan traversal.
const UNVISITED: u32 = u32::MAX;

/// The strongly-connected-component condensation of a dependency graph.
///
/// Nodes are package indices `0..n`; edges point from a package to each of
/// its dependencies. Component ids are assigned in Tarjan emission order,
/// which for this edge direction means **dependencies before dependents**:
/// for every condensation edge `c → d` (component `c` depends on component
/// `d`), `d < c`. Processing components in ascending id order is therefore
/// a bottom-up topological sweep.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Package index → component id.
    scc_of: Vec<u32>,
    /// Component id → member package indices, ascending.
    members: Vec<Vec<usize>>,
    /// Component id → dependency component ids (deduplicated, ascending,
    /// never self).
    deps: Vec<Vec<u32>>,
    /// Component id → dependent component ids (the reverse edges,
    /// ascending).
    rdeps: Vec<Vec<u32>>,
}

impl Condensation {
    /// Condenses the graph whose node `i` has the dependency edges
    /// `dep_indices[i]`. Self-edges and duplicate edges are tolerated.
    pub fn new(dep_indices: &[Vec<usize>]) -> Self {
        let n = dep_indices.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![0u32; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        // Explicit DFS frames: (node, next outgoing edge position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        let mut next_index = 0u32;
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if let Some(&w) = dep_indices[v].get(frame.1) {
                    frame.1 += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                    continue;
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let comp = members.len() as u32;
                    let mut ms = Vec::new();
                    loop {
                        // Internal invariant, not input-reachable: Tarjan
                        // pushes v before any descendant completes, so the
                        // stack holds at least v when low[v] == index[v].
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = comp;
                        ms.push(w);
                        if w == v {
                            break;
                        }
                    }
                    ms.sort_unstable();
                    members.push(ms);
                }
            }
        }
        // Condensation edges, deduplicated per component.
        let ncomp = members.len();
        let mut deps: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        let mut rdeps: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        for (v, ds) in dep_indices.iter().enumerate() {
            let cv = scc_of[v];
            for &d in ds {
                let cd = scc_of[d];
                if cd != cv {
                    debug_assert!(
                        cd < cv,
                        "tarjan order must put dependencies first"
                    );
                    deps[cv as usize].push(cd);
                }
            }
        }
        for list in &mut deps {
            list.sort_unstable();
            list.dedup();
        }
        for (cv, list) in deps.iter().enumerate() {
            for &cd in list {
                rdeps[cd as usize].push(cv as u32);
            }
        }
        Self { scc_of, members, deps, rdeps }
    }

    /// Number of strongly connected components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the graph had no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The component a package belongs to.
    pub fn comp_of(&self, package: usize) -> u32 {
        self.scc_of[package]
    }

    /// The member packages of a component, ascending.
    pub fn members(&self, comp: u32) -> &[usize] {
        &self.members[comp as usize]
    }

    /// The components a component depends on (all ids `< comp`).
    pub fn deps(&self, comp: u32) -> &[u32] {
        &self.deps[comp as usize]
    }

    /// The components depending on a component (all ids `> comp`).
    pub fn dependents(&self, comp: u32) -> &[u32] {
        &self.rdeps[comp as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(usize, usize)], n: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); n];
        for &(a, b) in pairs {
            out[a].push(b);
        }
        out
    }

    #[test]
    fn acyclic_chain_is_one_component_each() {
        // 0 → 1 → 2: three singleton components, dependencies first.
        let c = Condensation::new(&edges(&[(0, 1), (1, 2)], 3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.members(c.comp_of(2)), &[2]);
        assert!(c.comp_of(2) < c.comp_of(1));
        assert!(c.comp_of(1) < c.comp_of(0));
        assert_eq!(c.deps(c.comp_of(0)), &[c.comp_of(1)]);
        assert_eq!(c.dependents(c.comp_of(2)), &[c.comp_of(1)]);
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        // 0 ↔ 1 cycle, 2 depends on the cycle, the cycle depends on 3.
        let c = Condensation::new(&edges(&[(0, 1), (1, 0), (2, 0), (0, 3)], 4));
        assert_eq!(c.len(), 3);
        assert_eq!(c.comp_of(0), c.comp_of(1));
        assert_eq!(c.members(c.comp_of(0)), &[0, 1]);
        assert!(c.comp_of(3) < c.comp_of(0));
        assert!(c.comp_of(0) < c.comp_of(2));
    }

    #[test]
    fn self_and_duplicate_edges_are_tolerated() {
        let c = Condensation::new(&edges(&[(0, 0), (0, 1), (0, 1)], 2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.deps(c.comp_of(0)), &[c.comp_of(1)]);
    }

    #[test]
    fn diamond_preserves_topological_invariant() {
        // 0 → {1, 2} → 3.
        let c = Condensation::new(&edges(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4));
        assert_eq!(c.len(), 4);
        for comp in 0..c.len() as u32 {
            for &d in c.deps(comp) {
                assert!(d < comp, "dependency {d} must precede {comp}");
            }
            for &r in c.dependents(comp) {
                assert!(r > comp, "dependent {r} must follow {comp}");
            }
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 50k-node chain: the iterative traversal must survive what a
        // recursive Tarjan would not.
        let n = 50_000;
        let deps: Vec<Vec<usize>> =
            (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect();
        let c = Condensation::new(&deps);
        assert_eq!(c.len(), n);
        assert_eq!(c.comp_of(n - 1), 0, "the chain's leaf is emitted first");
        assert_eq!(c.comp_of(0), (n - 1) as u32);
    }

    #[test]
    fn empty_graph() {
        let c = Condensation::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
