//! The corruption-degradation sweep: how the study's headline numbers
//! shift as the corpus decays.
//!
//! The paper's pipeline measured a pristine package mirror; a real-world
//! rerun would face bit-rot, truncated downloads, and hostile inputs.
//! [`corruption_sweep`] reruns the full pipeline over the same repository
//! at increasing injected-corruption rates (same fault seed, so the
//! injection sets are nested — see [`apistudy_corpus::fault`]) and
//! records, per rate, both the robustness ledger (injections, skips,
//! partial packages) and the metrics the paper reports (distinct syscalls
//! observed, weighted completeness of a fixed support set). The sweep
//! quantifies *graceful* degradation: metrics must move smoothly and
//! monotonically with the corruption rate, never abort, and stay
//! bit-identical at rate zero.

use std::collections::HashSet;
use std::path::Path;

use apistudy_analysis::AnalysisOptions;
use apistudy_catalog::{ApiKind, Catalog};
use apistudy_corpus::{FaultPlan, SynthRepo};
use apistudy_report::{pct, Align, TextTable};

use crate::cache::{fold_hash, AnalysisCache, CacheMode};
use crate::journal::{
    catalog_fingerprint, corpus_fingerprint, Journal, JournalError,
    JournalRecord, JournalStats, RunFingerprint, RunKind,
};
use crate::{metrics::Metrics, pipeline::StudyData};

/// How many of the clean baseline's top-ranked syscalls form the fixed
/// support set whose weighted completeness the sweep tracks (the paper's
/// "most important N" framing, §4).
pub const SWEEP_SUPPORT_TOP_N: usize = 100;

/// One measured point of the corruption sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPoint {
    /// Injected corruption rate (fraction of ELF files).
    pub rate: f64,
    /// Faults injected at this rate.
    pub injected: u32,
    /// Injected faults that must quarantine their binary.
    pub injected_fatal: u32,
    /// Binaries the pipeline skipped (classified quarantines).
    pub skipped_binaries: u32,
    /// Of the skipped binaries, those abandoned by the wall-clock
    /// watchdog (zero unless `APISTUDY_ITEM_DEADLINE_MS` is set).
    pub deadline_skipped: u32,
    /// Packages flagged with a partial footprint.
    pub partial_packages: u32,
    /// Packages abandoned wholesale after double panics.
    pub quarantined_packages: u32,
    /// Distinct syscalls observed across all package footprints.
    pub distinct_syscalls: usize,
    /// Weighted completeness of the clean baseline's top-N syscall set
    /// against this run's footprints.
    pub completeness_top: f64,
}

/// Reruns the pipeline at each corruption rate and measures the fallout.
///
/// The support set for the completeness column is fixed once, from the
/// *clean* baseline's importance ranking, so the column isolates how
/// corruption moves the metric rather than how it moves the ranking.
///
/// One [`AnalysisCache`] (mode from `APISTUDY_CACHE`, default `mem`) is
/// threaded through the baseline and every rate: the clean run warms it,
/// and each sweep point then re-analyzes only the binaries its
/// [`FaultPlan`] actually mutated — everything byte-identical to the
/// baseline is a cache hit. The measured points are bit-identical to an
/// un-cached sweep (`APISTUDY_CACHE=off` restores one).
pub fn corruption_sweep(
    repo: &SynthRepo,
    options: AnalysisOptions,
    fault_seed: u64,
    rates: &[f64],
) -> Vec<DegradationPoint> {
    let cache = AnalysisCache::new(CacheMode::from_env());
    corruption_sweep_with(repo, options, fault_seed, rates, &cache)
}

/// [`corruption_sweep`] with a caller-supplied cache — the CLI passes its
/// `--cache`-selected (possibly disk-backed) instance and then reads the
/// traffic counters back for its footer; benches pass `off`/`mem` caches
/// to measure cold versus warm sweeps.
pub fn corruption_sweep_with(
    repo: &SynthRepo,
    options: AnalysisOptions,
    fault_seed: u64,
    rates: &[f64],
    cache: &AnalysisCache,
) -> Vec<DegradationPoint> {
    // Materialize the corpus once and hold it for the sweep's duration:
    // every point then clones packages (a memcpy of the corpus's bytes)
    // instead of re-synthesizing them, which costs over an order of
    // magnitude more. The memory price is the corpus's byte size (a few
    // MiB at test scale), paid once instead of regenerated per point.
    let packages = repo.materialize_all();
    let baseline =
        StudyData::from_packages_cached(repo, &packages, options, Some(cache));
    let baseline_metrics = Metrics::new(&baseline);
    let supported: HashSet<u32> = baseline_metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .take(SWEEP_SUPPORT_TOP_N)
        .filter_map(|(api, _)| match api {
            apistudy_catalog::Api::Syscall(nr) => Some(nr),
            _ => None,
        })
        .collect();
    // The unsupported mask depends only on the (shared) catalog and the
    // fixed support set — build it once instead of once per sweep point.
    let unsupported = baseline_metrics.syscall_unsupported_mask(&supported);
    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::new(fault_seed, rate);
            let data = StudyData::from_packages_faulted_cached(
                repo,
                &packages,
                options,
                &plan,
                Some(cache),
            );
            measure(rate, &data, &unsupported)
        })
        .collect()
}

/// [`corruption_sweep_with`] under a write-ahead journal: the baseline's
/// support set and every completed sweep point are appended to `journal`
/// as they finish, and with `resume` the journaled prefix is replayed
/// instead of recomputed. The returned points are bit-identical to an
/// uninterrupted (or un-journaled) sweep:
///
/// - replayed points carry the exact f64 bit patterns the original run
///   measured (the journal stores bits, never decimal);
/// - a replayed support set short-circuits the whole baseline pipeline
///   run — the unsupported mask is a pure function of the catalog and the
///   set (see [`Metrics::syscall_unsupported_mask`]), so it is rebuilt
///   from [`Catalog::linux_3_19`] without touching a single binary;
/// - the journal header's [`RunFingerprint`] binds the file to this
///   corpus, these [`AnalysisOptions`], this catalog, and this fault
///   plan (seed + rate grid + support-set size); any drift is refused.
///
/// A `Disk`-mode `cache` is persisted after the baseline and after each
/// appended point, so a crash loses at most one point's analyses; other
/// modes make `persist` a no-op.
pub fn corruption_sweep_journaled(
    repo: &SynthRepo,
    options: AnalysisOptions,
    fault_seed: u64,
    rates: &[f64],
    cache: &AnalysisCache,
    journal_path: &Path,
    resume: bool,
) -> Result<(Vec<DegradationPoint>, JournalStats), JournalError> {
    let fp = RunFingerprint {
        kind: RunKind::CorruptionSweep,
        corpus: corpus_fingerprint(repo),
        options: options.fingerprint(),
        catalog: catalog_fingerprint(&Catalog::linux_3_19()),
        plan: {
            let mut h = fold_hash(0, fault_seed);
            for &rate in rates {
                h = fold_hash(h, rate.to_bits());
            }
            fold_hash(h, SWEEP_SUPPORT_TOP_N as u64)
        },
    };
    let (mut journal, records) = if resume {
        Journal::resume_or_create(journal_path, &fp)?
    } else {
        (Journal::create(journal_path, &fp)?, Vec::new())
    };

    // A valid sweep journal is one optional SupportSet followed by sweep
    // points in rate order; anything else diverged from this code's own
    // append discipline.
    let mut support_numbers: Option<Vec<u32>> = None;
    let mut replayed: Vec<DegradationPoint> = Vec::new();
    for rec in records {
        match rec {
            JournalRecord::SupportSet(numbers) => {
                if support_numbers.is_some() || !replayed.is_empty() {
                    return Err(JournalError::Diverged(
                        "support set recorded twice or after a sweep point"
                            .into(),
                    ));
                }
                support_numbers = Some(numbers);
            }
            JournalRecord::SweepPoint(p) => {
                if support_numbers.is_none() {
                    return Err(JournalError::Diverged(
                        "sweep point recorded before the support set".into(),
                    ));
                }
                let i = replayed.len();
                match rates.get(i) {
                    Some(r) if r.to_bits() == p.rate.to_bits() => {}
                    _ => {
                        return Err(JournalError::Diverged(format!(
                            "journaled point {i} has rate {}, run expects {}",
                            p.rate,
                            rates.get(i).copied().unwrap_or(f64::NAN),
                        )))
                    }
                }
                replayed.push(p);
            }
            other => {
                return Err(JournalError::Diverged(format!(
                    "unexpected record in a sweep journal: {other:?}"
                )))
            }
        }
    }

    let mut points = replayed;
    if points.len() == rates.len() && support_numbers.is_some() {
        // Fully replayed: never materialize the corpus, never touch a
        // binary — the whole sweep costs one journal read.
        return Ok((points, journal.stats()));
    }

    let packages = repo.materialize_all();
    let support_numbers = match support_numbers {
        Some(numbers) => numbers,
        None => {
            let baseline = StudyData::from_packages_cached(
                repo, &packages, options, Some(cache),
            );
            let numbers: Vec<u32> = Metrics::new(&baseline)
                .importance_ranking(ApiKind::Syscall)
                .into_iter()
                .take(SWEEP_SUPPORT_TOP_N)
                .filter_map(|(api, _)| match api {
                    apistudy_catalog::Api::Syscall(nr) => Some(nr),
                    _ => None,
                })
                .collect();
            journal.append(&JournalRecord::SupportSet(numbers.clone()))?;
            cache.persist()?;
            numbers
        }
    };
    // The mask is a pure function of catalog × support set — rebuilding
    // it here is bit-identical to `syscall_unsupported_mask` on the
    // baseline run, which is what lets a resume skip the baseline.
    let supported: HashSet<u32> = support_numbers.iter().copied().collect();
    let catalog = Catalog::linux_3_19();
    let mut unsupported = apistudy_catalog::ApiSet::new();
    for d in catalog.syscalls.iter() {
        if !supported.contains(&d.number) {
            unsupported.insert(apistudy_catalog::Api::Syscall(d.number));
        }
    }

    for &rate in &rates[points.len()..] {
        let plan = FaultPlan::new(fault_seed, rate);
        let data = StudyData::from_packages_faulted_cached(
            repo,
            &packages,
            options,
            &plan,
            Some(cache),
        );
        let point = measure(rate, &data, &unsupported);
        journal.append(&JournalRecord::SweepPoint(point.clone()))?;
        cache.persist()?;
        points.push(point);
    }
    Ok((points, journal.stats()))
}

fn measure(
    rate: f64,
    data: &StudyData,
    unsupported: &apistudy_catalog::ApiSet,
) -> DegradationPoint {
    let distinct: HashSet<u32> = data
        .packages
        .iter()
        .flat_map(|p| p.footprint.syscalls())
        .collect();
    let d = &data.diagnostics;
    DegradationPoint {
        rate,
        injected: d.injected.len() as u32,
        injected_fatal: d.injected.iter().filter(|r| r.fatal).count() as u32,
        skipped_binaries: d.total_skipped() as u32,
        deadline_skipped: d.deadline_skips() as u32,
        partial_packages: data
            .packages
            .iter()
            .filter(|p| p.partial_footprint)
            .count() as u32,
        quarantined_packages: d.quarantined_packages,
        distinct_syscalls: distinct.len(),
        completeness_top: Metrics::new(data)
            .weighted_completeness_masked(unsupported),
    }
}

/// Renders a sweep as the report's degradation table.
pub fn degradation_table(points: &[DegradationPoint]) -> TextTable {
    let mut table = TextTable::new(
        "Degradation under injected corruption (nested fault plans)",
        &[
            "rate",
            "injected",
            "fatal",
            "skipped",
            "deadline",
            "partial pkgs",
            "quarantined pkgs",
            "distinct syscalls",
            "top-100 completeness",
        ],
    )
    .aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for p in points {
        table.row(&[
            format!("{:.1}%", p.rate * 100.0),
            p.injected.to_string(),
            p.injected_fatal.to_string(),
            p.skipped_binaries.to_string(),
            p.deadline_skipped.to_string(),
            p.partial_packages.to_string(),
            p.quarantined_packages.to_string(),
            p.distinct_syscalls.to_string(),
            pct(p.completeness_top),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_corpus::{CalibrationSpec, Scale};

    #[test]
    fn sweep_is_monotone_and_clean_at_zero() {
        let repo = SynthRepo::new(
            Scale { packages: 120, installations: 10_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        let points = corruption_sweep(
            &repo,
            AnalysisOptions::default(),
            0xFA11,
            &[0.0, 0.03, 0.08],
        );
        assert_eq!(points.len(), 3);
        let zero = &points[0];
        assert_eq!(zero.injected, 0);
        assert_eq!(zero.skipped_binaries, 0);
        assert_eq!(zero.partial_packages, 0);
        for pair in points.windows(2) {
            assert!(pair[1].injected >= pair[0].injected, "nested plans");
            assert!(
                pair[1].skipped_binaries >= pair[0].skipped_binaries,
                "skips grow with rate"
            );
            assert!(
                pair[1].distinct_syscalls <= pair[0].distinct_syscalls,
                "coverage can only shrink"
            );
        }
        assert!(
            points[2].skipped_binaries > 0,
            "8% corruption must quarantine something"
        );
        let table = degradation_table(&points);
        assert_eq!(table.len(), 3);
        let text = table.render();
        assert!(text.contains("8.0%"), "table:\n{text}");
    }
}
