//! Fleet-scale seccomp synthesis: a filter for every package in the
//! corpus (ROADMAP item 5, paper §6).
//!
//! The paper notes seccomp policy generation "can be easily automated
//! using our framework"; this module does it for the *whole fleet* at
//! once and measures what that buys:
//!
//! - **Batch synthesis** — every package's footprint becomes a
//!   binary-search seccomp filter ([`BpfProgram::try_allow_tree`]),
//!   emitted in parallel across the worker pool with the same panic
//!   containment the analysis pipeline uses.
//! - **Content-hash dedup** — many packages share a footprint (identical
//!   allow-sets), so programs are built and measured once per *unique*
//!   allow-set, keyed by [`allow_set_hash`].
//! - **Shared-prefix factoring** — the unique programs are sorted by
//!   their serialized instructions and adjacent longest-common-prefixes
//!   measured: the instructions a prefix-sharing filter bank would store
//!   once instead of per filter (every program shares at least the
//!   4-instruction arch prologue).
//! - **Eval-depth accounting** — each unique filter is probed through
//!   the in-crate interpreter for every syscall number in
//!   `0..=probe_max_nr`, for both the production tree layout and the
//!   legacy linear chain, giving exact max/avg executed-instruction
//!   depths (and, with [`FleetOptions::verify`], bit-verified
//!   equivalence against the reference allow-set).
//! - **Crash-safe resume** — the expensive measurements are journaled
//!   per unique allow-set ([`JournalRecord::FleetFilter`]); a resumed
//!   run replays them (cross-checked against the rebuilt programs) and
//!   recomputes only what is missing, bit-identical to an uninterrupted
//!   run.

use std::collections::HashMap;
use std::path::Path;

use apistudy_analysis::AnalysisOptions;
use apistudy_corpus::SynthRepo;
use apistudy_report::{Align, TextTable};

use crate::cache::fold_hash;
use crate::journal::{
    catalog_fingerprint, corpus_fingerprint, Journal, JournalError,
    JournalRecord, JournalStats, RunFingerprint, RunKind,
};
use crate::pipeline::{par_map_indexed, StudyData};
use crate::seccomp_bpf::{
    coalesce, depth_profile, run_filter, BpfProgram, FilterTooLarge,
    SeccompData, AUDIT_ARCH_X86_64, RET_ALLOW,
};

/// Knobs of a fleet synthesis run. Folded into the journal fingerprint:
/// changing either makes old measurements non-resumable rather than
/// silently mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOptions {
    /// Highest syscall number every filter is probed (and verified)
    /// against: depth profiles and equivalence checks cover every `nr`
    /// in `0..=probe_max_nr`.
    pub probe_max_nr: u32,
    /// Interpreter-verify that tree and linear layouts agree with the
    /// reference allow-set at every probed number.
    pub verify: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self { probe_max_nr: 4096, verify: true }
    }
}

/// Content hash of a sorted allow-set — the fleet's dedup key.
pub fn allow_set_hash(numbers: &[u32]) -> u64 {
    let mut h = fold_hash(0, numbers.len() as u64);
    for &n in numbers {
        h = fold_hash(h, u64::from(n));
    }
    h
}

/// Everything measured about one unique allow-set.
#[derive(Debug, Clone, PartialEq)]
pub struct UniqueFilterStats {
    /// Dedup key ([`allow_set_hash`]).
    pub allow_hash: u64,
    /// Allowed syscall numbers.
    pub syscalls: u32,
    /// Coalesced inclusive ranges.
    pub ranges: u32,
    /// Packages sharing this allow-set.
    pub packages: u32,
    /// Summed installation probability of those packages.
    pub mass: f64,
    /// Binary-search tree program length, in instructions.
    pub tree_len: u32,
    /// Linear-chain program length, or `None` when the linear layout
    /// overflowed its 8-bit jump offsets (the tree is the product either
    /// way).
    pub linear_len: Option<u32>,
    /// Deepest tree evaluation over the probe range (executed
    /// instructions).
    pub tree_max_depth: u32,
    /// Summed executed tree instructions over all probes.
    pub tree_depth_total: u64,
    /// Deepest linear evaluation (0 when the linear layout failed).
    pub linear_max_depth: u32,
    /// Summed executed linear instructions over all probes.
    pub linear_depth_total: u64,
    /// Instructions shared with the neighboring program in the sorted
    /// filter bank (longest common instruction prefix).
    pub prefix_shared_insns: u32,
    /// Probes per depth profile (`probe_max_nr + 1`).
    pub probe_evals: u32,
    /// Whether the measurements were replayed from a journal.
    pub replayed: bool,
}

impl UniqueFilterStats {
    /// Mean executed instructions per tree evaluation.
    pub fn tree_avg_depth(&self) -> f64 {
        self.tree_depth_total as f64 / f64::from(self.probe_evals.max(1))
    }

    /// Mean executed instructions per linear evaluation (0 when the
    /// linear layout failed).
    pub fn linear_avg_depth(&self) -> f64 {
        self.linear_depth_total as f64 / f64::from(self.probe_evals.max(1))
    }
}

/// The fleet synthesis result: per-unique-filter measurements plus the
/// package → unique mapping. All summary numbers are derived, so two
/// reports over the same corpus compare bit-identically with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Packages synthesized (every package in the corpus).
    pub packages: u32,
    /// For each package index, the index into [`FleetReport::unique`] of
    /// its filter.
    pub package_unique: Vec<u32>,
    /// Unique allow-sets in first-seen package order.
    pub unique: Vec<UniqueFilterStats>,
    /// Syscalls in the measured catalog (the pre-filter attack surface).
    pub catalog_syscalls: u32,
    /// The probe ceiling the depth profiles used.
    pub probe_max_nr: u32,
    /// Whether tree/linear/reference equivalence was interpreter-checked
    /// for every fresh unique set.
    pub verified: bool,
    /// Journal replay/append accounting, when journaled.
    pub journal: Option<JournalStats>,
}

impl FleetReport {
    /// Packages per unique filter (how much dedup bought).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique.is_empty() {
            return 0.0;
        }
        f64::from(self.packages) / self.unique.len() as f64
    }

    /// Total tree instructions if every package shipped its own program.
    pub fn total_tree_insns_naive(&self) -> u64 {
        self.package_unique
            .iter()
            .map(|&u| u64::from(self.unique[u as usize].tree_len))
            .sum()
    }

    /// Total tree instructions after content-hash dedup.
    pub fn total_tree_insns_deduped(&self) -> u64 {
        self.unique.iter().map(|u| u64::from(u.tree_len)).sum()
    }

    /// Instructions a prefix-sharing filter bank additionally avoids
    /// storing (summed adjacent common prefixes in the sorted bank).
    pub fn prefix_shared_insns(&self) -> u64 {
        self.unique.iter().map(|u| u64::from(u.prefix_shared_insns)).sum()
    }

    /// Deepest tree evaluation anywhere in the fleet.
    pub fn max_tree_depth(&self) -> u32 {
        self.unique.iter().map(|u| u.tree_max_depth).max().unwrap_or(0)
    }

    /// Deepest linear evaluation anywhere in the fleet (among sets where
    /// the linear layout could be built at all).
    pub fn max_linear_depth(&self) -> u32 {
        self.unique.iter().map(|u| u.linear_max_depth).max().unwrap_or(0)
    }

    /// Unique sets whose linear chain overflowed its 8-bit jump offsets.
    pub fn linear_failures(&self) -> u32 {
        self.unique.iter().filter(|u| u.linear_len.is_none()).count() as u32
    }

    /// Popularity-weighted mean allow-set size: the syscalls a random
    /// installation's package can still reach once filtered.
    pub fn weighted_allow_syscalls(&self) -> f64 {
        let mass: f64 = self.unique.iter().map(|u| u.mass).sum();
        if mass == 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .unique
            .iter()
            .map(|u| u.mass * f64::from(u.syscalls))
            .sum();
        weighted / mass
    }

    /// Popularity-weighted attack-surface reduction: the fraction of the
    /// catalog's syscalls a filtered package can no longer reach,
    /// averaged over packages weighted by installation probability.
    pub fn weighted_attack_surface_reduction(&self) -> f64 {
        if self.catalog_syscalls == 0 {
            return 0.0;
        }
        1.0 - self.weighted_allow_syscalls() / f64::from(self.catalog_syscalls)
    }

    /// The most fragmented unique set (most coalesced ranges) — the
    /// worst case for both layouts and the one the O(log n) claim is
    /// gated on.
    pub fn widest(&self) -> Option<&UniqueFilterStats> {
        self.unique.iter().max_by_key(|u| u.ranges)
    }
}

/// Why a fleet synthesis run failed.
#[derive(Debug)]
pub enum FleetError {
    /// Journal create/resume/append failure (including fingerprint
    /// mismatches and replay divergence).
    Journal(JournalError),
    /// A package's footprint cannot be laid out even as a tree (over the
    /// kernel's program-length cap).
    Filter {
        /// The first package carrying the offending allow-set.
        package: String,
        /// The classified layout failure.
        err: FilterTooLarge,
    },
    /// Tree, linear, and reference allow-set disagreed at a probed
    /// number — a code-generator bug, surfaced rather than shipped.
    Verification {
        /// The allow-set's content hash.
        allow_hash: u64,
        /// The syscall number where the layouts disagreed.
        nr: u32,
    },
    /// A synthesis work item panicked deterministically.
    Synthesis(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Journal(e) => write!(f, "fleet journal: {e}"),
            FleetError::Filter { package, err } => {
                write!(f, "package {package}: {err}")
            }
            FleetError::Verification { allow_hash, nr } => write!(
                f,
                "filter {allow_hash:#018x} disagrees with its allow-set \
                 at nr {nr}"
            ),
            FleetError::Synthesis(why) => {
                write!(f, "fleet synthesis failed: {why}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> Self {
        FleetError::Journal(e)
    }
}

/// Replayed measurements for one allow-set, decoded from the journal.
#[derive(Clone, Copy)]
struct ReplayedFilter {
    tree_len: u32,
    linear_len: u32,
    tree_max_depth: u32,
    tree_depth_total: u64,
    linear_max_depth: u32,
    linear_depth_total: u64,
}

/// One measured unique set before prefix analysis: the stats plus the
/// serialized tree program (kept for the sorted-bank prefix pass).
struct Measured {
    stats: UniqueFilterStats,
    tree_bytes: Vec<u8>,
}

/// Synthesizes and measures the whole fleet, unjournaled.
pub fn synthesize_fleet(
    data: &StudyData,
    opts: FleetOptions,
) -> Result<FleetReport, FleetError> {
    synthesize_inner(data, opts, None, &HashMap::new())
}

/// [`synthesize_fleet`] with crash-safe resume: measurements are
/// journaled per unique allow-set under a [`RunKind::SeccompFleet`]
/// fingerprint (corpus ⊕ analysis options ⊕ catalog ⊕ fleet options).
/// With `resume`, a compatible journal's records are replayed —
/// cross-checked against the rebuilt programs — and only missing sets
/// are measured and appended; the report is bit-identical to an
/// uninterrupted run.
pub fn synthesize_fleet_journaled(
    data: &StudyData,
    repo: &SynthRepo,
    opts: FleetOptions,
    journal_path: &Path,
    resume: bool,
) -> Result<FleetReport, FleetError> {
    let fp = RunFingerprint {
        kind: RunKind::SeccompFleet,
        corpus: corpus_fingerprint(repo),
        options: AnalysisOptions::default().fingerprint(),
        catalog: catalog_fingerprint(&data.catalog),
        plan: {
            let h = fold_hash(0, u64::from(opts.probe_max_nr));
            fold_hash(h, u64::from(opts.verify))
        },
    };
    let (journal, records) = if resume {
        Journal::resume_or_create(journal_path, &fp)?
    } else {
        (Journal::create(journal_path, &fp)?, Vec::new())
    };
    let mut replayed: HashMap<u64, ReplayedFilter> = HashMap::new();
    for rec in records {
        match rec {
            JournalRecord::FleetFilter {
                allow_hash,
                tree_len,
                linear_len,
                tree_max_depth,
                tree_depth_total,
                linear_max_depth,
                linear_depth_total,
            } => {
                replayed.insert(
                    allow_hash,
                    ReplayedFilter {
                        tree_len,
                        linear_len,
                        tree_max_depth,
                        tree_depth_total,
                        linear_max_depth,
                        linear_depth_total,
                    },
                );
            }
            other => {
                return Err(JournalError::Diverged(format!(
                    "fleet journal holds a non-fleet record: {other:?}"
                ))
                .into())
            }
        }
    }
    synthesize_inner(data, opts, Some(journal), &replayed)
}

fn synthesize_inner(
    data: &StudyData,
    opts: FleetOptions,
    mut journal: Option<Journal>,
    replayed: &HashMap<u64, ReplayedFilter>,
) -> Result<FleetReport, FleetError> {
    let n = data.packages.len();

    // Stage 1: every package's allow-set, in parallel. The work is a
    // footprint scan — cheap, but 30k of them parallelize like the
    // pipeline's other per-package stages.
    let (allows, _) = par_map_indexed(
        n,
        None,
        |i| {
            let numbers: Vec<u32> =
                data.packages[i].footprint.syscalls().collect();
            let hash = allow_set_hash(&numbers);
            Some((numbers, hash))
        },
        |_, _, _| None,
    );

    // Stage 2: dedup identical allow-sets by content hash, first-seen
    // package order (deterministic whatever the worker schedule).
    let mut by_hash: HashMap<u64, u32> = HashMap::new();
    let mut sets: Vec<(Vec<u32>, u64)> = Vec::new();
    let mut first_member: Vec<usize> = Vec::new();
    let mut member_count: Vec<u32> = Vec::new();
    let mut member_mass: Vec<f64> = Vec::new();
    let mut package_unique = vec![0u32; n];
    for (i, slot) in allows.into_iter().enumerate() {
        let Some((numbers, hash)) = slot else {
            return Err(FleetError::Synthesis(format!(
                "footprint scan of package {} panicked",
                data.packages[i].name
            )));
        };
        let u = *by_hash.entry(hash).or_insert_with(|| {
            sets.push((numbers, hash));
            first_member.push(i);
            member_count.push(0);
            member_mass.push(0.0);
            (sets.len() - 1) as u32
        });
        member_count[u as usize] += 1;
        member_mass[u as usize] += data.packages[i].prob;
        package_unique[i] = u;
    }

    // Stage 3: build + measure each unique set in parallel. Programs are
    // always rebuilt (cheap, and lets a resume cross-check the journal);
    // the exhaustive depth probes and the equivalence verification —
    // the expensive part — are skipped for replayed sets.
    let probe_evals = opts.probe_max_nr + 1;
    let (measured, _) = par_map_indexed(
        sets.len(),
        None,
        |u| -> Result<Measured, FleetError> {
            let (numbers, hash) = &sets[u];
            let tree = BpfProgram::try_allow_tree(numbers).map_err(|err| {
                FleetError::Filter {
                    package: data.packages[first_member[u]].name.clone(),
                    err,
                }
            })?;
            let linear = BpfProgram::try_allow_list(numbers).ok();
            let ranges = coalesce(numbers).len() as u32;
            let base = UniqueFilterStats {
                allow_hash: *hash,
                syscalls: numbers.len() as u32,
                ranges,
                packages: member_count[u],
                mass: member_mass[u],
                tree_len: tree.len() as u32,
                linear_len: linear.as_ref().map(|p| p.len() as u32),
                tree_max_depth: 0,
                tree_depth_total: 0,
                linear_max_depth: 0,
                linear_depth_total: 0,
                prefix_shared_insns: 0,
                probe_evals,
                replayed: false,
            };
            let stats = if let Some(rec) = replayed.get(hash) {
                // Replay must describe the very programs we just rebuilt.
                if rec.tree_len != base.tree_len
                    || rec.linear_len != base.linear_len.unwrap_or(0)
                {
                    return Err(JournalError::Diverged(format!(
                        "journaled filter {hash:#018x} has sizes {}/{}, \
                         rebuilt programs have {}/{}",
                        rec.tree_len,
                        rec.linear_len,
                        base.tree_len,
                        base.linear_len.unwrap_or(0)
                    ))
                    .into());
                }
                UniqueFilterStats {
                    tree_max_depth: rec.tree_max_depth,
                    tree_depth_total: rec.tree_depth_total,
                    linear_max_depth: rec.linear_max_depth,
                    linear_depth_total: rec.linear_depth_total,
                    replayed: true,
                    ..base
                }
            } else {
                let tp = depth_profile(&tree, opts.probe_max_nr)
                    .ok_or_else(|| {
                        FleetError::Synthesis(format!(
                            "tree filter {hash:#018x} is malformed"
                        ))
                    })?;
                let lp = match &linear {
                    Some(p) => Some(
                        depth_profile(p, opts.probe_max_nr).ok_or_else(
                            || {
                                FleetError::Synthesis(format!(
                                    "linear filter {hash:#018x} is malformed"
                                ))
                            },
                        )?,
                    ),
                    None => None,
                };
                if opts.verify {
                    for nr in 0..=opts.probe_max_nr {
                        let want = numbers.binary_search(&nr).is_ok();
                        let eval = |p: &BpfProgram| {
                            run_filter(
                                p,
                                SeccompData { nr, arch: AUDIT_ARCH_X86_64 },
                            ) == Some(RET_ALLOW)
                        };
                        let tree_ok = eval(&tree) == want;
                        let linear_ok =
                            linear.as_ref().is_none_or(|p| eval(p) == want);
                        if !tree_ok || !linear_ok {
                            return Err(FleetError::Verification {
                                allow_hash: *hash,
                                nr,
                            });
                        }
                    }
                }
                UniqueFilterStats {
                    tree_max_depth: tp.max,
                    tree_depth_total: tp.total,
                    linear_max_depth: lp.map_or(0, |p| p.max),
                    linear_depth_total: lp.map_or(0, |p| p.total),
                    ..base
                }
            };
            Ok(Measured { stats, tree_bytes: tree.to_bytes() })
        },
        |u, cause, msg| {
            Err(FleetError::Synthesis(format!(
                "unique set {u} aborted ({cause:?}): {msg}"
            )))
        },
    );
    let mut unique: Vec<UniqueFilterStats> = Vec::with_capacity(sets.len());
    let mut bank: Vec<Vec<u8>> = Vec::with_capacity(sets.len());
    for m in measured {
        let m = m?;
        unique.push(m.stats);
        bank.push(m.tree_bytes);
    }

    // Stage 4: journal every freshly measured set, in unique order, so a
    // crash loses at most the records not yet appended and a resume
    // replays a prefix-closed subset.
    if let Some(journal) = journal.as_mut() {
        for u in &unique {
            if u.replayed {
                continue;
            }
            journal.append(&JournalRecord::FleetFilter {
                allow_hash: u.allow_hash,
                tree_len: u.tree_len,
                linear_len: u.linear_len.unwrap_or(0),
                tree_max_depth: u.tree_max_depth,
                tree_depth_total: u.tree_depth_total,
                linear_max_depth: u.linear_max_depth,
                linear_depth_total: u.linear_depth_total,
            })?;
        }
    }

    // Stage 5: shared-prefix factoring over the sorted filter bank — the
    // longest common instruction prefix between each program and its
    // sorted neighbor is what a prefix-sharing store keeps once.
    let mut order: Vec<usize> = (0..bank.len()).collect();
    order.sort_by(|&a, &b| bank[a].cmp(&bank[b]));
    for w in order.windows(2) {
        let (a, b) = (&bank[w[0]], &bank[w[1]]);
        let bytes =
            a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        unique[w[1]].prefix_shared_insns = (bytes / 8) as u32;
    }

    Ok(FleetReport {
        packages: n as u32,
        package_unique,
        unique,
        catalog_syscalls: data.catalog.syscalls.len() as u32,
        probe_max_nr: opts.probe_max_nr,
        verified: opts.verify,
        journal: journal.map(|j| j.stats()),
    })
}

/// Renders the fleet report: a summary block plus the top unique filters
/// by installation mass.
pub fn fleet_table(report: &FleetReport, top: usize) -> TextTable {
    let mut table = TextTable::new(
        "Fleet seccomp filters (top unique allow-sets by mass)",
        &[
            "pkgs",
            "mass",
            "syscalls",
            "ranges",
            "tree insns",
            "chain insns",
            "tree depth max/avg",
            "chain depth max/avg",
            "shared prefix",
        ],
    )
    .aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut rows: Vec<&UniqueFilterStats> = report.unique.iter().collect();
    rows.sort_by(|a, b| {
        b.mass
            .total_cmp(&a.mass)
            .then_with(|| a.allow_hash.cmp(&b.allow_hash))
    });
    for u in rows.into_iter().take(top) {
        table.row(&[
            u.packages.to_string(),
            format!("{:.3}", u.mass),
            u.syscalls.to_string(),
            u.ranges.to_string(),
            u.tree_len.to_string(),
            u.linear_len
                .map_or_else(|| "overflow".to_owned(), |l| l.to_string()),
            format!("{}/{:.1}", u.tree_max_depth, u.tree_avg_depth()),
            if u.linear_len.is_some() {
                format!("{}/{:.1}", u.linear_max_depth, u.linear_avg_depth())
            } else {
                "-".to_owned()
            },
            u.prefix_shared_insns.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_corpus::{CalibrationSpec, Scale};

    fn small_study() -> (SynthRepo, StudyData) {
        let repo = SynthRepo::new(
            Scale { packages: 120, installations: 10_000 },
            CalibrationSpec::default(),
            0xBEEF,
        );
        let data = StudyData::from_synth(&repo);
        (repo, data)
    }

    fn small_opts() -> FleetOptions {
        // 512 probes keep the unit test fast; the smoke gate runs 4096.
        FleetOptions { probe_max_nr: 511, verify: true }
    }

    #[test]
    fn fleet_covers_every_package_and_dedups() {
        let (_, data) = small_study();
        let report = synthesize_fleet(&data, small_opts()).expect("fleet");
        assert_eq!(report.packages as usize, data.packages.len());
        assert_eq!(report.package_unique.len(), data.packages.len());
        assert!(!report.unique.is_empty());
        assert!(report.unique.len() <= data.packages.len());
        // Membership accounting adds back up.
        let total: u32 = report.unique.iter().map(|u| u.packages).sum();
        assert_eq!(total, report.packages);
        let mass: f64 = report.unique.iter().map(|u| u.mass).sum();
        let expect: f64 = data.packages.iter().map(|p| p.prob).sum();
        assert!((mass - expect).abs() < 1e-9);
        // Depth bound: every tree stays within 2·⌈log₂ ranges⌉ + 8.
        for u in &report.unique {
            let bound = if u.ranges <= 1 {
                8
            } else {
                2 * (32 - (u.ranges - 1).leading_zeros()) + 8
            };
            assert!(
                u.tree_max_depth <= bound,
                "{} ranges: depth {} over bound {bound}",
                u.ranges,
                u.tree_max_depth
            );
        }
        // The attack surface shrinks for real footprints.
        let reduction = report.weighted_attack_surface_reduction();
        assert!(
            (0.0..=1.0).contains(&reduction) && reduction > 0.1,
            "implausible reduction {reduction}"
        );
    }

    #[test]
    fn journaled_fleet_resumes_bit_identical() {
        let (repo, data) = small_study();
        let path = std::env::temp_dir().join(format!(
            "apistudy-fleet-{}.apsj",
            std::process::id()
        ));
        let control = synthesize_fleet(&data, small_opts()).expect("control");
        // Full journaled run, then resume with nothing missing: all
        // replayed, zero appended, and the report identical to the
        // unjournaled control (modulo the journal stats themselves).
        let first = synthesize_fleet_journaled(
            &data,
            &repo,
            small_opts(),
            &path,
            false,
        )
        .expect("journaled");
        assert_eq!(
            first.journal,
            Some(JournalStats {
                replayed: 0,
                appended: first.unique.len() as u64
            })
        );
        let resumed = synthesize_fleet_journaled(
            &data,
            &repo,
            small_opts(),
            &path,
            true,
        )
        .expect("resumed");
        assert_eq!(
            resumed.journal,
            Some(JournalStats {
                replayed: first.unique.len() as u64,
                appended: 0
            })
        );
        let strip = |mut r: FleetReport| {
            r.journal = None;
            for u in &mut r.unique {
                u.replayed = false;
            }
            r
        };
        assert_eq!(strip(first.clone()), strip(control));
        assert_eq!(strip(resumed), strip(first));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_journal_recomputes_only_the_tail() {
        let (repo, data) = small_study();
        let path = std::env::temp_dir().join(format!(
            "apistudy-fleet-trunc-{}.apsj",
            std::process::id()
        ));
        let full = synthesize_fleet_journaled(
            &data,
            &repo,
            small_opts(),
            &path,
            false,
        )
        .expect("full");
        // Chop the journal roughly in half at a byte boundary: the torn
        // tail recovery keeps a record prefix, the resume replays it and
        // recomputes the rest, bit-identical.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let resumed = synthesize_fleet_journaled(
            &data,
            &repo,
            small_opts(),
            &path,
            true,
        )
        .expect("resumed");
        let stats = resumed.journal.unwrap();
        assert!(stats.replayed > 0, "should replay a prefix");
        assert!(stats.appended > 0, "should recompute the tail");
        assert_eq!(
            stats.replayed + stats.appended,
            full.unique.len() as u64
        );
        let strip = |mut r: FleetReport| {
            r.journal = None;
            for u in &mut r.unique {
                u.replayed = false;
            }
            r
        };
        assert_eq!(strip(resumed), strip(full));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let (repo, data) = small_study();
        let path = std::env::temp_dir().join(format!(
            "apistudy-fleet-fp-{}.apsj",
            std::process::id()
        ));
        synthesize_fleet_journaled(&data, &repo, small_opts(), &path, false)
            .expect("first run");
        let other = FleetOptions { probe_max_nr: 767, verify: true };
        match synthesize_fleet_journaled(&data, &repo, other, &path, true) {
            Err(FleetError::Journal(
                JournalError::FingerprintMismatch { .. },
            )) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefix_sharing_counts_at_least_the_prologue() {
        let (_, data) = small_study();
        let report = synthesize_fleet(&data, small_opts()).expect("fleet");
        if report.unique.len() < 2 {
            return; // nothing to share
        }
        // Every program begins with the same 4-instruction arch prologue,
        // so all but one program in the sorted bank share at least it.
        let sharing = report
            .unique
            .iter()
            .filter(|u| u.prefix_shared_insns >= 4)
            .count();
        assert!(
            sharing >= report.unique.len() - 1,
            "{sharing} of {} share the prologue",
            report.unique.len()
        );
    }

    #[test]
    fn report_table_renders() {
        let (_, data) = small_study();
        let report = synthesize_fleet(&data, small_opts()).expect("fleet");
        let text = fleet_table(&report, 10).render();
        assert!(text.contains("tree insns"));
    }
}
