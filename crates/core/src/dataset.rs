//! Dataset export/import.
//!
//! The paper publishes its measurement data ("our data set, tools, and
//! other information are available at ..."). This module serializes a
//! completed study to a line-oriented CSV dataset — one row per package
//! with its installation statistics and complete API footprint — and
//! parses it back, so downstream analyses can run without re-measuring.
//!
//! Format (version 1):
//!
//! ```text
//! # apistudy-dataset v1
//! # installations: <N>
//! name,install_count,probability,depends,syscalls,ioctls,fcntls,prctls,pseudo_files,libc_symbols
//! coreutils,498221,0.996442,libc6,read;write;...,TCGETS;...,F_GETFL;...,PR_SET_NAME,...
//! ```
//!
//! Cells holding lists are `;`-separated; list elements never contain
//! commas or semicolons (API names are identifiers or absolute paths).
//!
//! The format has a *canonical* in-memory form (see
//! [`Dataset::normalize`]): list elements are non-empty, and every row
//! carries all six [`ApiKind`] keys (possibly with empty lists). On that
//! form the codec is an exact involution — `parse_csv(to_csv(d)) == d`,
//! floats included by bit pattern (property-tested) — which is what lets
//! shard-merged exports round-trip through publication without drift.

use std::collections::HashMap;
use std::fmt;

use apistudy_catalog::{Api, ApiKind, Catalog};

use crate::pipeline::StudyData;

/// One exported package row.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Package name.
    pub name: String,
    /// Popcon installation count.
    pub install_count: u64,
    /// Installation probability.
    pub probability: f64,
    /// Dependencies.
    pub depends: Vec<String>,
    /// Footprint, by API kind, as catalog names.
    pub apis: HashMap<ApiKind, Vec<String>>,
}

/// A serializable snapshot of a study's per-package measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Survey size.
    pub installations: u64,
    /// Per-package rows, in pipeline order.
    pub rows: Vec<DatasetRow>,
}

/// Errors from parsing a dataset document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The header line is missing or not a known version.
    BadHeader,
    /// A row has the wrong number of cells.
    BadArity {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric cell failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadHeader => write!(f, "missing or unknown dataset header"),
            DatasetError::BadArity { line } => {
                write!(f, "wrong number of cells on line {line}")
            }
            DatasetError::BadNumber { line } => {
                write!(f, "unparsable number on line {line}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

const HEADER: &str = "# apistudy-dataset v1";
const COLUMNS: &str = "name,install_count,probability,depends,syscalls,\
                       ioctls,fcntls,prctls,pseudo_files,libc_symbols";

const KINDS: [ApiKind; 6] = [
    ApiKind::Syscall,
    ApiKind::Ioctl,
    ApiKind::Fcntl,
    ApiKind::Prctl,
    ApiKind::PseudoFile,
    ApiKind::LibcSymbol,
];

fn short_name(catalog: &Catalog, api: Api) -> String {
    // Strip the kind prefixes the catalog's display names carry.
    let name = catalog.name(api);
    name.split_once(':').map(|(_, n)| n.to_owned()).unwrap_or(name)
}

impl Dataset {
    /// Snapshots a study.
    pub fn from_study(data: &StudyData) -> Self {
        let rows = data
            .packages
            .iter()
            .map(|p| {
                let mut apis: HashMap<ApiKind, Vec<String>> = HashMap::new();
                for kind in KINDS {
                    let names: Vec<String> = p
                        .footprint
                        .of_kind(kind)
                        .map(|api| short_name(&data.catalog, api))
                        .collect();
                    apis.insert(kind, names);
                }
                DatasetRow {
                    name: p.name.clone(),
                    install_count: p.install_count,
                    probability: p.prob,
                    depends: p.depends.clone(),
                    apis,
                }
            })
            .collect();
        Self { installations: data.total_installations, rows }
    }

    /// Serializes to the CSV document format. Empty list elements are
    /// dropped (an empty element is unrepresentable in a `;`-joined
    /// cell: writing it would parse back as nothing, so the writer and
    /// the parser agree to treat it as nothing on both sides).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        fn join_list(items: &[String]) -> String {
            let kept: Vec<&str> = items
                .iter()
                .filter(|e| !e.is_empty())
                .map(String::as_str)
                .collect();
            kept.join(";")
        }
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "# installations: {}", self.installations);
        let _ = writeln!(out, "{COLUMNS}");
        for row in &self.rows {
            let lists: Vec<String> = KINDS
                .iter()
                .map(|k| {
                    row.apis.get(k).map(|v| join_list(v)).unwrap_or_default()
                })
                .collect();
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                row.name,
                row.install_count,
                row.probability,
                join_list(&row.depends),
                lists.join(","),
            );
        }
        out
    }

    /// Parses the CSV document format back into a dataset.
    pub fn parse_csv(text: &str) -> Result<Self, DatasetError> {
        let mut lines = text.lines().enumerate();
        let Some((_, first)) = lines.next() else {
            return Err(DatasetError::BadHeader);
        };
        if first.trim() != HEADER {
            return Err(DatasetError::BadHeader);
        }
        let mut installations = 0u64;
        let mut rows = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# installations:") {
                installations = rest
                    .trim()
                    .parse()
                    .map_err(|_| DatasetError::BadNumber { line: lineno })?;
                continue;
            }
            if line.starts_with('#') || line.starts_with("name,") {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != 10 {
                return Err(DatasetError::BadArity { line: lineno });
            }
            // Filtering empty elements (not just the all-empty cell)
            // keeps the parser symmetric with the writer: `a;;b` and
            // a trailing `a;` decode to exactly what re-encoding them
            // would produce.
            let parse_list = |s: &str| -> Vec<String> {
                s.split(';')
                    .filter(|e| !e.is_empty())
                    .map(str::to_owned)
                    .collect()
            };
            let mut apis = HashMap::new();
            for (kind, cell) in KINDS.iter().zip(&cells[4..10]) {
                apis.insert(*kind, parse_list(cell));
            }
            rows.push(DatasetRow {
                name: cells[0].to_owned(),
                install_count: cells[1]
                    .parse()
                    .map_err(|_| DatasetError::BadNumber { line: lineno })?,
                probability: cells[2]
                    .parse()
                    .map_err(|_| DatasetError::BadNumber { line: lineno })?,
                depends: parse_list(cells[3]),
                apis,
            });
        }
        Ok(Self { installations, rows })
    }

    /// Canonicalizes the dataset into the codec's fixed point: drops
    /// empty list elements (unrepresentable in the text form) and
    /// materializes all six [`ApiKind`] keys on every row (the parser
    /// always produces them, so a row missing one could never round-trip
    /// equal). After `normalize`, `parse_csv(to_csv(d)) == d` exactly.
    pub fn normalize(&mut self) {
        for row in &mut self.rows {
            row.depends.retain(|e| !e.is_empty());
            for kind in KINDS {
                let list = row.apis.entry(kind).or_default();
                list.retain(|e| !e.is_empty());
            }
        }
    }

    /// A row by package name.
    pub fn row(&self, name: &str) -> Option<&DatasetRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 120, installations: 20_000 },
            CalibrationSpec::default(),
            3,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let data = data();
        let ds = Dataset::from_study(&data);
        let text = ds.to_csv();
        let back = Dataset::parse_csv(&text).expect("parse");
        assert_eq!(ds, back);
        assert_eq!(back.installations, 20_000);
        assert_eq!(back.rows.len(), 120);
    }

    #[test]
    fn rows_carry_real_footprints() {
        let data = data();
        let ds = Dataset::from_study(&data);
        let row = ds.row("coreutils").expect("coreutils");
        let syscalls = &row.apis[&ApiKind::Syscall];
        assert!(syscalls.iter().any(|s| s == "exit_group"));
        assert!(row.install_count > 15_000, "core package nearly universal");
        assert!(!row.depends.is_empty());
    }

    #[test]
    fn importance_recomputable_from_export() {
        // The published dataset must be sufficient to recompute the
        // paper's headline metric.
        let data = data();
        let ds = Dataset::from_study(&data);
        let miss: f64 = ds
            .rows
            .iter()
            .filter(|r| r.apis[&ApiKind::Syscall].iter().any(|s| s == "mbind"))
            .map(|r| 1.0 - r.probability)
            .product();
        let importance = 1.0 - miss;
        let metrics = crate::metrics::Metrics::new(&data);
        let api = data.catalog.syscall("mbind").unwrap();
        assert!((importance - metrics.importance(api)).abs() < 1e-9);
    }

    #[test]
    fn metrics_from_reimported_dataset_match_the_original() {
        // Export → parse → rebuild StudyData → every metric agrees.
        let data = data();
        let ds = Dataset::from_study(&data);
        let text = ds.to_csv();
        let back = Dataset::parse_csv(&text).unwrap();
        let rebuilt = StudyData::from_dataset(&back);
        let m0 = crate::metrics::Metrics::new(&data);
        let m1 = crate::metrics::Metrics::new(&rebuilt);
        for name in ["read", "mbind", "access", "kexec_load", "mq_notify"] {
            let api = data.catalog.syscall(name).unwrap();
            assert!(
                (m0.importance(api) - m1.importance(api)).abs() < 1e-9,
                "{name} importance"
            );
            assert!(
                (m0.unweighted_importance(api) - m1.unweighted_importance(api))
                    .abs()
                    < 1e-9,
                "{name} unweighted"
            );
        }
        // Weighted completeness (with dependency closure) agrees too.
        let supported: std::collections::HashSet<u32> = (0..150).collect();
        assert!(
            (m0.syscall_completeness(&supported)
                - m1.syscall_completeness(&supported))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Dataset::parse_csv(""), Err(DatasetError::BadHeader));
        assert_eq!(
            Dataset::parse_csv("not a dataset"),
            Err(DatasetError::BadHeader)
        );
        let bad_arity = format!("{HEADER}\nx,y,z\n");
        assert!(matches!(
            Dataset::parse_csv(&bad_arity),
            Err(DatasetError::BadArity { .. })
        ));
        let bad_number = format!("{HEADER}\nfoo,NaNcount,0.5,,,,,,,\n");
        assert!(matches!(
            Dataset::parse_csv(&bad_number),
            Err(DatasetError::BadNumber { .. })
        ));
    }

    #[test]
    fn empty_elements_are_dropped_symmetrically() {
        // `a;;b` and a trailing `;` must decode to what re-encoding
        // produces — no phantom empty elements in either direction.
        let text = format!(
            "{HEADER}\n# installations: 5\npkg,1,0.2,a;;b,read;,,,,,\n"
        );
        let ds = Dataset::parse_csv(&text).expect("parse");
        let row = ds.row("pkg").unwrap();
        assert_eq!(row.depends, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(row.apis[&ApiKind::Syscall], vec!["read".to_owned()]);
        let again = Dataset::parse_csv(&ds.to_csv()).unwrap();
        assert_eq!(ds, again);
    }

    #[test]
    fn normalize_reaches_the_codec_fixed_point() {
        // A shard-merged dataset assembled by hand: one row missing API
        // kind keys entirely, another carrying empty list elements.
        let mut ds = Dataset {
            installations: 9,
            rows: vec![
                DatasetRow {
                    name: "sparse".into(),
                    install_count: 4,
                    probability: 0.5,
                    depends: vec![String::new(), "libc6".into()],
                    apis: HashMap::new(),
                },
                DatasetRow {
                    name: "holes".into(),
                    install_count: 2,
                    probability: 0.25,
                    depends: Vec::new(),
                    apis: HashMap::from([(
                        ApiKind::Syscall,
                        vec!["read".into(), String::new()],
                    )]),
                },
            ],
        };
        let not_normalized = Dataset::parse_csv(&ds.to_csv()).unwrap();
        assert_ne!(ds, not_normalized, "raw form is not a fixed point");
        ds.normalize();
        let roundtripped = Dataset::parse_csv(&ds.to_csv()).unwrap();
        assert_eq!(ds, roundtripped, "normalized form round-trips exactly");
        assert_eq!(ds.rows[0].depends, vec!["libc6".to_owned()]);
        assert_eq!(ds.rows[0].apis.len(), 6);
    }

    #[test]
    fn empty_lists_roundtrip() {
        let text = format!(
            "{HEADER}\n# installations: 5\nempty-pkg,1,0.2,,,,,,,\n"
        );
        let ds = Dataset::parse_csv(&text).expect("parse");
        let row = ds.row("empty-pkg").unwrap();
        assert!(row.depends.is_empty());
        assert!(row.apis[&ApiKind::Syscall].is_empty());
        let again = Dataset::parse_csv(&ds.to_csv()).unwrap();
        assert_eq!(ds, again);
    }
}
