//! The study's metrics: API importance, unweighted API importance, and
//! weighted completeness (paper §2 and Appendix A).
//!
//! - **API importance** — the probability that a random installation
//!   includes at least one package whose footprint requires the API:
//!   `1 − ∏ (1 − p_pkg)` over the API's dependent packages (A.1).
//! - **Unweighted API importance** — the fraction of *packages* using the
//!   API, ignoring installation frequency (§5).
//! - **Weighted completeness** — for a system supporting a set of APIs,
//!   the expected fraction of an installation's packages that work:
//!   `Σ_supported p / Σ_all p`, with APT dependency closure (a package
//!   whose dependency is unsupported is unsupported too) (A.2).

use std::collections::HashSet;

use apistudy_catalog::{Api, ApiInterner, ApiKind, ApiSet};

use crate::pipeline::{PackageRecord, StudyData};

/// ORs `closed[src]` into `closed[dst]`, reporting growth.
///
/// `split_at_mut` lets us hold `&mut closed[dst]` and `&closed[src]`
/// simultaneously without cloning either set.
fn or_into(closed: &mut [ApiSet], dst: usize, src: usize) -> bool {
    if dst == src {
        return false;
    }
    let (dst_set, src_set) = if dst < src {
        let (lo, hi) = closed.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = closed.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    };
    dst_set.union_with(src_set)
}

/// Metric engine over a [`StudyData`] set.
///
/// Construction indexes dependent packages per interned API id once;
/// queries are then cheap enough to sweep every API in the catalog. The
/// dependency-closure fixed point runs on word-packed [`ApiSet`]s — each
/// propagation step is a word-wise OR rather than per-element set
/// insertion.
pub struct Metrics<'a> {
    data: &'a StudyData,
    /// Dependent package indices, indexed by interned API id.
    dependents: Vec<Vec<usize>>,
    /// How many packages *transitively* need each API (by interned id): a
    /// package needs its dependencies' APIs too (you cannot run anything
    /// without libc6's and the dynamic linker's calls). Used to order ties
    /// among the many APIs whose importance is exactly 1 (the paper's
    /// Figure 3 greedy order).
    closure_users: Vec<u32>,
    /// Resolved `depends` edges (package index → dependency indices).
    dep_indices: Vec<Vec<usize>>,
    total_mass: f64,
}

impl<'a> Metrics<'a> {
    /// Builds the per-API dependent index.
    pub fn new(data: &'a StudyData) -> Self {
        let interner = ApiInterner::global();
        let universe = interner.universe();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); universe];
        for (i, p) in data.packages.iter().enumerate() {
            for id in p.footprint.apis.ids() {
                dependents[id as usize].push(i);
            }
        }
        let dep_indices: Vec<Vec<usize>> = data
            .packages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.depends
                    .iter()
                    .filter_map(|dep| data.by_name.get(dep).copied())
                    .filter(|&d| d != i)
                    .collect()
            })
            .collect();
        // Dependency-closed footprints, by fixed point over the dep graph:
        // OR dependency sets into dependents until nothing grows.
        let mut closed: Vec<ApiSet> = data
            .packages
            .iter()
            .map(|p| p.footprint.apis.clone())
            .collect();
        loop {
            let mut changed = false;
            for (i, deps) in dep_indices.iter().enumerate() {
                for &d in deps {
                    changed |= or_into(&mut closed, i, d);
                }
            }
            if !changed {
                break;
            }
        }
        let mut closure_users = vec![0u32; universe];
        for set in &closed {
            for id in set.ids() {
                closure_users[id as usize] += 1;
            }
        }
        let total_mass = data.total_mass();
        Self { data, dependents, closure_users, dep_indices, total_mass }
    }

    /// Fraction of packages that transitively need an API (their own
    /// footprint or any dependency's).
    pub fn closure_unweighted_importance(&self, api: Api) -> f64 {
        let users = ApiInterner::global()
            .intern(api)
            .map_or(0, |id| self.closure_users[id as usize]);
        if self.data.packages.is_empty() {
            return 0.0;
        }
        f64::from(users) / self.data.packages.len() as f64
    }

    /// The underlying data set.
    pub fn data(&self) -> &StudyData {
        self.data
    }

    /// The dependent-package slice for an API (empty when unused or
    /// outside the interned universe).
    fn dependent_indices(&self, api: Api) -> &[usize] {
        ApiInterner::global()
            .intern(api)
            .map_or(&[][..], |id| &self.dependents[id as usize])
    }

    /// API importance (Appendix A.1).
    pub fn importance(&self, api: Api) -> f64 {
        let pkgs = self.dependent_indices(api);
        if pkgs.is_empty() {
            return 0.0;
        }
        let miss: f64 = pkgs
            .iter()
            .map(|&i| 1.0 - self.data.packages[i].prob)
            .product();
        1.0 - miss
    }

    /// Unweighted API importance (§5): fraction of packages using the API.
    pub fn unweighted_importance(&self, api: Api) -> f64 {
        let users = self.dependent_indices(api).len();
        if self.data.packages.is_empty() {
            return 0.0;
        }
        users as f64 / self.data.packages.len() as f64
    }

    /// The packages whose footprint requires an API, most-installed first.
    pub fn dependents(&self, api: Api) -> Vec<&PackageRecord> {
        let mut out: Vec<&PackageRecord> = self
            .dependent_indices(api)
            .iter()
            .map(|&i| &self.data.packages[i])
            .collect();
        out.sort_by(|a, b| b.prob.total_cmp(&a.prob).then(a.name.cmp(&b.name)));
        out
    }

    /// Importance of every catalog API of one kind, descending.
    pub fn importance_ranking(&self, kind: ApiKind) -> Vec<(Api, f64)> {
        let apis: Vec<Api> = match kind {
            ApiKind::Syscall => self
                .data
                .catalog
                .syscalls
                .iter()
                .map(|d| Api::Syscall(d.number))
                .collect(),
            ApiKind::Ioctl => (0..self.data.catalog.ioctl_ops.len() as u32)
                .map(Api::Ioctl)
                .collect(),
            ApiKind::Fcntl => (0..apistudy_catalog::FCNTL_OPS.len() as u32)
                .map(Api::Fcntl)
                .collect(),
            ApiKind::Prctl => (0..apistudy_catalog::PRCTL_OPS.len() as u32)
                .map(Api::Prctl)
                .collect(),
            ApiKind::PseudoFile => (0..self.data.catalog.pseudo_files.len() as u32)
                .map(Api::PseudoFile)
                .collect(),
            ApiKind::LibcSymbol => (0..self.data.catalog.libc.len() as u32)
                .map(Api::LibcSymbol)
                .collect(),
        };
        let mut out: Vec<(Api, f64)> = apis
            .into_iter()
            .map(|a| (a, self.importance(a)))
            .collect();
        out.sort_by(|x, y| {
            y.1.total_cmp(&x.1)
                .then_with(|| {
                    // Greedy tie-break among equally important APIs: first
                    // by how many packages transitively need them, then by
                    // direct usage (paper §3.2's ordering).
                    self.closure_unweighted_importance(y.0)
                        .total_cmp(&self.closure_unweighted_importance(x.0))
                })
                .then_with(|| {
                    self.unweighted_importance(y.0)
                        .total_cmp(&self.unweighted_importance(x.0))
                })
                .then_with(|| x.0.cmp(&y.0))
        });
        out
    }

    /// Weighted completeness of a system supporting `supported`, measured
    /// over the APIs selected by `scope` (Appendix A.2).
    ///
    /// A package is supported when every in-scope API of its footprint is
    /// in `supported` and all of its dependencies are supported.
    pub fn weighted_completeness<F>(&self, supported: &HashSet<Api>, scope: F) -> f64
    where
        F: Fn(Api) -> bool,
    {
        if self.total_mass == 0.0 {
            return 0.0;
        }
        // One pass over the (small, fixed) API universe builds the mask of
        // in-scope unsupported APIs; each package check is then a word-wise
        // intersection test instead of a per-element scope/lookup loop.
        let interner = ApiInterner::global();
        let mut unsupported = ApiSet::new();
        for id in 0..interner.universe() as u32 {
            let api = interner.resolve(id);
            if scope(api) && !supported.contains(&api) {
                unsupported.insert(api);
            }
        }
        let mut ok: Vec<bool> = self
            .data
            .packages
            .iter()
            .map(|p| !p.footprint.apis.intersects(&unsupported))
            .collect();
        // Dependency closure: failure propagates to dependents until
        // fixed point.
        loop {
            let mut changed = false;
            for i in 0..ok.len() {
                if !ok[i] {
                    continue;
                }
                if self.dep_indices[i].iter().any(|&d| !ok[d]) {
                    ok[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let supported_mass: f64 = self
            .data
            .packages
            .iter()
            .zip(&ok)
            .filter(|&(_, &s)| s)
            .map(|(p, _)| p.prob)
            .sum();
        supported_mass / self.total_mass
    }

    /// Weighted completeness over system calls only, given supported
    /// syscall numbers — the Table 6 evaluation.
    pub fn syscall_completeness(&self, supported_numbers: &HashSet<u32>) -> f64 {
        let supported: HashSet<Api> = supported_numbers
            .iter()
            .map(|&n| Api::Syscall(n))
            .collect();
        self.weighted_completeness(&supported, |a| a.kind() == ApiKind::Syscall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::ApiFootprint;
    use apistudy_catalog::Catalog;
    use apistudy_corpus::MixCensus;
    use crate::pipeline::Attribution;

    /// Hand-built StudyData with known packages.
    fn fixture() -> StudyData {
        let catalog = Catalog::linux_3_19();
        let mk = |name: &str, prob: f64, apis: &[Api], deps: &[&str]| {
            let mut fp = ApiFootprint::default();
            fp.apis.extend(apis.iter().copied());
            PackageRecord {
                name: name.into(),
                prob,
                install_count: (prob * 1000.0) as u64,
                depends: deps.iter().map(|s| s.to_string()).collect(),
                footprint: fp,
                script_interpreters: vec![],
                file_counts: (1, 0, 0),
                unresolved_syscall_sites: 0,
                skipped_binaries: 0,
                partial_footprint: false,
            }
        };
        let packages = vec![
            mk("base", 1.0, &[Api::Syscall(0), Api::Syscall(1)], &[]),
            mk("half", 0.5, &[Api::Syscall(0), Api::Syscall(2)], &["base"]),
            mk("rare", 0.01, &[Api::Syscall(3)], &["half"]),
            mk("scripted", 0.2, &[Api::Syscall(0)], &["base"]),
        ];
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        StudyData {
            catalog,
            packages,
            by_name,
            total_installations: 1000,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 100,
            diagnostics: crate::diagnostics::RunDiagnostics::default(),
        }
    }

    #[test]
    fn importance_formula() {
        let data = fixture();
        let m = Metrics::new(&data);
        // syscall 0: used by base (1.0) → importance 1.
        assert_eq!(m.importance(Api::Syscall(0)), 1.0);
        // syscall 2: only `half` (0.5).
        assert_eq!(m.importance(Api::Syscall(2)), 0.5);
        // syscall 3: only `rare` (0.01).
        assert!((m.importance(Api::Syscall(3)) - 0.01).abs() < 1e-12);
        // unused syscall.
        assert_eq!(m.importance(Api::Syscall(100)), 0.0);
    }

    #[test]
    fn unweighted_importance_is_package_fraction() {
        let data = fixture();
        let m = Metrics::new(&data);
        assert_eq!(m.unweighted_importance(Api::Syscall(0)), 0.75);
        assert_eq!(m.unweighted_importance(Api::Syscall(3)), 0.25);
        assert_eq!(m.unweighted_importance(Api::Syscall(100)), 0.0);
    }

    #[test]
    fn dependents_sorted_by_popularity() {
        let data = fixture();
        let m = Metrics::new(&data);
        let deps = m.dependents(Api::Syscall(0));
        let names: Vec<&str> = deps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["base", "half", "scripted"]);
    }

    #[test]
    fn completeness_counts_supported_mass() {
        let data = fixture();
        let m = Metrics::new(&data);
        // Support syscalls {0,1}: base ✓, scripted ✓, half ✗ (needs 2),
        // rare ✗ (needs 3 and its dep `half` fails anyway).
        let supported: HashSet<u32> = [0u32, 1].into_iter().collect();
        let c = m.syscall_completeness(&supported);
        let expect = (1.0 + 0.2) / (1.0 + 0.5 + 0.01 + 0.2);
        assert!((c - expect).abs() < 1e-12, "{c} vs {expect}");
    }

    #[test]
    fn dependency_failure_propagates() {
        let data = fixture();
        let m = Metrics::new(&data);
        // Support {0,2,3} but not 1: base fails → everything fails through
        // the dependency chain.
        let supported: HashSet<u32> = [0u32, 2, 3].into_iter().collect();
        let c = m.syscall_completeness(&supported);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn full_support_is_total() {
        let data = fixture();
        let m = Metrics::new(&data);
        let supported: HashSet<u32> = (0..10).collect();
        assert!((m.syscall_completeness(&supported) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adding_an_api_never_lowers_completeness() {
        let data = fixture();
        let m = Metrics::new(&data);
        let mut supported: HashSet<u32> = HashSet::new();
        let mut last = m.syscall_completeness(&supported);
        for nr in 0..5 {
            supported.insert(nr);
            let now = m.syscall_completeness(&supported);
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn ranking_is_descending() {
        let data = fixture();
        let m = Metrics::new(&data);
        let ranking = m.importance_ranking(ApiKind::Syscall);
        assert_eq!(ranking.len(), data.catalog.syscalls.len());
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranking[0].0, Api::Syscall(0));
    }
}
