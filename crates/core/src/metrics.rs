//! The study's metrics: API importance, unweighted API importance, and
//! weighted completeness (paper §2 and Appendix A).
//!
//! - **API importance** — the probability that a random installation
//!   includes at least one package whose footprint requires the API:
//!   `1 − ∏ (1 − p_pkg)` over the API's dependent packages (A.1).
//! - **Unweighted API importance** — the fraction of *packages* using the
//!   API, ignoring installation frequency (§5).
//! - **Weighted completeness** — for a system supporting a set of APIs,
//!   the expected fraction of an installation's packages that work:
//!   `Σ_supported p / Σ_all p`, with APT dependency closure (a package
//!   whose dependency is unsupported is unsupported too) (A.2).

use std::collections::HashSet;
use std::ops::Deref;
use std::sync::Arc;

use apistudy_catalog::{Api, ApiInterner, ApiKind, ApiSet};

use crate::depgraph::Condensation;
use crate::pipeline::{PackageRecord, StudyData};

/// The owned, borrow-free derived state every metric reads: per-API
/// dependent indices, the SCC condensation, per-component footprint
/// unions and closures, and the installation mass. Building it is the
/// expensive part of [`Metrics::new`] (~1 ms at 150 packages, growing
/// with the corpus), and it is deterministic in `StudyData` — so it can
/// be built **once** and shared across threads behind an [`Arc`] (the
/// serve daemon builds it at snapshot-seal time instead of per
/// connection). [`Metrics`] derefs to it.
pub struct MetricsIndex {
    /// Dependent package indices, indexed by interned API id.
    pub(crate) dependents: Vec<Vec<usize>>,
    /// How many packages *transitively* need each API (by interned id): a
    /// package needs its dependencies' APIs too (you cannot run anything
    /// without libc6's and the dynamic linker's calls). Used to order ties
    /// among the many APIs whose importance is exactly 1 (the paper's
    /// Figure 3 greedy order).
    pub(crate) closure_users: Vec<u32>,
    /// SCC condensation of the resolved `depends` graph.
    pub(crate) condensation: Condensation,
    /// Union of member footprints per component.
    pub(crate) comp_own: Vec<ApiSet>,
    /// Dependency-closed footprint per component (own union ∪ closures of
    /// every dependency component).
    pub(crate) comp_closure: Vec<ApiSet>,
    /// Components whose own footprint union contains each API, indexed by
    /// interned API id (deduplicated, ascending).
    pub(crate) comp_dependents: Vec<Vec<u32>>,
    pub(crate) total_mass: f64,
    /// The package count the index was built from, to catch pairing an
    /// index with the wrong data set.
    packages: usize,
}

/// Metric engine over a [`StudyData`] set.
///
/// Construction indexes dependent packages per interned API id and
/// condenses the dependency graph (Tarjan SCC, [`Condensation`]) once;
/// every closure the metrics need — dependency-closed footprints, failure
/// propagation, max-rank — is then a single bottom-up pass over the
/// condensation DAG instead of an iterated fixed point. Footprints stay
/// word-packed [`ApiSet`]s, so each propagation step is a word-wise OR.
///
/// All derived state lives in a shared [`MetricsIndex`]; a `Metrics` is a
/// thin handle pairing that index with the `StudyData` borrow, so callers
/// holding a prebuilt index ([`Metrics::with_index`]) pay nothing at
/// construction.
pub struct Metrics<'a> {
    data: &'a StudyData,
    index: Arc<MetricsIndex>,
}

impl Deref for Metrics<'_> {
    type Target = MetricsIndex;

    fn deref(&self) -> &MetricsIndex {
        &self.index
    }
}

impl MetricsIndex {
    /// Builds the per-API dependent index and the graph condensation.
    pub fn build(data: &StudyData) -> Self {
        let interner = ApiInterner::global();
        let universe = interner.universe();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); universe];
        for (i, p) in data.packages.iter().enumerate() {
            for id in p.footprint.apis.ids() {
                dependents[id as usize].push(i);
            }
        }
        let dep_indices: Vec<Vec<usize>> = data
            .packages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.depends
                    .iter()
                    .filter_map(|dep| data.by_name.get(dep).copied())
                    .filter(|&d| d != i)
                    .collect()
            })
            .collect();
        let condensation = Condensation::new(&dep_indices);
        let ncomp = condensation.len();
        // Union of member footprints per component: within an SCC every
        // package transitively depends on every other, so the closure is
        // shared and starts from this union.
        let mut comp_own: Vec<ApiSet> = vec![ApiSet::new(); ncomp];
        for (i, p) in data.packages.iter().enumerate() {
            comp_own[condensation.comp_of(i) as usize]
                .union_with(&p.footprint.apis);
        }
        // Dependency-closed footprints in one bottom-up pass: component
        // ids are topological (dependencies first), so by the time `c` is
        // processed every dependency's closure is final.
        let mut comp_closure = comp_own.clone();
        for c in 0..ncomp {
            for &d in condensation.deps(c as u32) {
                let (lo, hi) = comp_closure.split_at_mut(c);
                hi[0].union_with(&lo[d as usize]);
            }
        }
        let mut closure_users = vec![0u32; universe];
        for (c, closed) in comp_closure.iter().enumerate() {
            let weight = condensation.members(c as u32).len() as u32;
            for id in closed.ids() {
                closure_users[id as usize] += weight;
            }
        }
        let mut comp_dependents: Vec<Vec<u32>> = vec![Vec::new(); universe];
        for (id, pkgs) in dependents.iter().enumerate() {
            let mut comps: Vec<u32> =
                pkgs.iter().map(|&i| condensation.comp_of(i)).collect();
            comps.sort_unstable();
            comps.dedup();
            comp_dependents[id] = comps;
        }
        let total_mass = data.total_mass();
        Self {
            dependents,
            closure_users,
            condensation,
            comp_own,
            comp_closure,
            comp_dependents,
            total_mass,
            packages: data.packages.len(),
        }
    }
}

impl<'a> Metrics<'a> {
    /// Builds the full [`MetricsIndex`] for `data` and wraps it.
    pub fn new(data: &'a StudyData) -> Self {
        Self { data, index: Arc::new(MetricsIndex::build(data)) }
    }

    /// Wraps a prebuilt shared index. The index must have been built from
    /// this exact `data` (the serve snapshot guarantees it by sealing
    /// both together); pairing it with a different data set is a logic
    /// error and panics on the cheap package-count check.
    pub fn with_index(data: &'a StudyData, index: Arc<MetricsIndex>) -> Self {
        assert_eq!(
            index.packages,
            data.packages.len(),
            "metrics index was built from a different data set"
        );
        Self { data, index }
    }

    /// The shared derived-state index (for sealing alongside the data).
    pub fn index(&self) -> &Arc<MetricsIndex> {
        &self.index
    }

    /// The SCC condensation of the package dependency graph.
    pub fn condensation(&self) -> &Condensation {
        &self.index.condensation
    }

    /// A package's dependency-closed footprint: its own APIs plus every
    /// API of every package in its dependency closure.
    pub fn closed_footprint(&self, package: usize) -> &ApiSet {
        &self.comp_closure[self.condensation.comp_of(package) as usize]
    }

    /// Fraction of packages that transitively need an API (their own
    /// footprint or any dependency's).
    pub fn closure_unweighted_importance(&self, api: Api) -> f64 {
        let users = ApiInterner::global()
            .intern(api)
            .map_or(0, |id| self.closure_users[id as usize]);
        if self.data.packages.is_empty() {
            return 0.0;
        }
        f64::from(users) / self.data.packages.len() as f64
    }

    /// The underlying data set.
    pub fn data(&self) -> &StudyData {
        self.data
    }

    /// The dependent-package slice for an API (empty when unused or
    /// outside the interned universe).
    fn dependent_indices(&self, api: Api) -> &[usize] {
        ApiInterner::global()
            .intern(api)
            .map_or(&[][..], |id| &self.dependents[id as usize])
    }

    /// API importance (Appendix A.1).
    pub fn importance(&self, api: Api) -> f64 {
        let pkgs = self.dependent_indices(api);
        if pkgs.is_empty() {
            return 0.0;
        }
        let miss: f64 = pkgs
            .iter()
            .map(|&i| 1.0 - self.data.packages[i].prob)
            .product();
        1.0 - miss
    }

    /// Unweighted API importance (§5): fraction of packages using the API.
    pub fn unweighted_importance(&self, api: Api) -> f64 {
        let users = self.dependent_indices(api).len();
        if self.data.packages.is_empty() {
            return 0.0;
        }
        users as f64 / self.data.packages.len() as f64
    }

    /// The packages whose footprint requires an API, most-installed first.
    pub fn dependents(&self, api: Api) -> Vec<&PackageRecord> {
        let mut out: Vec<&PackageRecord> = self
            .dependent_indices(api)
            .iter()
            .map(|&i| &self.data.packages[i])
            .collect();
        out.sort_by(|a, b| b.prob.total_cmp(&a.prob).then(a.name.cmp(&b.name)));
        out
    }

    /// Importance of every catalog API of one kind, descending.
    pub fn importance_ranking(&self, kind: ApiKind) -> Vec<(Api, f64)> {
        let apis: Vec<Api> = match kind {
            ApiKind::Syscall => self
                .data
                .catalog
                .syscalls
                .iter()
                .map(|d| Api::Syscall(d.number))
                .collect(),
            ApiKind::Ioctl => (0..self.data.catalog.ioctl_ops.len() as u32)
                .map(Api::Ioctl)
                .collect(),
            ApiKind::Fcntl => (0..apistudy_catalog::FCNTL_OPS.len() as u32)
                .map(Api::Fcntl)
                .collect(),
            ApiKind::Prctl => (0..apistudy_catalog::PRCTL_OPS.len() as u32)
                .map(Api::Prctl)
                .collect(),
            ApiKind::PseudoFile => (0..self.data.catalog.pseudo_files.len() as u32)
                .map(Api::PseudoFile)
                .collect(),
            ApiKind::LibcSymbol => (0..self.data.catalog.libc.len() as u32)
                .map(Api::LibcSymbol)
                .collect(),
        };
        // Precompute every sort key once: the comparator runs O(n log n)
        // times, and the tie-break keys each cost an interner lookup. The
        // raw user counts order exactly like the fractions the public
        // accessors expose (same positive divisor).
        let interner = ApiInterner::global();
        let mut rows: Vec<(Api, f64, u32, u32)> = apis
            .into_iter()
            .map(|a| {
                let (closure, direct) = interner.intern(a).map_or((0, 0), |id| {
                    (
                        self.closure_users[id as usize],
                        self.dependents[id as usize].len() as u32,
                    )
                });
                (a, self.importance(a), closure, direct)
            })
            .collect();
        rows.sort_by(|x, y| {
            y.1.total_cmp(&x.1)
                // Greedy tie-break among equally important APIs: first by
                // how many packages transitively need them, then by direct
                // usage (paper §3.2's ordering).
                .then_with(|| y.2.cmp(&x.2))
                .then_with(|| y.3.cmp(&x.3))
                .then_with(|| x.0.cmp(&y.0))
        });
        rows.into_iter().map(|(a, imp, _, _)| (a, imp)).collect()
    }

    /// Weighted completeness of a system supporting `supported`, measured
    /// over the APIs selected by `scope` (Appendix A.2).
    ///
    /// A package is supported when every in-scope API of its footprint is
    /// in `supported` and all of its dependencies are supported. Builds
    /// the in-scope unsupported mask in one pass over the (small, fixed)
    /// API universe, then delegates to the mask fast path.
    pub fn weighted_completeness<F>(&self, supported: &HashSet<Api>, scope: F) -> f64
    where
        F: Fn(Api) -> bool,
    {
        let interner = ApiInterner::global();
        let mut unsupported = ApiSet::new();
        for id in 0..interner.universe() as u32 {
            let api = interner.resolve(id);
            if scope(api) && !supported.contains(&api) {
                unsupported.insert(api);
            }
        }
        self.weighted_completeness_masked(&unsupported)
    }

    /// Weighted completeness given a prebuilt mask of in-scope
    /// **unsupported** APIs — the fast path for sweep callers that would
    /// otherwise rebuild the mask by iterating the interner universe per
    /// call.
    ///
    /// One bottom-up pass over the condensation: a component is supported
    /// when no member footprint intersects the mask and every dependency
    /// component is supported (component ids are topological, so each
    /// dependency verdict is final when read).
    pub fn weighted_completeness_masked(&self, unsupported: &ApiSet) -> f64 {
        if self.total_mass == 0.0 {
            return 0.0;
        }
        let ncomp = self.condensation.len();
        let mut comp_ok = vec![false; ncomp];
        for c in 0..ncomp {
            comp_ok[c] = !self.comp_own[c].intersects(unsupported)
                && self
                    .condensation
                    .deps(c as u32)
                    .iter()
                    .all(|&d| comp_ok[d as usize]);
        }
        // Summed in package order — the canonical reduction every
        // completeness path (from-scratch or incremental) shares, so
        // results are bit-identical across them.
        let supported_mass: f64 = self
            .data
            .packages
            .iter()
            .enumerate()
            .filter(|&(i, _)| comp_ok[self.condensation.comp_of(i) as usize])
            .map(|(_, p)| p.prob)
            .sum();
        supported_mass / self.total_mass
    }

    /// The mask of syscall APIs **not** in `supported_numbers` — the
    /// reusable input to [`Metrics::weighted_completeness_masked`] for
    /// syscall-scoped sweeps.
    pub fn syscall_unsupported_mask(
        &self,
        supported_numbers: &HashSet<u32>,
    ) -> ApiSet {
        let mut unsupported = ApiSet::new();
        for d in self.data.catalog.syscalls.iter() {
            if !supported_numbers.contains(&d.number) {
                unsupported.insert(Api::Syscall(d.number));
            }
        }
        unsupported
    }

    /// Weighted completeness over system calls only, given supported
    /// syscall numbers — the Table 6 evaluation.
    pub fn syscall_completeness(&self, supported_numbers: &HashSet<u32>) -> f64 {
        self.weighted_completeness_masked(
            &self.syscall_unsupported_mask(supported_numbers),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::ApiFootprint;
    use apistudy_catalog::Catalog;
    use apistudy_corpus::MixCensus;
    use crate::pipeline::Attribution;

    /// Hand-built StudyData with known packages.
    fn fixture() -> StudyData {
        let catalog = Catalog::linux_3_19();
        let mk = |name: &str, prob: f64, apis: &[Api], deps: &[&str]| {
            let mut fp = ApiFootprint::default();
            fp.apis.extend(apis.iter().copied());
            PackageRecord {
                name: name.into(),
                prob,
                install_count: (prob * 1000.0) as u64,
                depends: deps.iter().map(|s| s.to_string()).collect(),
                footprint: fp,
                script_interpreters: vec![],
                file_counts: (1, 0, 0),
                unresolved_syscall_sites: 0,
                skipped_binaries: 0,
                partial_footprint: false,
            }
        };
        let packages = vec![
            mk("base", 1.0, &[Api::Syscall(0), Api::Syscall(1)], &[]),
            mk("half", 0.5, &[Api::Syscall(0), Api::Syscall(2)], &["base"]),
            mk("rare", 0.01, &[Api::Syscall(3)], &["half"]),
            mk("scripted", 0.2, &[Api::Syscall(0)], &["base"]),
        ];
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        StudyData {
            catalog,
            packages,
            by_name,
            total_installations: 1000,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 100,
            diagnostics: crate::diagnostics::RunDiagnostics::default(),
        }
    }

    #[test]
    fn importance_formula() {
        let data = fixture();
        let m = Metrics::new(&data);
        // syscall 0: used by base (1.0) → importance 1.
        assert_eq!(m.importance(Api::Syscall(0)), 1.0);
        // syscall 2: only `half` (0.5).
        assert_eq!(m.importance(Api::Syscall(2)), 0.5);
        // syscall 3: only `rare` (0.01).
        assert!((m.importance(Api::Syscall(3)) - 0.01).abs() < 1e-12);
        // unused syscall.
        assert_eq!(m.importance(Api::Syscall(100)), 0.0);
    }

    #[test]
    fn unweighted_importance_is_package_fraction() {
        let data = fixture();
        let m = Metrics::new(&data);
        assert_eq!(m.unweighted_importance(Api::Syscall(0)), 0.75);
        assert_eq!(m.unweighted_importance(Api::Syscall(3)), 0.25);
        assert_eq!(m.unweighted_importance(Api::Syscall(100)), 0.0);
    }

    #[test]
    fn dependents_sorted_by_popularity() {
        let data = fixture();
        let m = Metrics::new(&data);
        let deps = m.dependents(Api::Syscall(0));
        let names: Vec<&str> = deps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["base", "half", "scripted"]);
    }

    #[test]
    fn completeness_counts_supported_mass() {
        let data = fixture();
        let m = Metrics::new(&data);
        // Support syscalls {0,1}: base ✓, scripted ✓, half ✗ (needs 2),
        // rare ✗ (needs 3 and its dep `half` fails anyway).
        let supported: HashSet<u32> = [0u32, 1].into_iter().collect();
        let c = m.syscall_completeness(&supported);
        let expect = (1.0 + 0.2) / (1.0 + 0.5 + 0.01 + 0.2);
        assert!((c - expect).abs() < 1e-12, "{c} vs {expect}");
    }

    #[test]
    fn dependency_failure_propagates() {
        let data = fixture();
        let m = Metrics::new(&data);
        // Support {0,2,3} but not 1: base fails → everything fails through
        // the dependency chain.
        let supported: HashSet<u32> = [0u32, 2, 3].into_iter().collect();
        let c = m.syscall_completeness(&supported);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn full_support_is_total() {
        let data = fixture();
        let m = Metrics::new(&data);
        let supported: HashSet<u32> = (0..10).collect();
        assert!((m.syscall_completeness(&supported) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adding_an_api_never_lowers_completeness() {
        let data = fixture();
        let m = Metrics::new(&data);
        let mut supported: HashSet<u32> = HashSet::new();
        let mut last = m.syscall_completeness(&supported);
        for nr in 0..5 {
            supported.insert(nr);
            let now = m.syscall_completeness(&supported);
            assert!(now >= last);
            last = now;
        }
    }

    /// The pre-condensation closure: iterate OR-propagation over the raw
    /// dependency edges until nothing grows. Kept as the oracle the
    /// single-pass SCC closure is pinned against.
    fn fixpoint_closure_oracle(data: &StudyData) -> Vec<ApiSet> {
        let dep_indices: Vec<Vec<usize>> = data
            .packages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.depends
                    .iter()
                    .filter_map(|dep| data.by_name.get(dep).copied())
                    .filter(|&d| d != i)
                    .collect()
            })
            .collect();
        let mut closed: Vec<ApiSet> = data
            .packages
            .iter()
            .map(|p| p.footprint.apis.clone())
            .collect();
        loop {
            let mut changed = false;
            for (i, deps) in dep_indices.iter().enumerate() {
                for &d in deps {
                    if d == i {
                        continue;
                    }
                    let src = closed[d].clone();
                    changed |= closed[i].union_with(&src);
                }
            }
            if !changed {
                break;
            }
        }
        closed
    }

    /// The pre-condensation completeness: per-package intersection test,
    /// then failure propagation iterated to fixed point, then the
    /// package-order mass sum. The oracle the one-pass path is pinned
    /// against (bit-identically).
    fn fixpoint_completeness_oracle(
        data: &StudyData,
        unsupported: &ApiSet,
    ) -> f64 {
        let total_mass = data.total_mass();
        if total_mass == 0.0 {
            return 0.0;
        }
        let dep_indices: Vec<Vec<usize>> = data
            .packages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.depends
                    .iter()
                    .filter_map(|dep| data.by_name.get(dep).copied())
                    .filter(|&d| d != i)
                    .collect()
            })
            .collect();
        let mut ok: Vec<bool> = data
            .packages
            .iter()
            .map(|p| !p.footprint.apis.intersects(unsupported))
            .collect();
        loop {
            let mut changed = false;
            for i in 0..ok.len() {
                if ok[i] && dep_indices[i].iter().any(|&d| !ok[d]) {
                    ok[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let supported_mass: f64 = data
            .packages
            .iter()
            .zip(&ok)
            .filter(|&(_, &s)| s)
            .map(|(p, _)| p.prob)
            .sum();
        supported_mass / total_mass
    }

    /// A fixture with a dependency cycle (a ↔ b) hanging off the chain,
    /// so the SCC paths see a non-trivial component.
    fn cyclic_fixture() -> StudyData {
        let catalog = Catalog::linux_3_19();
        let mk = |name: &str, prob: f64, apis: &[Api], deps: &[&str]| {
            let mut fp = ApiFootprint::default();
            fp.apis.extend(apis.iter().copied());
            PackageRecord {
                name: name.into(),
                prob,
                install_count: (prob * 1000.0) as u64,
                depends: deps.iter().map(|s| s.to_string()).collect(),
                footprint: fp,
                script_interpreters: vec![],
                file_counts: (1, 0, 0),
                unresolved_syscall_sites: 0,
                skipped_binaries: 0,
                partial_footprint: false,
            }
        };
        let packages = vec![
            mk("a", 0.9, &[Api::Syscall(0)], &["b"]),
            mk("b", 0.8, &[Api::Syscall(1)], &["a", "base"]),
            mk("base", 1.0, &[Api::Syscall(2)], &[]),
            mk("leaf", 0.3, &[Api::Syscall(3)], &["a"]),
        ];
        let by_name = packages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        StudyData {
            catalog,
            packages,
            by_name,
            total_installations: 1000,
            census: MixCensus::default(),
            attribution: Attribution::default(),
            unresolved_syscall_sites: 0,
            resolved_syscall_sites: 100,
            diagnostics: crate::diagnostics::RunDiagnostics::default(),
        }
    }

    #[test]
    fn scc_closure_matches_fixpoint_oracle() {
        for data in [fixture(), cyclic_fixture()] {
            let m = Metrics::new(&data);
            let oracle = fixpoint_closure_oracle(&data);
            for (i, expected) in oracle.iter().enumerate() {
                assert_eq!(
                    m.closed_footprint(i),
                    expected,
                    "closure of package {i} ({})",
                    data.packages[i].name
                );
            }
        }
    }

    #[test]
    fn single_pass_completeness_matches_fixpoint_oracle_bitwise() {
        for data in [fixture(), cyclic_fixture()] {
            let m = Metrics::new(&data);
            // Every subset of the first 4 syscalls, cycles included.
            for mask in 0u32..16 {
                let supported: HashSet<u32> =
                    (0..4).filter(|&n| mask & (1 << n) != 0).collect();
                let unsupported = m.syscall_unsupported_mask(&supported);
                let fast = m.weighted_completeness_masked(&unsupported);
                let oracle = fixpoint_completeness_oracle(&data, &unsupported);
                assert_eq!(
                    fast.to_bits(),
                    oracle.to_bits(),
                    "mask {mask:04b}: {fast} vs {oracle}"
                );
            }
        }
    }

    #[test]
    fn cycle_members_share_their_closure() {
        let data = cyclic_fixture();
        let m = Metrics::new(&data);
        // a and b are mutually dependent: identical closures containing
        // both footprints plus base's.
        assert_eq!(m.closed_footprint(0), m.closed_footprint(1));
        for nr in [0, 1, 2] {
            assert!(m.closed_footprint(0).contains(Api::Syscall(nr)));
        }
        // Supporting everything but syscall 1 fails the whole cycle and
        // leaf, leaving only base.
        let supported: HashSet<u32> = [0u32, 2, 3].into_iter().collect();
        let c = m.syscall_completeness(&supported);
        let expect = 1.0 / (0.9 + 0.8 + 1.0 + 0.3);
        assert!((c - expect).abs() < 1e-12, "{c} vs {expect}");
    }

    #[test]
    fn ranking_is_descending() {
        let data = fixture();
        let m = Metrics::new(&data);
        let ranking = m.importance_ranking(ApiKind::Syscall);
        assert_eq!(ranking.len(), data.catalog.syscalls.len());
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranking[0].0, Api::Syscall(0));
    }
}
