//! Content-addressed incremental analysis cache.
//!
//! The study's headline numbers come from re-running the same static
//! analysis over the same binaries under many configurations: the
//! corruption sweep alone re-analyzes the full corpus at each of its
//! rates even though a 2% fault rate leaves ~98% of binaries
//! byte-identical to the clean baseline. [`AnalysisCache`] makes every
//! multi-configuration run incremental: analysis results are keyed by
//! `(content hash of the bytes, AnalysisOptions fingerprint)` — see
//! [`apistudy_analysis::content_hash`] and
//! [`apistudy_analysis::AnalysisOptions::fingerprint`] — so a sweep point
//! pays only for the binaries its fault plan actually mutated. Because
//! nested fault plans corrupt a selected file identically at every rate
//! that selects it (same salt, same kind), even *corrupted-but-survivable*
//! binaries hit the cache across sweep points.
//!
//! The cache has a second, derived level: *resolved executable
//! footprints*. Resolving an executable against the sealed linker is a
//! pure function of the executable's analysis and of every library its
//! `DT_NEEDED` closure visits, so the pipeline keys the catalog-resolved
//! result by folding the executable's content hash with the content
//! hashes of its closure libraries in search order (see
//! [`fold_hash`] and [`Linker::needed_closure`](apistudy_analysis::Linker::needed_closure)).
//! A sweep point where neither an executable nor anything it links
//! against mutated skips the whole cross-binary resolution, not just the
//! per-binary analysis. This level is memory-only: it is derived data,
//! re-derivable from cached analyses in one warm run.
//!
//! What is deliberately **never** cached:
//!
//! - **errors** — a parse or analysis failure (including a tripped
//!   [`apistudy_elf::ElfError::ResourceLimit`] guard) must be re-derived
//!   and re-classified on every run so the skip ledger stays exact;
//! - **panic-retried successes** — a result obtained after a contained
//!   panic may reflect a transient fault; caching it would freeze a
//!   possibly-wrong answer *and* erase the retry accounting a later run
//!   should reproduce (a retryable panic must stay retryable);
//! - **quarantined packages** — they never produce analyses at all.
//!
//! The map is sharded: readers take a shard's `RwLock` read guard only,
//! so [`par_map_indexed`](crate::pipeline) workers hitting a warm cache
//! never contend on the hot path. Hit/miss/evict counters are lifetime
//! totals (per-run deltas land in
//! [`RunDiagnostics`](crate::diagnostics::RunDiagnostics)).
//!
//! With [`CacheMode::Disk`], the cache additionally persists to plain
//! length-prefixed binary files (no serde) under `target/apistudy-cache/`
//! so repeated `apistudy` CLI invocations warm-start across processes.
//! Each shard persists to its own file, written to a temporary sibling
//! and atomically renamed, and every entry carries a checksum of its
//! payload: a torn or bit-flipped entry is *skipped* at load (its intact
//! length prefix lets the loader step over it) and the valid remainder
//! is salvaged. Only unframeable damage — a bad header, an insane length
//! — abandons one shard file; the others still load. The cache degrades
//! toward cold, never to wrong, and never all-or-nothing.

use std::collections::{BTreeSet, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use apistudy_analysis::{content_hash, BinaryAnalysis, Footprint, FuncInfo};
use apistudy_elf::BinaryClass;

use crate::footprint::ApiFootprint;

/// Number of independently locked shards. A power of two so shard
/// selection is a mask; 16 comfortably exceeds the pipeline's worker cap.
const SHARDS: usize = 16;

/// Per-shard entry cap. 8192 × 16 shards = 128 Ki entries, far above any
/// corpus the synthetic generator produces; the cap exists so a
/// pathological run cannot grow the cache without bound.
const SHARD_CAPACITY: usize = 8192;

/// On-disk format magic + version (bump the version on any layout change;
/// old files are then ignored, not misread). Version 2: per-shard files
/// with per-entry payload checksums.
const MAGIC: &[u8; 4] = b"APSC";
const VERSION: u32 = 2;

/// Sanity bound on one persisted entry's payload length: a corrupted
/// length prefix must not be able to command a giant allocation or swallow
/// the rest of the file as "one entry".
const MAX_DISK_ENTRY: u64 = 1 << 28;

/// Cache operating mode, selected by the `APISTUDY_CACHE` environment
/// variable (`off` | `mem` | `disk`) or the CLI's `--cache` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Bypass entirely: every lookup misses silently, nothing is stored.
    /// The `Default` impl is `Off` so an un-cached run's diagnostics
    /// truthfully report no cache; the *environment* default is
    /// [`CacheMode::Mem`] (see [`CacheMode::from_env`]).
    #[default]
    Off,
    /// In-memory only: one process's runs share results.
    Mem,
    /// In-memory plus a length-prefixed file under the cache directory,
    /// loaded at construction and written by [`AnalysisCache::persist`].
    Disk,
}

impl CacheMode {
    /// Parses a mode name; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(CacheMode::Off),
            "mem" => Some(CacheMode::Mem),
            "disk" => Some(CacheMode::Disk),
            _ => None,
        }
    }

    /// Reads `APISTUDY_CACHE`, defaulting to [`CacheMode::Mem`] when the
    /// variable is unset or unrecognized (sweeps are incremental unless
    /// explicitly opted out).
    pub fn from_env() -> Self {
        std::env::var("APISTUDY_CACHE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(CacheMode::Mem)
    }

    /// A short stable label for footers and logs.
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Mem => "mem",
            CacheMode::Disk => "disk",
        }
    }
}

impl std::fmt::Display for CacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The two-part cache key: what was analyzed, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`content_hash`] of the binary's bytes.
    pub content: u64,
    /// [`AnalysisOptions::fingerprint`](apistudy_analysis::AnalysisOptions::fingerprint)
    /// of the analysis configuration.
    pub options: u64,
}

/// Folds one already-avalanched 64-bit hash into an accumulator — the
/// primitive the footprint-cache key is built from (exec hash, then each
/// closure library's hash in search order). One xxhash-style round: the
/// rotate keeps permuted inputs distinct, the odd multiplier re-mixes.
pub fn fold_hash(acc: u64, x: u64) -> u64 {
    (acc ^ x)
        .rotate_left(31)
        .wrapping_mul(0x9E37_79B1_85EB_CA87)
}

impl CacheKey {
    /// Derives the key for one binary under one (pre-fingerprinted)
    /// option set.
    pub fn for_bytes(bytes: &[u8], options_fingerprint: u64) -> Self {
        Self { content: content_hash(bytes), options: options_fingerprint }
    }

    /// Which shard holds this key. Both halves are already
    /// avalanche-mixed hashes, so folding them is distribution enough.
    fn shard(self) -> usize {
        (self.content ^ self.options.rotate_left(1)) as usize & (SHARDS - 1)
    }
}

/// Lifetime counter snapshot, for footers and CI gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored analysis.
    pub hits: u64,
    /// Lookups that found nothing ([`CacheMode::Off`] counts nothing:
    /// a disabled cache is bypassed, not missed).
    pub misses: u64,
    /// Entries displaced by the per-shard capacity cap (both levels
    /// share the counter).
    pub evictions: u64,
    /// Analysis entries currently resident across all shards.
    pub entries: usize,
    /// Resolved-footprint lookups that hit.
    pub footprint_hits: u64,
    /// Resolved-footprint lookups that missed.
    pub footprint_misses: u64,
    /// Resolved-footprint entries currently resident.
    pub footprint_entries: usize,
}

/// The sharded content-addressed cache. Cheap to share by reference
/// across the pipeline's scoped workers; all interior mutability.
#[derive(Debug)]
pub struct AnalysisCache {
    mode: CacheMode,
    shards: Vec<RwLock<HashMap<CacheKey, Arc<BinaryAnalysis>>>>,
    /// The derived level: resolved executable footprints (memory-only).
    fp_shards: Vec<RwLock<HashMap<CacheKey, Arc<ApiFootprint>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fp_hits: AtomicU64,
    fp_misses: AtomicU64,
    evictions: AtomicU64,
    /// Where [`CacheMode::Disk`] reads and writes its file.
    dir: PathBuf,
}

impl AnalysisCache {
    /// Creates a cache in the given mode. [`CacheMode::Disk`] immediately
    /// tries to warm-start from the on-disk file (missing or corrupt files
    /// are ignored); the directory comes from `APISTUDY_CACHE_DIR` or
    /// defaults to `target/apistudy-cache`.
    pub fn new(mode: CacheMode) -> Self {
        let dir = std::env::var("APISTUDY_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/apistudy-cache"));
        Self::with_dir(mode, dir)
    }

    /// [`Self::new`] with an explicit cache directory (tests point this
    /// at temp dirs).
    pub fn with_dir(mode: CacheMode, dir: PathBuf) -> Self {
        let cache = Self {
            mode,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            fp_shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fp_hits: AtomicU64::new(0),
            fp_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dir,
        };
        if cache.mode == CacheMode::Disk {
            cache.load_disk();
        }
        cache
    }

    /// The cache's operating mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Whether lookups can ever hit (everything but [`CacheMode::Off`]).
    /// The pipeline skips key derivation work when this is false.
    pub fn enabled(&self) -> bool {
        self.mode != CacheMode::Off
    }

    /// The file one shard persists to.
    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("analysis-v2-shard-{shard:02}.bin"))
    }

    /// Every file the disk mode persists to (one per shard), whether or
    /// not they exist yet.
    pub fn disk_paths(&self) -> Vec<PathBuf> {
        (0..SHARDS).map(|s| self.shard_path(s)).collect()
    }

    /// Looks up a stored analysis. Read-lock only — concurrent readers
    /// never block each other. [`CacheMode::Off`] always returns `None`
    /// without touching the counters.
    pub fn get(&self, key: CacheKey) -> Option<Arc<BinaryAnalysis>> {
        if self.mode == CacheMode::Off {
            return None;
        }
        let shard = self.shards[key.shard()]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(&key) {
            Some(ba) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(ba))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an analysis. Callers are responsible for the cacheability
    /// policy (only clean, panic-free successes — see the module docs);
    /// the cache itself only enforces the capacity cap, displacing an
    /// arbitrary resident entry when a shard is full.
    pub fn insert(&self, key: CacheKey, ba: Arc<BinaryAnalysis>) {
        if self.mode == CacheMode::Off {
            return;
        }
        let mut shard = self.shards[key.shard()]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if shard.len() >= SHARD_CAPACITY && !shard.contains_key(&key) {
            if let Some(&victim) = shard.keys().next() {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, ba);
    }

    /// Looks up a resolved executable footprint (the derived level).
    /// Same locking discipline as [`AnalysisCache::get`].
    pub fn get_footprint(&self, key: CacheKey) -> Option<Arc<ApiFootprint>> {
        if self.mode == CacheMode::Off {
            return None;
        }
        let shard = self.fp_shards[key.shard()]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(&key) {
            Some(fp) => {
                self.fp_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(fp))
            }
            None => {
                self.fp_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a resolved executable footprint. Resolution is a pure
    /// function of already-cached-or-validated analyses, so there is no
    /// panic-retry caveat at this level; the capacity cap still applies.
    pub fn insert_footprint(&self, key: CacheKey, fp: Arc<ApiFootprint>) {
        if self.mode == CacheMode::Off {
            return;
        }
        let mut shard = self.fp_shards[key.shard()]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if shard.len() >= SHARD_CAPACITY && !shard.contains_key(&key) {
            if let Some(&victim) = shard.keys().next() {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, fp);
    }

    /// Lifetime counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
            footprint_hits: self.fp_hits.load(Ordering::Relaxed),
            footprint_misses: self.fp_misses.load(Ordering::Relaxed),
            footprint_entries: self
                .fp_shards
                .iter()
                .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
        }
    }

    /// Writes the resident entries to disk ([`CacheMode::Disk`] only; a
    /// no-op returning `Ok(None)` otherwise), one file per shard. Each
    /// file is written to a temporary sibling, fsynced, and renamed into
    /// place, so a crashed writer clobbers nothing — the loader either
    /// sees the previous complete file or the new complete file. Each
    /// entry's payload carries a [`content_hash`] checksum so later
    /// damage is detected per entry, not per file. Returns the cache
    /// directory.
    pub fn persist(&self) -> std::io::Result<Option<PathBuf>> {
        if self.mode != CacheMode::Disk {
            return Ok(None);
        }
        std::fs::create_dir_all(&self.dir)?;
        for (si, shard) in self.shards.iter().enumerate() {
            let mut entries: Vec<(CacheKey, Arc<BinaryAnalysis>)> = {
                let guard = shard.read().unwrap_or_else(|e| e.into_inner());
                guard.iter().map(|(k, v)| (*k, Arc::clone(v))).collect()
            };
            // Deterministic file contents for a given entry set.
            entries.sort_by_key(|(k, _)| (k.content, k.options));

            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&VERSION.to_le_bytes());
            buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (key, ba) in &entries {
                let payload = encode_analysis(ba);
                buf.extend_from_slice(&key.content.to_le_bytes());
                buf.extend_from_slice(&key.options.to_le_bytes());
                buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                buf.extend_from_slice(&content_hash(&payload).to_le_bytes());
                buf.extend_from_slice(&payload);
            }

            let path = self.shard_path(si);
            let tmp = path.with_extension("tmp");
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&buf)?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)?;
        }
        Ok(Some(self.dir.clone()))
    }

    /// Best-effort warm start: decodes every shard file into the shards.
    /// Per-entry salvage: an entry whose checksum fails or whose payload
    /// does not decode is skipped (the length prefix steps over it) and
    /// loading continues; only unframeable damage — short header, insane
    /// length, truncated tail — ends that one file. Other shard files are
    /// unaffected either way.
    fn load_disk(&self) {
        for si in 0..SHARDS {
            let Ok(bytes) = std::fs::read(self.shard_path(si)) else {
                continue;
            };
            self.load_shard_file(&bytes);
        }
    }

    /// Decodes one persisted shard file, salvaging around bad entries.
    fn load_shard_file(&self, bytes: &[u8]) {
        let mut c = Cursor { bytes, at: 0 };
        let Some(magic) = c.take(4) else { return };
        if magic != MAGIC {
            return;
        }
        if c.u32() != Some(VERSION) {
            return;
        }
        let Some(count) = c.u64() else { return };
        for _ in 0..count {
            let Some(content) = c.u64() else { return };
            let Some(options) = c.u64() else { return };
            let Some(len) = c.u64() else { return };
            if len > MAX_DISK_ENTRY {
                // The framing itself is untrustworthy: abandon the file
                // (everything salvaged so far decoded cleanly and stays).
                return;
            }
            let Some(check) = c.u64() else { return };
            let Some(payload) = c.take(len as usize) else { return };
            if content_hash(payload) != check {
                // Damaged entry: the length prefix already stepped past
                // it, so the remainder of the file is still salvageable.
                continue;
            }
            let mut pc = Cursor { bytes: payload, at: 0 };
            let Some(ba) = decode_analysis(&mut pc) else { continue };
            // Trailing garbage inside a checksum-valid payload means the
            // entry was written wrong, not damaged — still skip only it.
            if pc.at != payload.len() {
                continue;
            }
            let key = CacheKey { content, options };
            let mut shard = self.shards[key.shard()]
                .write()
                .unwrap_or_else(|e| e.into_inner());
            if shard.len() < SHARD_CAPACITY {
                shard.insert(key, Arc::new(ba));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Length-prefixed codec. Everything little-endian; strings are u32-length
// UTF-8; collections are u32-count then elements. No serde, no unsafe.
// ---------------------------------------------------------------------------

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Some(u32::from_le_bytes(raw))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Some(u64::from_le_bytes(raw))
    }

    pub(crate) fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

pub(crate) fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_string(buf: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_string(buf, s);
        }
    }
}

fn get_opt_string(c: &mut Cursor<'_>) -> Option<Option<String>> {
    match c.u8()? {
        0 => Some(None),
        1 => Some(Some(c.string()?)),
        _ => None,
    }
}

pub(crate) fn put_count(buf: &mut Vec<u8>, n: usize) {
    buf.extend_from_slice(&(n as u32).to_le_bytes());
}

fn encode_footprint(buf: &mut Vec<u8>, fp: &Footprint) {
    put_count(buf, fp.syscalls.len());
    for &nr in &fp.syscalls {
        buf.extend_from_slice(&nr.to_le_bytes());
    }
    for codes in [&fp.ioctl_codes, &fp.fcntl_codes, &fp.prctl_codes] {
        put_count(buf, codes.len());
        for &code in codes {
            buf.extend_from_slice(&code.to_le_bytes());
        }
    }
    for strings in [&fp.imports, &fp.paths] {
        put_count(buf, strings.len());
        for s in strings {
            put_string(buf, s);
        }
    }
    buf.extend_from_slice(&fp.unresolved_syscall_sites.to_le_bytes());
    buf.extend_from_slice(&fp.unresolved_vectored_sites.to_le_bytes());
}

fn decode_footprint(c: &mut Cursor<'_>) -> Option<Footprint> {
    let mut fp = Footprint::new();
    for _ in 0..c.u32()? {
        fp.syscalls.insert(c.u32()?);
    }
    for codes in [&mut fp.ioctl_codes, &mut fp.fcntl_codes, &mut fp.prctl_codes]
    {
        for _ in 0..c.u32()? {
            codes.insert(c.u64()?);
        }
    }
    for strings in [&mut fp.imports, &mut fp.paths] {
        for _ in 0..c.u32()? {
            strings.insert(c.string()?);
        }
    }
    fp.unresolved_syscall_sites = c.u32()?;
    fp.unresolved_vectored_sites = c.u32()?;
    Some(fp)
}

fn class_tag(class: BinaryClass) -> u8 {
    match class {
        BinaryClass::StaticExec => 0,
        BinaryClass::DynExec => 1,
        BinaryClass::SharedLib => 2,
        BinaryClass::Other => 3,
    }
}

fn class_from_tag(tag: u8) -> Option<BinaryClass> {
    Some(match tag {
        0 => BinaryClass::StaticExec,
        1 => BinaryClass::DynExec,
        2 => BinaryClass::SharedLib,
        3 => BinaryClass::Other,
        _ => return None,
    })
}

/// Encodes one analysis as a self-contained payload.
fn encode_analysis(ba: &BinaryAnalysis) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(class_tag(ba.class));
    put_opt_string(&mut buf, &ba.soname);
    put_count(&mut buf, ba.needed.len());
    for n in &ba.needed {
        put_string(&mut buf, n);
    }
    put_count(&mut buf, ba.funcs.len());
    for f in &ba.funcs {
        put_string(&mut buf, &f.name);
        buf.extend_from_slice(&f.addr.to_le_bytes());
        buf.extend_from_slice(&f.size.to_le_bytes());
        encode_footprint(&mut buf, &f.facts);
        put_count(&mut buf, f.calls.len());
        for &callee in &f.calls {
            buf.extend_from_slice(&(callee as u64).to_le_bytes());
        }
    }
    // Exports sorted by name so equal analyses encode identically.
    let mut exports: Vec<(&String, &usize)> = ba.exports.iter().collect();
    exports.sort();
    put_count(&mut buf, exports.len());
    for (name, &idx) in exports {
        put_string(&mut buf, name);
        buf.extend_from_slice(&(idx as u64).to_le_bytes());
    }
    match ba.entry {
        None => buf.push(0),
        Some(e) => {
            buf.push(1);
            buf.extend_from_slice(&(e as u64).to_le_bytes());
        }
    }
    buf.extend_from_slice(&ba.instructions.to_le_bytes());
    buf
}

/// Decodes one analysis payload; `None` on any structural violation.
fn decode_analysis(c: &mut Cursor<'_>) -> Option<BinaryAnalysis> {
    let class = class_from_tag(c.u8()?)?;
    let soname = get_opt_string(c)?;
    let mut needed = Vec::new();
    for _ in 0..c.u32()? {
        needed.push(c.string()?);
    }
    let n_funcs = c.u32()? as usize;
    let mut funcs = Vec::with_capacity(n_funcs.min(1 << 16));
    for _ in 0..n_funcs {
        let name = c.string()?;
        let addr = c.u64()?;
        let size = c.u64()?;
        let facts = decode_footprint(c)?;
        let mut calls = BTreeSet::new();
        for _ in 0..c.u32()? {
            let callee = c.u64()? as usize;
            if callee >= n_funcs {
                return None;
            }
            calls.insert(callee);
        }
        funcs.push(FuncInfo { name, addr, size, facts, calls });
    }
    let mut exports = HashMap::new();
    for _ in 0..c.u32()? {
        let name = c.string()?;
        let idx = c.u64()? as usize;
        if idx >= n_funcs {
            return None;
        }
        exports.insert(name, idx);
    }
    let entry = match c.u8()? {
        0 => None,
        1 => {
            let e = c.u64()? as usize;
            if e >= n_funcs {
                return None;
            }
            Some(e)
        }
        _ => return None,
    };
    let instructions = c.u64()?;
    Some(BinaryAnalysis {
        class,
        soname,
        needed,
        funcs,
        exports,
        entry,
        instructions,
    })
}

/// Removes the cache files and any stale temp siblings (current sharded
/// layout plus the retired v1 single-file names) — test hygiene and the
/// CLI's future `--cache-clear`, not part of the hot path.
pub fn clear_disk_cache(dir: &Path) -> std::io::Result<()> {
    let mut names = vec![
        "analysis-v1.bin".to_owned(),
        "analysis-v1.tmp".to_owned(),
    ];
    for s in 0..SHARDS {
        names.push(format!("analysis-v2-shard-{s:02}.bin"));
        names.push(format!("analysis-v2-shard-{s:02}.tmp"));
    }
    for name in names {
        let p = dir.join(name);
        match std::fs::remove_file(&p) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_analysis() -> BinaryAnalysis {
        let mut facts = Footprint::new();
        facts.syscalls.extend([1, 2, 60]);
        facts.ioctl_codes.insert(0x5401);
        facts.imports.insert("write".to_owned());
        facts.paths.insert("/proc/self/maps".to_owned());
        facts.unresolved_syscall_sites = 3;
        let f0 = FuncInfo {
            name: "_start".to_owned(),
            addr: 0x1000,
            size: 32,
            facts,
            calls: [1].into_iter().collect(),
        };
        let f1 = FuncInfo {
            name: "helper".to_owned(),
            addr: 0x1040,
            size: 16,
            facts: Footprint::new(),
            calls: BTreeSet::new(),
        };
        BinaryAnalysis {
            class: BinaryClass::DynExec,
            soname: None,
            needed: vec!["libc.so.6".to_owned()],
            funcs: vec![f0, f1],
            exports: [("helper".to_owned(), 1)].into_iter().collect(),
            entry: Some(0),
            instructions: 48,
        }
    }

    #[test]
    fn roundtrip_preserves_analysis_exactly() {
        let ba = sample_analysis();
        let encoded = encode_analysis(&ba);
        let mut c = Cursor { bytes: &encoded, at: 0 };
        let decoded = decode_analysis(&mut c).expect("decodes");
        assert_eq!(c.at, encoded.len(), "payload fully consumed");
        assert_eq!(decoded, ba);
    }

    #[test]
    fn decode_rejects_out_of_range_indices() {
        let mut ba = sample_analysis();
        ba.exports.insert("evil".to_owned(), 99);
        let encoded = encode_analysis(&ba);
        let mut c = Cursor { bytes: &encoded, at: 0 };
        assert!(decode_analysis(&mut c).is_none());
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let encoded = encode_analysis(&sample_analysis());
        for cut in 0..encoded.len() {
            let mut c = Cursor { bytes: &encoded[..cut], at: 0 };
            // Either cleanly rejected, or (never) a full parse of a
            // truncated buffer.
            if let Some(_ba) = decode_analysis(&mut c) {
                panic!("decoded from {cut}/{} bytes", encoded.len());
            }
        }
    }

    #[test]
    fn mem_mode_hits_after_insert_and_counts() {
        let cache = AnalysisCache::with_dir(CacheMode::Mem, PathBuf::new());
        let key = CacheKey { content: 7, options: 9 };
        assert!(cache.get(key).is_none());
        cache.insert(key, Arc::new(sample_analysis()));
        assert!(cache.get(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn footprint_level_hits_after_insert_and_counts() {
        let cache = AnalysisCache::with_dir(CacheMode::Mem, PathBuf::new());
        let key = CacheKey { content: 11, options: 13 };
        assert!(cache.get_footprint(key).is_none());
        let fp = ApiFootprint { unresolved: 7, ..Default::default() };
        cache.insert_footprint(key, Arc::new(fp.clone()));
        assert_eq!(*cache.get_footprint(key).expect("hit"), fp);
        let stats = cache.stats();
        assert_eq!(
            (stats.footprint_hits, stats.footprint_misses, stats.footprint_entries),
            (1, 1, 1)
        );
        // The two levels are independent maps.
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn fold_hash_is_order_sensitive() {
        let (a, b) = (0xDEAD_BEEF_u64, 0x1234_5678_u64);
        let ab = fold_hash(fold_hash(0, a), b);
        let ba = fold_hash(fold_hash(0, b), a);
        assert_ne!(ab, ba, "closure order must matter");
        assert_ne!(fold_hash(ab, a), ab, "folding more input moves the key");
    }

    #[test]
    fn off_mode_stores_and_counts_nothing() {
        let cache = AnalysisCache::with_dir(CacheMode::Off, PathBuf::new());
        let key = CacheKey { content: 7, options: 9 };
        cache.insert(key, Arc::new(sample_analysis()));
        cache.insert_footprint(key, Arc::new(ApiFootprint::default()));
        assert!(cache.get(key).is_none());
        assert!(cache.get_footprint(key).is_none());
        assert!(!cache.enabled());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn eviction_respects_capacity_and_counts() {
        let cache = AnalysisCache::with_dir(CacheMode::Mem, PathBuf::new());
        let ba = Arc::new(sample_analysis());
        // Overfill one shard: keys with identical low bits land together.
        let shard_of = |i: u64| CacheKey { content: i * SHARDS as u64, options: 0 };
        for i in 0..(SHARD_CAPACITY as u64 + 10) {
            cache.insert(shard_of(i), Arc::clone(&ba));
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 10);
        assert_eq!(stats.entries, SHARD_CAPACITY);
    }

    #[test]
    fn disk_roundtrip_warm_starts_a_new_cache() {
        let dir = std::env::temp_dir()
            .join(format!("apistudy-cache-test-{}", std::process::id()));
        clear_disk_cache(&dir).ok();
        let key = CacheKey { content: 0xABCD, options: 0x1234 };
        {
            let cache =
                AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
            cache.insert(key, Arc::new(sample_analysis()));
            let path = cache.persist().expect("persist").expect("disk mode");
            assert!(path.exists());
        }
        let warm = AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
        let hit = warm.get(key).expect("warm start");
        assert_eq!(*hit, sample_analysis());
        // A corrupted shard file must be ignored, not misread.
        let path = warm.shard_path(key.shard());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        let cold = AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
        let _ = cold.get(key); // may or may not hit depending on cut point
        clear_disk_cache(&dir).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn torn_entry_is_skipped_and_the_rest_salvaged() {
        let dir = std::env::temp_dir().join(format!(
            "apistudy-cache-salvage-{}",
            std::process::id()
        ));
        clear_disk_cache(&dir).ok();
        // Five entries, all in shard 0 (content is a multiple of SHARDS,
        // options 0), persisted sorted by content — entry order is known.
        let keys: Vec<CacheKey> = (0..5u64)
            .map(|i| CacheKey { content: i * SHARDS as u64, options: 0 })
            .collect();
        {
            let cache =
                AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
            for &key in &keys {
                cache.insert(key, Arc::new(sample_analysis()));
            }
            cache.persist().expect("persist").expect("disk mode");
        }
        // Flip one byte inside the FIRST entry's payload: file header is
        // 16 bytes (magic 4 + version 4 + count 8), entry framing is 32
        // (content 8 + options 8 + len 8 + check 8).
        let path = dir.join("analysis-v2-shard-00.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16 + 32 + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let warm = AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
        assert!(
            warm.get(keys[0]).is_none(),
            "damaged entry must not be served"
        );
        for &key in &keys[1..] {
            assert!(
                warm.get(key).is_some(),
                "entries after the damage must be salvaged"
            );
        }

        // Truncating mid-entry salvages everything before the tear.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let torn = AnalysisCache::with_dir(CacheMode::Disk, dir.clone());
        for &key in &keys[1..4] {
            assert!(torn.get(key).is_some(), "prefix entries survive");
        }
        assert!(torn.get(keys[4]).is_none(), "torn tail entry is dropped");
        clear_disk_cache(&dir).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(CacheMode::parse("off"), Some(CacheMode::Off));
        assert_eq!(CacheMode::parse(" MEM "), Some(CacheMode::Mem));
        assert_eq!(CacheMode::parse("disk"), Some(CacheMode::Disk));
        assert_eq!(CacheMode::parse("nvme"), None);
        assert_eq!(CacheMode::default(), CacheMode::Off);
    }
}
