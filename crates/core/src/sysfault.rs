//! Deterministic syscall-fault injection: the errno-chaos shim behind
//! [`crate::sys`] and the journal/store append paths.
//!
//! The study measures which syscalls appear in a footprint; what no
//! static footprint can show is which **errno paths** the caller must
//! survive. This module closes that gap for our own daemon: every raw
//! syscall the reactor issues (`epoll_ctl`, `epoll_wait`, `accept4`,
//! `read`, `write`, eventfd traffic) and every durable append the
//! journal and footprint store make can be made to fail — with the
//! exact errno a real kernel would return — at a deterministic,
//! seeded position.
//!
//! Design, mirroring the corpus corruptor (`corpus::fault`):
//!
//! - a [`SysFaultPlan`] is a seed plus [`FaultTrigger`]s: *per-callsite
//!   tag × nth-call* (fire the 3rd `accept4`), *global position* (fire
//!   at the k-th intercepted syscall, whatever it is), or *periodic*
//!   (every n-th call) for sustained chaos;
//! - every injected fault is recorded to a ground-truth **ledger** of
//!   [`SysFaultRecord`]s, so harnesses can verify exactly what fired
//!   where — injected counts are asserted, never guessed;
//! - [`SysFaultKind::Auto`] resolves to a fault *plausible for the
//!   site* (an `accept4` can return `EMFILE`; an `epoll_wait` cannot),
//!   chosen by the plan seed, so an exhaustive "fault at every k" sweep
//!   stays realistic at every position;
//! - **disabled is a no-op**: the hot-path check is one relaxed atomic
//!   load behind `#[inline]`, so the reactor's steady-state perf gates
//!   (`serve_smoke --check`) hold with the shim compiled in.
//!
//! The shim is armed per process ([`install`]) — typically from the
//! `APISTUDY_SYS_FAULTS` environment variable or the `--sys-faults`
//! CLI flag — and torn down with [`clear`], which returns the ledger.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// An errno (or partial-I/O) fault the shim can inject at a callsite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysFaultKind {
    /// `EINTR`: the call was interrupted by a signal; the caller must
    /// retry.
    Eintr,
    /// `EAGAIN`/`EWOULDBLOCK`: the call would block; the caller must
    /// wait for readiness.
    Eagain,
    /// Partial I/O: the read or write transfers a single byte instead
    /// of the full buffer; the caller must continue from the short
    /// position.
    ShortIo,
    /// `EMFILE`: the process is out of file descriptors (`accept4`,
    /// descriptor-creating calls).
    Emfile,
    /// `ENOMEM`: the kernel could not allocate (`epoll_ctl`).
    Enomem,
    /// `ENOSPC`: the device is full. On an append path this tears the
    /// write: a prefix of the buffer lands on disk before the error.
    Enospc,
    /// `EIO`: the device failed. On an fsync path this is "fsyncgate":
    /// the page-cache state is unknowable afterwards, so the consumer
    /// must fail stop.
    Eio,
    /// Resolve to a seeded pick from the callsite's plausible fault set
    /// at injection time (see [`plausible_faults`]).
    Auto,
}

impl SysFaultKind {
    /// Stable label, used by the spec grammar and ledger displays.
    pub fn label(self) -> &'static str {
        match self {
            SysFaultKind::Eintr => "eintr",
            SysFaultKind::Eagain => "eagain",
            SysFaultKind::ShortIo => "short",
            SysFaultKind::Emfile => "emfile",
            SysFaultKind::Enomem => "enomem",
            SysFaultKind::Enospc => "enospc",
            SysFaultKind::Eio => "eio",
            SysFaultKind::Auto => "auto",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "eintr" => SysFaultKind::Eintr,
            "eagain" => SysFaultKind::Eagain,
            "short" => SysFaultKind::ShortIo,
            "emfile" => SysFaultKind::Emfile,
            "enomem" => SysFaultKind::Enomem,
            "enospc" => SysFaultKind::Enospc,
            "eio" => SysFaultKind::Eio,
            "auto" => SysFaultKind::Auto,
            _ => return None,
        })
    }

    /// The errno this fault surfaces as (`ShortIo` and `Auto` have no
    /// errno of their own; they resolve before reaching an error path).
    pub fn errno(self) -> i32 {
        match self {
            SysFaultKind::Eintr => 4,
            SysFaultKind::Eagain => 11,
            SysFaultKind::Emfile => 24,
            SysFaultKind::Enomem => 12,
            SysFaultKind::Enospc => 28,
            SysFaultKind::Eio => 5,
            SysFaultKind::ShortIo | SysFaultKind::Auto => 0,
        }
    }
}

impl std::fmt::Display for SysFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The fault kinds a real kernel could plausibly return at `site`. An
/// [`SysFaultKind::Auto`] trigger resolves through this table, so a
/// global "fault at position k" sweep never injects an impossible errno
/// (an `epoll_wait` returning `EMFILE` would test nothing real).
pub fn plausible_faults(site: &str) -> &'static [SysFaultKind] {
    match site {
        "accept4" => &[
            SysFaultKind::Eintr,
            SysFaultKind::Eagain,
            SysFaultKind::Emfile,
        ],
        "read" | "write" => &[
            SysFaultKind::Eintr,
            SysFaultKind::Eagain,
            SysFaultKind::ShortIo,
        ],
        "read(eventfd)" | "write(eventfd)" => {
            &[SysFaultKind::Eintr, SysFaultKind::Eagain]
        }
        "epoll_wait" => &[SysFaultKind::Eintr],
        "epoll_ctl(ADD)" | "epoll_ctl(MOD)" | "epoll_ctl(DEL)" => {
            &[SysFaultKind::Enomem]
        }
        "epoll_create1" | "eventfd" => &[SysFaultKind::Emfile],
        "journal.write" | "store.write" => &[
            SysFaultKind::Eintr,
            SysFaultKind::ShortIo,
            SysFaultKind::Enospc,
            SysFaultKind::Eio,
        ],
        "journal.fsync" | "store.fsync" => {
            &[SysFaultKind::Eio, SysFaultKind::Enospc]
        }
        _ => &[SysFaultKind::Eintr],
    }
}

/// When a trigger fires, relative to its site filter's call counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireAt {
    /// Fire exactly once, on the `n`-th matching call (1-based).
    Nth(u64),
    /// Fire on every `n`-th matching call (n, 2n, 3n, ...).
    Every(u64),
}

/// One armed fault: where (site filter), what (kind), and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTrigger {
    /// Callsite tag to match, or `None` to match every intercepted
    /// call (the tag is the `SysError::call` name: `"read"`,
    /// `"accept4"`, `"epoll_ctl(ADD)"`, `"journal.write"`, ...).
    pub site: Option<String>,
    /// What to inject; [`SysFaultKind::Auto`] resolves per site.
    pub kind: SysFaultKind,
    /// When to fire, counted over the calls the site filter matches.
    pub at: FireAt,
}

/// A seeded, deterministic fault plan. Install with [`install`]; the
/// same plan against the same call sequence injects identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SysFaultPlan {
    /// Seed for [`SysFaultKind::Auto`] resolution.
    pub seed: u64,
    /// The armed triggers, checked in order (first match fires).
    pub triggers: Vec<FaultTrigger>,
}

impl SysFaultPlan {
    /// An empty plan: intercepts (and counts) every shimmed call but
    /// injects nothing — the harness uses it to measure how many
    /// syscalls a scenario issues before sweeping them.
    pub fn counting() -> Self {
        Self::default()
    }

    /// Adds a once-only trigger on the `nth` call at `site`.
    pub fn at_site(
        mut self,
        site: &str,
        kind: SysFaultKind,
        nth: u64,
    ) -> Self {
        self.triggers.push(FaultTrigger {
            site: Some(site.to_string()),
            kind,
            at: FireAt::Nth(nth.max(1)),
        });
        self
    }

    /// Adds a once-only trigger on the `k`-th intercepted call overall.
    pub fn at_global(mut self, kind: SysFaultKind, k: u64) -> Self {
        self.triggers.push(FaultTrigger {
            site: None,
            kind,
            at: FireAt::Nth(k.max(1)),
        });
        self
    }

    /// Adds a periodic trigger: every `n`-th call matching `site`
    /// (`"*"` for any site).
    pub fn every(mut self, site: &str, kind: SysFaultKind, n: u64) -> Self {
        self.triggers.push(FaultTrigger {
            site: (site != "*").then(|| site.to_string()),
            kind,
            at: FireAt::Every(n.max(1)),
        });
        self
    }

    /// Parses the `APISTUDY_SYS_FAULTS` / `--sys-faults` spec grammar:
    /// semicolon- or comma-separated entries of the form
    /// `site:kind@N` (fire once, on the N-th call at `site`) or
    /// `site:kind@everyN` (fire on every N-th call), where `site` may
    /// be `*` for any callsite and `kind` is one of `eintr`, `eagain`,
    /// `short`, `emfile`, `enomem`, `enospc`, `eio`, `auto`. A
    /// `seed=N` entry seeds `auto` resolution.
    ///
    /// Example: `*:auto@every11;seed=3` — every 11th syscall fails
    /// with a site-plausible errno chosen by seed 3.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = SysFaultPlan::default();
        for entry in spec
            .split([';', ','])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed in {entry:?}"))?;
                continue;
            }
            let (site, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("missing ':' in {entry:?}"))?;
            let (kind, pos) = rest
                .split_once('@')
                .ok_or_else(|| format!("missing '@' in {entry:?}"))?;
            let kind = SysFaultKind::from_label(kind).ok_or_else(|| {
                format!("unknown fault kind {kind:?} in {entry:?}")
            })?;
            let at = match pos.strip_prefix("every") {
                Some(n) => FireAt::Every(
                    n.parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad period in {entry:?}"))?,
                ),
                None => FireAt::Nth(
                    pos.parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad position in {entry:?}"))?,
                ),
            };
            plan.triggers.push(FaultTrigger {
                site: (site != "*").then(|| site.to_string()),
                kind,
                at,
            });
        }
        Ok(plan)
    }
}

/// Ground truth for one injected fault, appended to the ledger at the
/// moment of injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysFaultRecord {
    /// The callsite tag the fault fired at.
    pub site: &'static str,
    /// The fault actually injected ([`SysFaultKind::Auto`] already
    /// resolved; never `Auto` here).
    pub kind: SysFaultKind,
    /// 1-based index of this call among calls at this site.
    pub site_call: u64,
    /// 1-based index of this call among all intercepted calls.
    pub global_call: u64,
}

struct Injector {
    plan: SysFaultPlan,
    /// Calls seen per site tag (site tags are interned `&'static str`s
    /// at every callsite, so pointer-free keys are fine).
    site_counts: std::collections::HashMap<&'static str, u64>,
    global_count: u64,
    fired: Vec<bool>,
    ledger: Vec<SysFaultRecord>,
}

/// Hot-path gate: one relaxed load. False means the shim costs nothing
/// beyond an inlined branch — the "compiled to a no-op" contract.
static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTOR: Mutex<Option<Injector>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<Injector>> {
    match INJECTOR.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    }
}

/// Arms `plan` process-wide, resetting all counters and the ledger.
/// Every shimmed callsite starts consulting it immediately.
pub fn install(plan: SysFaultPlan) {
    let fired = vec![false; plan.triggers.len()];
    *lock() = Some(Injector {
        plan,
        site_counts: std::collections::HashMap::new(),
        global_count: 0,
        fired,
        ledger: Vec::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Arms a plan from the `APISTUDY_SYS_FAULTS` environment variable.
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset or empty, `Err` on a malformed spec.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("APISTUDY_SYS_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(SysFaultPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarms the shim and returns the ground-truth ledger of everything
/// it injected since [`install`].
pub fn clear() -> Vec<SysFaultRecord> {
    ENABLED.store(false, Ordering::SeqCst);
    lock()
        .take()
        .map(|inj| inj.ledger)
        .unwrap_or_default()
}

/// A copy of the ledger so far, without disarming.
pub fn ledger() -> Vec<SysFaultRecord> {
    lock()
        .as_ref()
        .map(|inj| inj.ledger.clone())
        .unwrap_or_default()
}

/// How many injections have fired since [`install`].
pub fn injected_count() -> u64 {
    lock().as_ref().map(|inj| inj.ledger.len() as u64).unwrap_or(0)
}

/// How many shimmed calls have been intercepted since [`install`]
/// (fault-free calls included) — the `k` range an exhaustive sweep
/// iterates over.
pub fn intercepted_count() -> u64 {
    lock().as_ref().map(|inj| inj.global_count).unwrap_or(0)
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed, deterministic.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shim's single entry point, called by every instrumented
/// callsite with its tag. Returns the fault to inject now, or `None`
/// to let the real call proceed. `Auto` is resolved (seeded by plan
/// seed and global position) before returning, and the injection is
/// recorded to the ledger.
#[inline]
pub fn check(site: &'static str) -> Option<SysFaultKind> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: &'static str) -> Option<SysFaultKind> {
    let mut guard = lock();
    let inj = guard.as_mut()?;
    inj.global_count += 1;
    let site_count = {
        let c = inj.site_counts.entry(site).or_insert(0);
        *c += 1;
        *c
    };
    let global_count = inj.global_count;
    let seed = inj.plan.seed;
    let mut hit: Option<SysFaultKind> = None;
    for (i, t) in inj.plan.triggers.iter().enumerate() {
        if let Some(want) = t.site.as_deref() {
            if want != site {
                continue;
            }
        }
        let count = if t.site.is_some() { site_count } else { global_count };
        let fires = match t.at {
            FireAt::Nth(n) => count == n && !inj.fired[i],
            FireAt::Every(n) => count % n == 0,
        };
        if !fires {
            continue;
        }
        if matches!(t.at, FireAt::Nth(_)) {
            inj.fired[i] = true;
        }
        let kind = match t.kind {
            SysFaultKind::Auto => {
                let set = plausible_faults(site);
                set[(mix(seed ^ global_count) % set.len() as u64) as usize]
            }
            k => k,
        };
        hit = Some(kind);
        break;
    }
    let kind = hit?;
    inj.ledger.push(SysFaultRecord {
        site,
        kind,
        site_call: site_count,
        global_call: global_count,
    });
    Some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shim state is process-global; tests that arm it serialize here.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        match GATE.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    #[test]
    fn disabled_shim_is_inert_and_counts_nothing() {
        let _g = gate();
        clear();
        assert_eq!(check("read"), None);
        assert_eq!(intercepted_count(), 0);
        assert!(ledger().is_empty());
    }

    #[test]
    fn nth_trigger_fires_exactly_once_at_its_position() {
        let _g = gate();
        install(SysFaultPlan::default().at_site(
            "read",
            SysFaultKind::Eintr,
            3,
        ));
        assert_eq!(check("read"), None);
        assert_eq!(check("write"), None); // does not advance "read"
        assert_eq!(check("read"), None);
        assert_eq!(check("read"), Some(SysFaultKind::Eintr));
        assert_eq!(check("read"), None); // once only
        let records = clear();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].site, "read");
        assert_eq!(records[0].site_call, 3);
        assert_eq!(records[0].global_call, 4);
    }

    #[test]
    fn global_trigger_counts_across_sites() {
        let _g = gate();
        install(SysFaultPlan::default().at_global(SysFaultKind::Eagain, 2));
        assert_eq!(check("accept4"), None);
        assert_eq!(check("write"), Some(SysFaultKind::Eagain));
        assert_eq!(check("write"), None);
        clear();
    }

    #[test]
    fn periodic_trigger_fires_every_n() {
        let _g = gate();
        install(SysFaultPlan::default().every(
            "write",
            SysFaultKind::ShortIo,
            2,
        ));
        let hits: Vec<bool> =
            (0..6).map(|_| check("write").is_some()).collect();
        assert_eq!(hits, [false, true, false, true, false, true]);
        assert_eq!(clear().len(), 3);
    }

    #[test]
    fn auto_resolves_to_a_site_plausible_fault_deterministically() {
        let _g = gate();
        for _ in 0..2 {
            install(
                SysFaultPlan { seed: 7, ..SysFaultPlan::default() }
                    .every("*", SysFaultKind::Auto, 1),
            );
            for site in
                ["accept4", "epoll_wait", "epoll_ctl(ADD)", "journal.fsync"]
            {
                let got = check(site).expect("every-1 must fire");
                assert!(
                    plausible_faults(site).contains(&got),
                    "{got:?} implausible at {site}"
                );
                assert_ne!(got, SysFaultKind::Auto, "auto must resolve");
            }
        }
        // Same seed, same sequence: the two passes injected identically.
        let second = ledger();
        install(
            SysFaultPlan { seed: 7, ..SysFaultPlan::default() }
                .every("*", SysFaultKind::Auto, 1),
        );
        for site in
            ["accept4", "epoll_wait", "epoll_ctl(ADD)", "journal.fsync"]
        {
            let _ = check(site);
        }
        assert_eq!(ledger(), second);
        clear();
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan =
            SysFaultPlan::parse("read:eintr@3; *:auto@every11; seed=42")
                .expect("parse");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.triggers.len(), 2);
        assert_eq!(plan.triggers[0].site.as_deref(), Some("read"));
        assert_eq!(plan.triggers[0].kind, SysFaultKind::Eintr);
        assert_eq!(plan.triggers[0].at, FireAt::Nth(3));
        assert_eq!(plan.triggers[1].site, None);
        assert_eq!(plan.triggers[1].at, FireAt::Every(11));

        for bad in [
            "read@3",
            "read:bogus@3",
            "read:eintr@0",
            "read:eintr@every0",
            "seed=x",
            "read:eintr",
        ] {
            assert!(
                SysFaultPlan::parse(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
        // Empty spec: a valid counting plan.
        assert_eq!(
            SysFaultPlan::parse("").expect("empty"),
            SysFaultPlan::default()
        );
    }

    #[test]
    fn errnos_match_the_kernel_values() {
        assert_eq!(SysFaultKind::Eintr.errno(), 4);
        assert_eq!(SysFaultKind::Eagain.errno(), 11);
        assert_eq!(SysFaultKind::Emfile.errno(), 24);
        assert_eq!(SysFaultKind::Enomem.errno(), 12);
        assert_eq!(SysFaultKind::Enospc.errno(), 28);
        assert_eq!(SysFaultKind::Eio.errno(), 5);
    }
}
