//! The on-disk footprint store: crash-safe persistence for sharded runs.
//!
//! A paper-scale streaming run ([`crate::stream::study_sharded_stored`])
//! appends each completed *clean* shard's compact per-package results —
//! [`PackageRecord`]s plus attribution fragments — to a [`FootprintStore`].
//! A resumed run replays stored shards at file-read cost and recomputes
//! only the rest, bit-identically (every float crosses the disk as raw
//! bits, every `ApiSet` as interner ids over a fingerprint-pinned
//! universe).
//!
//! The framing is the write-ahead journal's, deliberately: a
//! temp+rename-committed checksummed header binding the file to one
//! [`RunFingerprint`], then length-prefixed records each carrying a
//! 64-bit content checksum, with torn tails recovered by truncating back
//! to the longest valid prefix. No serde. The store has its own magic
//! (`APSF`) and record schema:
//!
//! - **Package** records carry one package's full study output;
//! - a **ShardComplete** marker commits the shard: its geometry, the
//!   shard-level aggregates, and (implicitly, by following them in one
//!   atomic append) the validity of the package records before it.
//!
//! One shard = one `write_all` + fsync of all its package records plus
//! the marker, so a crash can only ever lose whole shards: package
//! records without a trailing marker are discarded on resume. Dirty
//! shards (skips, panics, quarantines) are never written — their fault
//! ledger must be re-derived, exactly like the analysis cache's
//! never-cache-errors policy.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use apistudy_analysis::content_hash;
use apistudy_catalog::{ApiInterner, ApiSet};
use apistudy_corpus::{Interpreter, MixCensus};
use apistudy_elf::BinaryClass;

use crate::cache::{put_count, put_string, Cursor};
use crate::diagnostics::RunDiagnostics;
use crate::footprint::ApiFootprint;
use crate::journal::{JournalError, RunFingerprint, RunKind};
use crate::pipeline::PackageRecord;
use crate::stream::{PackageAttribution, ShardPartial};

/// Store file magic (distinct from the journal's `APSJ`).
const MAGIC: &[u8; 4] = b"APSF";
/// On-disk format version (bump on any layout change).
const VERSION: u32 = 1;
/// Sanity bound on one record's payload.
const MAX_RECORD: usize = 1 << 24;
/// Header layout: magic(4) version(4) kind(1) fingerprint(8) check(8).
const HEADER_LEN: usize = 25;

/// Fixed encoding order for the census's ELF classes.
const ELF_CLASSES: [BinaryClass; 4] = [
    BinaryClass::StaticExec,
    BinaryClass::DynExec,
    BinaryClass::SharedLib,
    BinaryClass::Other,
];
/// Fixed encoding order for the census's interpreters.
const INTERPRETERS: [Interpreter; 6] = [
    Interpreter::Dash,
    Interpreter::Bash,
    Interpreter::Python,
    Interpreter::Perl,
    Interpreter::Ruby,
    Interpreter::Other,
];

/// Replay/append accounting for one stored sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Shards replayed from the store instead of being computed.
    pub replayed_shards: u64,
    /// Shards this run computed.
    pub computed_shards: u64,
    /// Computed shards that were clean and therefore persisted.
    pub stored_shards: u64,
    /// Package records replayed from the store.
    pub replayed_packages: u64,
}

/// The append-only on-disk footprint store. See the module docs for the
/// format; [`JournalError`] is reused as the error type since the
/// failure modes (I/O, bad header, fingerprint mismatch) are identical.
#[derive(Debug)]
pub struct FootprintStore {
    file: File,
    path: PathBuf,
    /// Set when an append fails; every later append returns
    /// [`JournalError::FailStop`] — after a failed write or fsync the
    /// on-disk tail is unknowable, so the handle fail-stops and
    /// recovery is reopening via [`FootprintStore::resume`].
    poisoned: bool,
}

fn header_bytes(fp: &RunFingerprint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(fp.kind.tag());
    buf.extend_from_slice(&fp.fold().to_le_bytes());
    let check = content_hash(&buf);
    buf.extend_from_slice(&check.to_le_bytes());
    buf
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes an [`ApiSet`] as its ascending interner ids. The header
/// fingerprint pins the interner universe, so ids round-trip exactly.
fn put_api_set(buf: &mut Vec<u8>, set: &ApiSet) {
    put_count(buf, set.len());
    for id in set.ids() {
        put_u32(buf, id);
    }
}

/// Decodes an [`ApiSet`]: ids must be strictly ascending (the canonical
/// encoding) and inside the interner universe, else the record is
/// rejected as corrupt.
fn get_api_set(c: &mut Cursor<'_>) -> Option<ApiSet> {
    let interner = ApiInterner::global();
    let universe = interner.universe() as u32;
    let count = c.u32()? as usize;
    if count > MAX_RECORD / 4 {
        return None;
    }
    let mut set = ApiSet::new();
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let id = c.u32()?;
        if id >= universe || prev.is_some_and(|p| id <= p) {
            return None;
        }
        prev = Some(id);
        set.insert(interner.resolve(id));
    }
    Some(set)
}

fn put_nr_list(buf: &mut Vec<u8>, nrs: &[u32]) {
    put_count(buf, nrs.len());
    for &nr in nrs {
        put_u32(buf, nr);
    }
}

fn get_nr_list(c: &mut Cursor<'_>) -> Option<Vec<u32>> {
    let count = c.u32()? as usize;
    if count > MAX_RECORD / 4 {
        return None;
    }
    let mut nrs = Vec::with_capacity(count);
    for _ in 0..count {
        nrs.push(c.u32()?);
    }
    Some(nrs)
}

fn put_string_list(buf: &mut Vec<u8>, strings: &[String]) {
    put_count(buf, strings.len());
    for s in strings {
        put_string(buf, s);
    }
}

fn get_string_list(c: &mut Cursor<'_>) -> Option<Vec<String>> {
    let count = c.u32()? as usize;
    if count > MAX_RECORD / 8 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(c.string()?);
    }
    Some(out)
}

/// One package's full study output: record fields plus the attribution
/// fragment, prefixed with the package's global index so resume can
/// verify shard geometry.
fn encode_package(
    buf: &mut Vec<u8>,
    index: usize,
    rec: &PackageRecord,
    attr: &PackageAttribution,
) {
    buf.push(1);
    put_u32(buf, index as u32);
    put_string(buf, &rec.name);
    put_u64(buf, rec.prob.to_bits());
    put_u64(buf, rec.install_count);
    put_string_list(buf, &rec.depends);
    put_string_list(buf, &rec.script_interpreters);
    put_u32(buf, rec.file_counts.0 as u32);
    put_u32(buf, rec.file_counts.1 as u32);
    put_u32(buf, rec.file_counts.2 as u32);
    put_u32(buf, rec.unresolved_syscall_sites);
    put_u32(buf, rec.skipped_binaries);
    buf.push(u8::from(rec.partial_footprint));
    put_u32(buf, rec.footprint.unresolved);
    put_api_set(buf, &rec.footprint.apis);
    put_count(buf, attr.libs.len());
    for (soname, nrs) in &attr.libs {
        put_string(buf, soname);
        put_nr_list(buf, nrs);
    }
    put_count(buf, attr.execs.len());
    for nrs in &attr.execs {
        put_nr_list(buf, nrs);
    }
}

fn decode_package(
    c: &mut Cursor<'_>,
) -> Option<(usize, PackageRecord, PackageAttribution)> {
    let index = c.u32()? as usize;
    let name = c.string()?;
    let prob = f64::from_bits(c.u64()?);
    let install_count = c.u64()?;
    let depends = get_string_list(c)?;
    let script_interpreters = get_string_list(c)?;
    let file_counts = (
        c.u32()? as usize,
        c.u32()? as usize,
        c.u32()? as usize,
    );
    let unresolved_syscall_sites = c.u32()?;
    let skipped_binaries = c.u32()?;
    let partial_footprint = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let fp_unresolved = c.u32()?;
    let apis = get_api_set(c)?;
    let lib_count = c.u32()? as usize;
    if lib_count > MAX_RECORD / 8 {
        return None;
    }
    let mut libs = Vec::with_capacity(lib_count);
    for _ in 0..lib_count {
        let soname = c.string()?;
        let nrs = get_nr_list(c)?;
        libs.push((soname, nrs));
    }
    let exec_count = c.u32()? as usize;
    if exec_count > MAX_RECORD / 8 {
        return None;
    }
    let mut execs = Vec::with_capacity(exec_count);
    for _ in 0..exec_count {
        execs.push(get_nr_list(c)?);
    }
    Some((
        index,
        PackageRecord {
            name,
            prob,
            install_count,
            depends,
            footprint: ApiFootprint { apis, unresolved: fp_unresolved },
            script_interpreters,
            file_counts,
            unresolved_syscall_sites,
            skipped_binaries,
            partial_footprint,
        },
        PackageAttribution { libs, execs },
    ))
}

/// The shard-commit marker: geometry plus the aggregates that are not
/// recoverable from the package records (resolved sites, the census,
/// analyzed-binary count).
fn encode_marker(buf: &mut Vec<u8>, p: &ShardPartial) {
    buf.push(2);
    put_u32(buf, p.shard as u32);
    put_u32(buf, p.start as u32);
    put_u32(buf, p.records.len() as u32);
    put_u64(buf, p.diagnostics.analyzed_binaries);
    put_u64(buf, p.resolved_sites);
    for class in ELF_CLASSES {
        put_u64(buf, p.census.elf.get(&class).copied().unwrap_or(0) as u64);
    }
    for interp in INTERPRETERS {
        put_u64(
            buf,
            p.census.scripts.get(&interp).copied().unwrap_or(0) as u64,
        );
    }
    put_u64(buf, p.census.unparsable as u64);
}

struct Marker {
    shard: usize,
    start: usize,
    len: usize,
    analyzed_binaries: u64,
    resolved_sites: u64,
    census: MixCensus,
}

fn decode_marker(c: &mut Cursor<'_>) -> Option<Marker> {
    let shard = c.u32()? as usize;
    let start = c.u32()? as usize;
    let len = c.u32()? as usize;
    let analyzed_binaries = c.u64()?;
    let resolved_sites = c.u64()?;
    let mut census = MixCensus::default();
    // Only nonzero counts are inserted, matching `MixCensus::scan` (a
    // present-but-zero entry would break `PartialEq` with a scan).
    for class in ELF_CLASSES {
        let v = c.u64()? as usize;
        if v > 0 {
            census.elf.insert(class, v);
        }
    }
    for interp in INTERPRETERS {
        let v = c.u64()? as usize;
        if v > 0 {
            census.scripts.insert(interp, v);
        }
    }
    census.unparsable = c.u64()? as usize;
    Some(Marker {
        shard,
        start,
        len,
        analyzed_binaries,
        resolved_sites,
        census,
    })
}

/// Frames one payload: length prefix, checksum, bytes.
fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&content_hash(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

impl FootprintStore {
    /// Creates a fresh store bound to `fp`, replacing any existing file
    /// at `path`. Header commit is temp-file + fsync + atomic rename.
    pub fn create(
        path: &Path,
        fp: &RunFingerprint,
    ) -> Result<Self, JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&header_bytes(fp))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file, path: path.to_owned(), poisoned: false })
    }

    /// Opens an existing store for resumption: verifies the header
    /// against `fp`, recovers every complete shard, truncates any torn
    /// or marker-less tail, and returns the recovered partials keyed by
    /// shard index.
    pub fn resume(
        path: &Path,
        fp: &RunFingerprint,
    ) -> Result<(Self, HashMap<usize, ShardPartial>), JournalError> {
        let bytes = std::fs::read(path)?;
        let (partials, valid_end) = Self::recover(&bytes, fp)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if (valid_end as u64) < bytes.len() as u64 {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        drop(file);
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Self { file, path: path.to_owned(), poisoned: false }, partials))
    }

    /// Resumes when `path` holds a compatible store, otherwise creates a
    /// fresh one. Header and fingerprint errors still surface: silently
    /// overwriting a store that belongs to a different run would destroy
    /// resumable work.
    pub fn resume_or_create(
        path: &Path,
        fp: &RunFingerprint,
    ) -> Result<(Self, HashMap<usize, ShardPartial>), JournalError> {
        if path.exists() {
            Self::resume(path, fp)
        } else {
            Ok((Self::create(path, fp)?, HashMap::new()))
        }
    }

    /// Scans `bytes` as a store: header validation, then the longest
    /// prefix of *complete shards*. Package records pending without a
    /// committing marker — a crash mid-shard — are excluded from the
    /// valid prefix and truncated by resume.
    fn recover(
        bytes: &[u8],
        fp: &RunFingerprint,
    ) -> Result<(HashMap<usize, ShardPartial>, usize), JournalError> {
        let mut c = Cursor { bytes, at: 0 };
        let magic = c.take(4).ok_or_else(|| {
            JournalError::Header("file shorter than magic".into())
        })?;
        if magic != MAGIC {
            return Err(JournalError::Header("bad magic".into()));
        }
        match c.u32() {
            Some(VERSION) => {}
            Some(v) => {
                return Err(JournalError::Header(format!(
                    "unsupported version {v} (this build reads {VERSION})"
                )))
            }
            None => {
                return Err(JournalError::Header("truncated header".into()))
            }
        }
        let kind_tag = c
            .u8()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        let found = c
            .u64()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        let check = c
            .u64()
            .ok_or_else(|| JournalError::Header("truncated header".into()))?;
        if content_hash(&bytes[..HEADER_LEN - 8]) != check {
            return Err(JournalError::Header("header checksum mismatch".into()));
        }
        if RunKind::from_tag(kind_tag).is_none() {
            return Err(JournalError::Header(format!(
                "unknown run kind {kind_tag}"
            )));
        }
        let expected = fp.fold();
        if found != expected {
            return Err(JournalError::FingerprintMismatch { expected, found });
        }

        let mut partials = HashMap::new();
        let mut pending: Vec<(usize, PackageRecord, PackageAttribution)> =
            Vec::new();
        // Advances only past committed shards: a marker-less run of
        // package records never extends the valid prefix.
        let mut valid_end = c.at;
        while let Some(len) = c.u32() {
            let len = len as usize;
            if len > MAX_RECORD {
                break;
            }
            let Some(check) = c.u64() else { break };
            let Some(payload) = c.take(len) else { break };
            if content_hash(payload) != check {
                break;
            }
            let mut pc = Cursor { bytes: payload, at: 0 };
            match pc.u8() {
                Some(1) => {
                    let Some(entry) = decode_package(&mut pc) else { break };
                    if pc.at != payload.len() {
                        break;
                    }
                    pending.push(entry);
                }
                Some(2) => {
                    let Some(marker) = decode_marker(&mut pc) else { break };
                    if pc.at != payload.len() {
                        break;
                    }
                    // The marker must commit exactly the pending records,
                    // contiguously from its start index; anything else is
                    // structural corruption and ends the prefix here.
                    let contiguous = pending.len() == marker.len
                        && pending
                            .iter()
                            .enumerate()
                            .all(|(i, (idx, _, _))| *idx == marker.start + i);
                    if !contiguous {
                        break;
                    }
                    let mut records = Vec::with_capacity(marker.len);
                    let mut attributions = Vec::with_capacity(marker.len);
                    let mut unresolved_sites = 0u64;
                    for (_, rec, attr) in pending.drain(..) {
                        unresolved_sites +=
                            u64::from(rec.unresolved_syscall_sites);
                        records.push(rec);
                        attributions.push(attr);
                    }
                    partials.insert(
                        marker.shard,
                        ShardPartial {
                            shard: marker.shard,
                            start: marker.start,
                            records,
                            attributions,
                            census: marker.census,
                            unresolved_sites,
                            resolved_sites: marker.resolved_sites,
                            // Stored shards are clean by policy; the only
                            // diagnostic they carry is the work count.
                            diagnostics: RunDiagnostics {
                                analyzed_binaries: marker.analyzed_binaries,
                                ..RunDiagnostics::default()
                            },
                            replayed: true,
                        },
                    );
                    valid_end = c.at;
                }
                _ => break,
            }
        }
        Ok((partials, valid_end))
    }

    /// Appends one completed clean shard: every package record plus the
    /// committing marker, framed individually but written in a single
    /// `write_all` and fsynced. A crash mid-append tears the tail; resume
    /// discards any package records not followed by their marker, so the
    /// store never resurrects half a shard.
    pub fn append_shard(
        &mut self,
        partial: &ShardPartial,
    ) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::FailStop);
        }
        debug_assert!(
            partial.diagnostics.is_clean(),
            "only clean shards are persisted"
        );
        debug_assert_eq!(partial.records.len(), partial.attributions.len());
        let mut out = Vec::new();
        let mut payload = Vec::new();
        for (i, (rec, attr)) in partial
            .records
            .iter()
            .zip(&partial.attributions)
            .enumerate()
        {
            payload.clear();
            encode_package(&mut payload, partial.start + i, rec, attr);
            frame(&mut out, &payload);
        }
        payload.clear();
        encode_marker(&mut payload, partial);
        frame(&mut out, &payload);
        if let Err(e) =
            crate::sys::file_write_all(&self.file, &out, "store.write")
                .and_then(|()| {
                    crate::sys::file_sync_data(&self.file, "store.fsync")
                })
        {
            self.poisoned = true;
            return Err(JournalError::Io(e));
        }
        Ok(())
    }

    /// Whether an append failure has fail-stopped this handle.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Where the store lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::RunKind;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "apistudy-store-{}-{tag}.apsf",
            std::process::id()
        ))
    }

    fn fp() -> RunFingerprint {
        RunFingerprint {
            kind: RunKind::ShardedPipeline,
            corpus: 0xAAAA,
            options: 0xBBBB,
            catalog: 0xCCCC,
            plan: 0xDDDD,
        }
    }

    fn sample_partial(shard: usize, start: usize, n: usize) -> ShardPartial {
        let interner = ApiInterner::global();
        let records: Vec<PackageRecord> = (0..n)
            .map(|i| {
                let mut apis = ApiSet::new();
                // A few interner ids turned back into APIs — deterministic
                // and within-universe by construction.
                for id in [0u32, 7, 31, (start + i) as u32 % 64] {
                    apis.insert(interner.resolve(id));
                }
                PackageRecord {
                    name: format!("pkg{}", start + i),
                    prob: 0.125 * (i as f64 + 1.0),
                    install_count: 10 * (start + i) as u64,
                    depends: vec!["libc6".into()],
                    footprint: ApiFootprint { apis, unresolved: i as u32 },
                    script_interpreters: vec!["dash".into()],
                    file_counts: (2, 1, 1),
                    unresolved_syscall_sites: i as u32,
                    skipped_binaries: 0,
                    partial_footprint: false,
                }
            })
            .collect();
        let attributions: Vec<PackageAttribution> = (0..n)
            .map(|i| PackageAttribution {
                libs: vec![(format!("libpkg{}.so", start + i), vec![0, 1, 60])],
                execs: vec![vec![2, 3], vec![]],
            })
            .collect();
        let mut census = MixCensus::default();
        census.elf.insert(BinaryClass::DynExec, 2 * n);
        census.elf.insert(BinaryClass::SharedLib, n);
        census.scripts.insert(Interpreter::Dash, n);
        let unresolved_sites =
            records.iter().map(|r| u64::from(r.unresolved_syscall_sites)).sum();
        ShardPartial {
            shard,
            start,
            records,
            attributions,
            census,
            unresolved_sites,
            resolved_sites: 40 * n as u64,
            diagnostics: RunDiagnostics {
                analyzed_binaries: 3 * n as u64,
                ..RunDiagnostics::default()
            },
            replayed: false,
        }
    }

    fn assert_replay_matches(got: &ShardPartial, want: &ShardPartial) {
        assert_eq!(got.shard, want.shard);
        assert_eq!(got.start, want.start);
        assert_eq!(got.records, want.records);
        assert_eq!(got.attributions, want.attributions);
        assert_eq!(got.census, want.census);
        assert_eq!(got.unresolved_sites, want.unresolved_sites);
        assert_eq!(got.resolved_sites, want.resolved_sites);
        assert_eq!(
            got.diagnostics.analyzed_binaries,
            want.diagnostics.analyzed_binaries
        );
        assert!(got.replayed);
    }

    #[test]
    fn shard_roundtrip_is_bit_exact() {
        let path = tmp_path("roundtrip");
        let mut store = FootprintStore::create(&path, &fp()).expect("create");
        let a = sample_partial(0, 0, 3);
        let b = sample_partial(1, 3, 2);
        store.append_shard(&a).expect("append a");
        store.append_shard(&b).expect("append b");
        drop(store);
        let (_, partials) =
            FootprintStore::resume(&path, &fp()).expect("resume");
        assert_eq!(partials.len(), 2);
        assert_replay_matches(&partials[&0], &a);
        assert_replay_matches(&partials[&1], &b);
        // Probabilities round-trip by bit pattern.
        for (got, want) in partials[&0].records.iter().zip(&a.records) {
            assert_eq!(got.prob.to_bits(), want.prob.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_loses_only_the_last_shard() {
        let path = tmp_path("torn");
        let mut store = FootprintStore::create(&path, &fp()).expect("create");
        let a = sample_partial(0, 0, 3);
        let b = sample_partial(1, 3, 2);
        store.append_shard(&a).expect("append a");
        store.append_shard(&b).expect("append b");
        drop(store);
        let full = std::fs::read(&path).unwrap();
        // Tear into the second shard's marker: shard 0 must survive,
        // shard 1 must vanish whole (its package records are discarded
        // along with the torn marker), and the file must be truncated so
        // a re-append continues cleanly.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (mut store, partials) =
            FootprintStore::resume(&path, &fp()).expect("resume");
        assert_eq!(partials.len(), 1, "only the committed shard survives");
        assert_replay_matches(&partials[&0], &a);
        store.append_shard(&b).expect("append after truncate");
        drop(store);
        let (_, partials) =
            FootprintStore::resume(&path, &fp()).expect("resume again");
        assert_eq!(partials.len(), 2);
        assert_replay_matches(&partials[&1], &b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp_path("fpmismatch");
        FootprintStore::create(&path, &fp()).expect("create");
        let other = RunFingerprint { plan: 0x1234, ..fp() };
        match FootprintStore::resume(&path, &other) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        match FootprintStore::resume_or_create(&path, &other) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_magic_is_not_a_store() {
        let path = tmp_path("crossmagic");
        let j = crate::journal::Journal::create(&path, &fp()).expect("create");
        drop(j);
        assert!(matches!(
            FootprintStore::resume(&path, &fp()),
            Err(JournalError::Header(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
