//! The footprint query daemon: a sealed study served over TCP by an
//! epoll reactor.
//!
//! [`Server`] holds the sealed [`Study`] in an immutable [`Arc`]
//! [`Snapshot`] and answers [`proto`](crate::proto) requests through a
//! readiness-driven event loop built on [`crate::sys`] — the modern
//! event-driven syscall surface this study measures (`epoll_create1`,
//! `epoll_wait`, `accept4`, `eventfd2`; see [`self_audit`]). One reactor
//! thread owns every connection's nonblocking state machine
//! (read-accumulate → decode → dispatch → write-drain with partial-write
//! buffering); a fixed worker pool executes the queries, so one expensive
//! `suggest --greedy` can never stall unrelated connections. Responses
//! complete out of order **across** connections but stay strictly ordered
//! **per** connection: a connection has at most one job in flight, and
//! every reply is appended to its write buffer in request order.
//!
//! The robustness contract, unchanged from the thread-per-connection
//! daemon it replaces:
//!
//! - **Untrusted wire.** Every frame is length-capped and checksummed
//!   before decode ([`proto::scan_frame`](crate::proto::scan_frame)
//!   classifies damage the moment it is provable); malformed input earns
//!   a classified [`Response::Err`], never a panic, and frame-level
//!   damage closes the connection (the stream is desynchronized).
//! - **Deadlines everywhere.** Idle, request (slowloris), and write
//!   (backpressure) budgets are absolute per-connection deadlines
//!   enforced by the epoll timeout — no per-connection polling wakeups.
//! - **Admission control.** At the connection cap, new sockets get an
//!   explicit `Busy` reply and are closed; [`Client`] retries with
//!   exponential backoff plus deterministic jitter.
//! - **Graceful drain.** `Shutdown` (or [`Server::shutdown`]) stops the
//!   acceptor, finishes in-flight work at frame boundaries, then returns
//!   from [`Server::wait`].
//! - **Atomic snapshot swap.** `Reload` re-runs the analysis and swaps
//!   the snapshot only under fingerprint compare-and-swap; connections
//!   opened before the swap keep answering from their pinned snapshot.
//!
//! On top of the reactor:
//!
//! - **Pipelined batch frames.** A [`Request::Batch`] bundles up to
//!   [`MAX_BATCH`] sub-requests into one frame, answered in order by one
//!   [`Response::Batch`]; [`Client::call_batch`] and
//!   [`Client::call_pipelined`] amortize framing and syscall cost for
//!   bulk consumers.
//! - **Snapshot-keyed query cache.** Pure queries (importance /
//!   completeness / suggest) are cached inside the [`Snapshot`] keyed by
//!   their canonical request bytes, so the cache is invalidated wholesale
//!   by the reload swap itself — a hit can never outlive its world. Hits
//!   are bit-identical to misses by construction: the cached value *is*
//!   the encoded reply payload. Hit/miss counters surface in
//!   [`ServeStats`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use apistudy_analysis::{content_hash, AnalysisOptions};
use apistudy_catalog::Api;

use crate::cache::fold_hash;
use crate::engine::CompletenessEngine;
use crate::journal::{catalog_fingerprint, corpus_fingerprint};
use crate::metrics::Metrics;
use crate::planner::greedy_suggestions;
use crate::proto::{
    encode_frame, read_frame_by, scan_frame, ErrorCode, FrameError,
    Request, Response, FRAME_HEADER, MAX_BATCH, MAX_FRAME, MAX_PICKS,
};
use crate::study::Study;
use crate::sys::{
    accept_nonblocking, read_fd, write_fd, Epoll, EpollEvent, EventFd,
    SysErrorKind, EPOLLIN, EPOLLOUT,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Admission cap: concurrent connections beyond this get a `Busy`
    /// reply and are closed.
    pub max_conns: usize,
    /// Budget for one request: frame arrival (slowloris bound), reply
    /// write (backpressure bound), and processing.
    pub request_deadline: Duration,
    /// How long a connection may sit idle between requests.
    pub idle_deadline: Duration,
    /// Query worker threads (`0` = auto: available parallelism clamped
    /// to 2..=8). The reactor thread is extra.
    pub workers: usize,
    /// Whether the snapshot-keyed query cache serves pure queries
    /// (importance / completeness / suggest). Off, every query computes.
    pub cache: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            port: 0,
            max_conns: 128,
            request_deadline: Duration::from_secs(5),
            idle_deadline: Duration::from_secs(60),
            workers: 0,
            cache: true,
        }
    }
}

fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

// ---------------------------------------------------------------------------
// Snapshot + query cache
// ---------------------------------------------------------------------------

const CACHE_SHARDS: usize = 16;
/// Per-shard entry cap; a shard at the cap is cleared whole (the cache is
/// a throughput device, not a store — losing it costs recomputation only).
const CACHE_SHARD_CAP: usize = 4096;

/// The snapshot-keyed pure-query cache. Keys are the canonical request
/// encoding (hashed, with a full-bytes equality guard against collisions);
/// values are the encoded reply payload, so a hit returns the exact bytes
/// a miss would compute — bit-identity by construction. Living inside the
/// [`Snapshot`] means the reload swap *is* the invalidation: a new world
/// starts with an empty cache and the old one dies with its snapshot.
/// One cache shard: request-hash → (full request bytes, reply payload).
type CacheShard = HashMap<u64, (Vec<u8>, Vec<u8>)>;

struct QueryCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl QueryCache {
    fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, hash: u64) -> std::sync::MutexGuard<'_, CacheShard> {
        // A poisoned shard still holds valid entries; the panic that
        // poisoned it already surfaced elsewhere.
        match self.shards[(hash as usize) % CACHE_SHARDS].lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    /// The cached reply payload for this canonical request encoding.
    fn get(&self, req_bytes: &[u8]) -> Option<Vec<u8>> {
        let h = content_hash(req_bytes);
        let g = self.shard(h);
        g.get(&h)
            .filter(|(key, _)| key[..] == *req_bytes)
            .map(|(_, payload)| payload.clone())
    }

    fn put(&self, req_bytes: &[u8], payload: &[u8]) {
        let h = content_hash(req_bytes);
        let mut g = self.shard(h);
        if g.len() >= CACHE_SHARD_CAP {
            g.clear();
        }
        g.insert(h, (req_bytes.to_vec(), payload.to_vec()));
    }
}

/// One immutable, shared view of a sealed study. Swapped whole on
/// reload; never mutated (the embedded query cache is interior-locked
/// and memoizes pure functions of the snapshot only).
pub struct Snapshot {
    /// The sealed study (corpus plan + measured dataset).
    pub study: Study,
    /// The metrics index, built **once** at seal time and shared by every
    /// worker thread — a connection's first request no longer waits out a
    /// private index build (the old p99 wart). Results are bit-identical:
    /// the index holds exactly the state a per-connection build derives.
    pub index: std::sync::Arc<crate::metrics::MetricsIndex>,
    /// Identity: corpus ⊕ analysis-options ⊕ catalog fingerprints.
    pub fingerprint: u64,
    /// Monotonic generation, bumped on every successful swap.
    pub generation: u64,
    /// Pure-query memo, scoped to (and invalidated with) this snapshot.
    cache: QueryCache,
}

/// The snapshot identity surfaced in `Pong` and checked by `Reload`:
/// a fold of the corpus, analysis-options, and catalog fingerprints.
pub fn snapshot_fingerprint(study: &Study) -> u64 {
    let mut h = fold_hash(0, corpus_fingerprint(study.repo()));
    h = fold_hash(h, AnalysisOptions::default().fingerprint());
    fold_hash(h, catalog_fingerprint(&study.data().catalog))
}

impl Snapshot {
    /// Seals a study into a snapshot at the given generation, building
    /// the shared metrics index up front.
    pub fn seal(study: Study, generation: u64) -> Self {
        let fingerprint = snapshot_fingerprint(&study);
        let index = std::sync::Arc::new(
            crate::metrics::MetricsIndex::build(study.data()),
        );
        Self {
            study,
            index,
            fingerprint,
            generation,
            cache: QueryCache::new(),
        }
    }

    /// A metrics handle over the snapshot's prebuilt shared index:
    /// construction is a clone of an [`Arc`](std::sync::Arc), not an
    /// index build.
    pub fn metrics(&self) -> Metrics<'_> {
        Metrics::with_index(self.study.data(), self.index.clone())
    }
}

/// A reload recipe: re-runs the analysis and returns the fresh study
/// (typically `Study::run_streamed_stored` against the daemon's boot
/// store, so completed shards replay at file-read cost).
pub type Rebuild = dyn Fn() -> Result<Study, String> + Send + Sync;

/// Monotonic counters describing a server's lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted into the reactor.
    pub connections: u64,
    /// Requests answered (including classified error replies; a batch
    /// frame counts once here, its sub-requests in `batch_requests`).
    pub served: u64,
    /// Connections rejected at the admission cap.
    pub rejected_busy: u64,
    /// Connections closed for frame damage (checksum / oversize /
    /// truncation).
    pub malformed: u64,
    /// Connections closed for blowing an idle, request, or write
    /// deadline.
    pub deadline_closed: u64,
    /// Successful snapshot swaps.
    pub reloads: u64,
    /// Pure queries answered from the snapshot's query cache.
    pub cache_hits: u64,
    /// Pure queries computed (and then cached).
    pub cache_misses: u64,
    /// Batch frames answered.
    pub batch_frames: u64,
    /// Sub-requests answered inside batch frames.
    pub batch_requests: u64,
    /// Classified syscall failures the reactor degraded through instead
    /// of panicking: fatal socket read/write errnos, failed epoll
    /// registrations or interest updates. Each one left the affected
    /// connection closed (or its interest stale until a deadline), never
    /// the reactor down.
    pub io_errors: u64,
    /// Times `accept4` hit fd exhaustion (`EMFILE`/`ENFILE`) and the
    /// reactor paused accepting: the emergency-fd reserve was spent to
    /// shed one queued connection with a classified `Busy`, and
    /// accepting resumed once a connection slot was released.
    pub accept_pauses: u64,
}

#[derive(Default)]
struct StatCells {
    connections: AtomicU64,
    served: AtomicU64,
    rejected_busy: AtomicU64,
    malformed: AtomicU64,
    deadline_closed: AtomicU64,
    reloads: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batch_frames: AtomicU64,
    batch_requests: AtomicU64,
    io_errors: AtomicU64,
    accept_pauses: AtomicU64,
}

// ---------------------------------------------------------------------------
// Pinned-snapshot session holder
// ---------------------------------------------------------------------------

/// The reactor hands a connection's session back and forth between the
/// event loop and worker threads, so the session cannot be a plain
/// borrow-scoped engine the way the thread-per-connection daemon had it —
/// it must own its world. `SessionBox` pins the [`Arc<Snapshot>`] and
/// carries the engine plus the boxed metrics it borrows, with lifetimes
/// erased to `'static`; the declaration-order drop (engine, then metrics,
/// then snapshot) upholds the real lifetimes. This module and `sys` are
/// the crate's only `unsafe` carve-outs.
mod pinned {
    #![allow(unsafe_code)]

    use super::*;
    use crate::pipeline::StudyData;

    pub(super) struct SessionBox {
        engine: CompletenessEngine<'static, 'static>,
        _metrics: Box<Metrics<'static>>,
        _snap: Arc<Snapshot>,
    }

    impl SessionBox {
        pub(super) fn open(
            snap: &Arc<Snapshot>,
            supported: &HashSet<u32>,
        ) -> Self {
            let snap = Arc::clone(snap);
            // SAFETY: `snap` is kept alive in `_snap` for this value's
            // whole life, the Arc heap allocation never moves, and
            // `Snapshot` is immutable — so a `'static`-erased borrow of
            // its study data stays valid until drop, which releases the
            // engine (the borrower) first by declaration order.
            let data: &'static StudyData =
                unsafe { &*(snap.study.data() as *const StudyData) };
            let metrics =
                Box::new(Metrics::with_index(data, snap.index.clone()));
            // SAFETY: the box gives `Metrics` a stable heap address that
            // `_metrics` keeps alive for this value's whole life; only
            // `engine` borrows it, and `engine` drops first.
            let metrics_ref: &'static Metrics<'static> =
                unsafe { &*std::ptr::addr_of!(*metrics) };
            let engine =
                CompletenessEngine::for_syscalls(metrics_ref, supported);
            Self { engine, _metrics: metrics, _snap: snap }
        }

        pub(super) fn engine(
            &mut self,
        ) -> &mut CompletenessEngine<'static, 'static> {
            &mut self.engine
        }
    }
}

use pinned::SessionBox;

// ---------------------------------------------------------------------------
// Reactor ↔ worker plumbing
// ---------------------------------------------------------------------------

/// One unit of worker work: a run of decoded frames from one connection,
/// answered in order on the connection's pinned snapshot. Carrying the
/// session along means session requests execute on whichever worker picks
/// the job up, while per-connection ordering (one job in flight per
/// connection) keeps the session single-threaded.
struct Job {
    token: u64,
    items: Vec<Request>,
    snap: Arc<Snapshot>,
    session: Option<SessionBox>,
}

/// A finished job: the concatenated encoded reply frames, the session
/// handed back, and whether the connection must close after flushing.
struct Done {
    token: u64,
    bytes: Vec<u8>,
    session: Option<SessionBox>,
    close: bool,
}

struct JobQueue {
    queue: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    rebuild: Option<Box<Rebuild>>,
    opts: ServeOptions,
    drain: AtomicBool,
    reloading: AtomicBool,
    stats: StatCells,
    /// The reactor's doorbell: worker completions and drain requests ring
    /// it; epoll reports it readable.
    wakeup: EventFd,
    jobs: Mutex<JobQueue>,
    jobs_cv: Condvar,
    done: Mutex<Vec<Done>>,
}

fn lock_or_inner<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    }
}

impl Shared {
    /// Reads the live snapshot without ever panicking on a poisoned
    /// lock (a poisoned guard still holds a valid `Arc`).
    fn live(&self) -> Arc<Snapshot> {
        match self.snapshot.read() {
            Ok(g) => Arc::clone(&g),
            Err(e) => Arc::clone(&e.into_inner()),
        }
    }

    /// Raises the drain flag and rings the reactor's doorbell (no
    /// self-connect hack: the eventfd is exactly the cross-thread wakeup
    /// primitive this is for).
    fn begin_drain(&self) {
        if !self.drain.swap(true, Ordering::SeqCst) {
            let _ = self.wakeup.signal();
        }
    }

    fn push_done(&self, done: Done) {
        lock_or_inner(&self.done).push(done);
        let _ = self.wakeup.signal();
    }

    fn stats(&self) -> ServeStats {
        let s = &self.stats;
        ServeStats {
            connections: s.connections.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
            malformed: s.malformed.load(Ordering::Relaxed),
            deadline_closed: s.deadline_closed.load(Ordering::Relaxed),
            reloads: s.reloads.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            batch_frames: s.batch_frames.load(Ordering::Relaxed),
            batch_requests: s.batch_requests.load(Ordering::Relaxed),
            io_errors: s.io_errors.load(Ordering::Relaxed),
            accept_pauses: s.accept_pauses.load(Ordering::Relaxed),
        }
    }
}

/// A running query daemon. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds 127.0.0.1, seals `study` into the generation-0 snapshot, and
    /// starts the reactor plus the worker pool. `rebuild` powers `Reload`
    /// requests; without it reloads are refused as `BadRequest`.
    pub fn start(
        study: Study,
        rebuild: Option<Box<Rebuild>>,
        opts: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let wakeup = EventFd::new().map_err(|e| {
            std::io::Error::other(format!("eventfd: {e}"))
        })?;
        let n_workers = resolve_workers(opts.workers);
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(Snapshot::seal(study, 0))),
            rebuild,
            opts,
            drain: AtomicBool::new(false),
            reloading: AtomicBool::new(false),
            stats: StatCells::default(),
            wakeup,
            jobs: Mutex::new(JobQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
            jobs_cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let worker_shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apistudy-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::Builder::new()
            .name("apistudy-reactor".into())
            .spawn(move || reactor_loop(listener, &reactor_shared))?;
        Ok(Self { shared, reactor: Some(reactor), workers, addr })
    }

    /// The bound address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live snapshot's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.shared.live().fingerprint
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// [`self_audit`] of the live snapshot: the daemon's own serving
    /// syscall footprint, measured by the catalog it serves.
    pub fn self_audit(&self) -> Vec<AuditEntry> {
        self_audit(&self.shared.live())
    }

    /// Initiates graceful drain (idempotent): stop accepting, let
    /// in-flight requests finish at frame boundaries.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the server has drained (reactor stopped, workers
    /// done) and returns the final counters.
    pub fn wait(mut self) -> ServeStats {
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // The reactor closes the job queue on exit; restate it here so a
        // crashed reactor can never wedge the workers.
        lock_or_inner(&self.shared.jobs).closed = true;
        self.shared.jobs_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

const TOK_LISTENER: u64 = 0;
const TOK_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
/// Bytes per nonblocking read attempt.
const READ_CHUNK: usize = 16 * 1024;
/// Read-buffer backpressure bound: stop reading a connection whose
/// accumulated-but-unparsed bytes reach two full frames.
const RBUF_CAP: usize = 2 * (MAX_FRAME + FRAME_HEADER);
/// Decoded-but-unanswered request backpressure bound per connection.
const PENDING_CAP: usize = 128;
/// Compact the write buffer once this many flushed bytes accumulate.
const WBUF_COMPACT: usize = 64 * 1024;
/// Most frames handed to one worker job (per-connection order is kept by
/// the one-job-in-flight rule, so the cap only bounds job granularity).
const JOB_CAP: usize = 32;
const EVENTS_CAP: usize = 256;

/// Which budget a connection's (single, absolute) deadline enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DlKind {
    /// Waiting for the next frame to start.
    Idle,
    /// A frame has started arriving (the slowloris bound).
    Request,
    /// A reply is buffered and the peer is not draining it.
    Write,
}

/// A decoded frame waiting its turn, or a ready reply payload (parse
/// errors and inline fast-path answers) waiting to be framed in order.
enum PendingItem {
    Work(Request),
    Reply(Vec<u8>),
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// The world pinned at accept time; reloads never touch it.
    snap: Arc<Snapshot>,
    session: Option<SessionBox>,
    /// Read-accumulate buffer (unparsed wire bytes).
    rbuf: Vec<u8>,
    /// Write-drain buffer; `woff` is the flushed prefix.
    wbuf: Vec<u8>,
    woff: usize,
    pending: VecDeque<PendingItem>,
    /// One worker job in flight (per-connection ordering invariant).
    inflight: bool,
    /// Close once the write buffer drains (damage, Bye, drain notice).
    shut_after_flush: bool,
    /// The interest mask currently registered with epoll.
    interest: u32,
    deadline: Option<(Instant, DlKind)>,
}

impl Conn {
    fn new(stream: TcpStream, snap: Arc<Snapshot>) -> Self {
        Self {
            stream,
            snap,
            session: None,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            pending: VecDeque::new(),
            inflight: false,
            shut_after_flush: false,
            interest: EPOLLIN,
            deadline: None,
        }
    }

    fn has_unsent(&self) -> bool {
        self.woff < self.wbuf.len()
    }

    /// Queue a ready reply payload in request order.
    fn push_reply(&mut self, payload: Vec<u8>) {
        self.pending.push_back(PendingItem::Reply(payload));
    }

    /// The interest mask this state wants. Readable unless closing or
    /// backpressured; writable iff bytes are waiting.
    fn desired_interest(&self) -> u32 {
        let mut want = 0;
        if !self.shut_after_flush
            && self.pending.len() < PENDING_CAP
            && self.rbuf.len() < RBUF_CAP
        {
            want |= EPOLLIN;
        }
        if self.has_unsent() {
            want |= EPOLLOUT;
        }
        want
    }

    /// Re-derives which deadline kind applies and arms it **only on a
    /// kind transition** — deadlines are absolute, so re-arming the same
    /// kind would let steady trickle reset the clock forever.
    fn rearm(&mut self, opts: &ServeOptions) {
        let next = if self.has_unsent() {
            Some((DlKind::Write, opts.request_deadline))
        } else if !self.rbuf.is_empty() {
            Some((DlKind::Request, opts.request_deadline))
        } else if !self.inflight && self.pending.is_empty() {
            Some((DlKind::Idle, opts.idle_deadline))
        } else {
            // A job is in flight with nothing buffered either way: the
            // connection waits on us, not the peer. No deadline.
            None
        };
        match (next, self.deadline) {
            (None, _) => self.deadline = None,
            (Some((kind, _)), Some((_, armed))) if armed == kind => {}
            (Some((kind, budget)), _) => {
                self.deadline = Some((Instant::now() + budget, kind));
            }
        }
    }
}

/// What `service` decided about a connection's fate.
enum Verdict {
    Keep,
    Drop,
}

fn reactor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let run = reactor_run(&listener, shared);
    if run.is_err() {
        // The reactor cannot run (epoll/eventfd registration failed);
        // fall through to the common teardown so workers still exit.
    }
    lock_or_inner(&shared.jobs).closed = true;
    shared.jobs_cv.notify_all();
}

/// The emergency descriptor reserve for `EMFILE` recovery: one spare fd
/// (on `/dev/null`) held open in calm times. When `accept4` reports fd
/// exhaustion the reserve is spent — closed to free a descriptor so one
/// queued connection can still be accepted and told `Busy` — then
/// refilled once the table has room again. Without it, exhaustion means
/// the backlog silently rots: clients see an accepted-but-never-served
/// socket instead of a classified rejection.
struct FdReserve {
    spare: Option<std::fs::File>,
}

impl FdReserve {
    fn new() -> Self {
        Self { spare: std::fs::File::open("/dev/null").ok() }
    }

    /// Frees the spare descriptor (a no-op if already spent).
    fn spend(&mut self) {
        self.spare = None;
    }

    /// Re-opens the spare (a no-op if still held).
    fn refill(&mut self) {
        if self.spare.is_none() {
            self.spare = std::fs::File::open("/dev/null").ok();
        }
    }
}

fn reactor_run(
    listener: &TcpListener,
    shared: &Arc<Shared>,
) -> Result<(), crate::sys::SysError> {
    let ep = Epoll::new()?;
    ep.add(listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)?;
    ep.add(shared.wakeup.raw(), EPOLLIN, TOK_WAKE)?;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = [EpollEvent { events: 0, token: 0 }; EVENTS_CAP];
    let mut ready: Vec<(u64, u32)> = Vec::with_capacity(EVENTS_CAP);
    let mut accepting = true;
    let mut drain_deadline: Option<Instant> = None;
    let mut reserve = FdReserve::new();
    // `Some(n)` while accepting is paused on fd exhaustion: the number
    // of live connections at pause time. Accepting resumes once a
    // connection has closed (fewer live than at the pause), which is
    // what frees a descriptor.
    let mut paused_at: Option<usize> = None;

    loop {
        // Fd-exhaustion recovery: a closed connection released a
        // descriptor, so re-register the listener and refill the spare.
        if let Some(at) = paused_at {
            if accepting && (at == 0 || conns.len() < at) {
                reserve.refill();
                if ep
                    .add(listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)
                    .is_ok()
                {
                    paused_at = None;
                }
            }
        }
        // Drain bookkeeping first: stop accepting, tell quiet
        // connections to go, and bound the whole wind-down.
        if shared.drain.load(Ordering::SeqCst) {
            if drain_deadline.is_none() {
                drain_deadline = Some(
                    Instant::now()
                        + shared.opts.request_deadline
                        + Duration::from_secs(2),
                );
            }
            if accepting {
                let _ = ep.del(listener.as_raw_fd());
                accepting = false;
            }
            let quiet: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    !c.inflight
                        && c.pending.is_empty()
                        && c.rbuf.is_empty()
                        && !c.has_unsent()
                        && !c.shut_after_flush
                })
                .map(|(t, _)| *t)
                .collect();
            for token in quiet {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.push_reply(
                        Response::err(ErrorCode::Draining, "server draining")
                            .encode(),
                    );
                    conn.shut_after_flush = true;
                    service(token, &mut conns, &ep, shared);
                }
            }
            if conns.is_empty() {
                return Ok(());
            }
            if drain_deadline.is_some_and(|at| Instant::now() >= at) {
                return Ok(());
            }
        }

        // The epoll timeout is the nearest armed deadline (or the drain
        // bound) — idle connections cost zero wakeups.
        let now = Instant::now();
        let mut next_at: Option<Instant> = drain_deadline;
        for conn in conns.values() {
            if let Some((at, _)) = conn.deadline {
                next_at =
                    Some(next_at.map_or(at, |cur: Instant| cur.min(at)));
            }
        }
        let mut timeout =
            next_at.map(|at| at.saturating_duration_since(now));
        // Completions may already be queued (pushed between the last
        // delivery and now, or their doorbell ring was swallowed by a
        // spurious eventfd EAGAIN). Don't sleep on work in hand — a
        // connection waiting on its own job carries no deadline, so a
        // lost wakeup here would otherwise strand it forever.
        if !lock_or_inner(&shared.done).is_empty() {
            timeout = Some(Duration::ZERO);
        }
        let batch = ep.wait(&mut events, timeout)?;
        ready.clear();
        ready.extend(batch.iter().map(|e| (e.data(), e.ready())));

        for &(token, mask) in &ready {
            match token {
                TOK_LISTENER => accept_burst(
                    listener,
                    &ep,
                    shared,
                    &mut conns,
                    &mut next_token,
                    accepting && paused_at.is_none(),
                    &mut reserve,
                    &mut paused_at,
                ),
                TOK_WAKE => {
                    let _ = shared.wakeup.drain();
                    // Completions (and the drain flag, handled at loop
                    // top) are what ring the bell.
                }
                _ => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if mask & EPOLLIN != 0 {
                        handle_readable(conn, shared);
                    }
                    // EPOLLOUT / EPOLLERR / EPOLLHUP all resolve inside
                    // service: a flush attempt either progresses or
                    // classifies the failure.
                    service(token, &mut conns, &ep, shared);
                }
            }
        }

        deliver_completions(&mut conns, &ep, shared);
        expire_deadlines(&mut conns, &ep, shared);
    }
}

/// Accept everything queued on the listener (level-triggered epoll would
/// re-report, but draining the backlog per wakeup is cheaper).
#[allow(clippy::too_many_arguments)]
fn accept_burst(
    listener: &TcpListener,
    ep: &Epoll,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    accepting: bool,
    reserve: &mut FdReserve,
    paused_at: &mut Option<usize>,
) {
    if !accepting {
        return;
    }
    loop {
        let stream = match accept_nonblocking(listener) {
            Ok(Some(s)) => s,
            Ok(None) => return,
            Err(e) if e.kind() == SysErrorKind::FdExhausted => {
                // Out of descriptors. Spend the emergency reserve so one
                // queued connection can still be accepted and told Busy
                // (otherwise the backlog rots unanswered), then pause
                // accepting until a live connection closes.
                shared.stats.accept_pauses.fetch_add(1, Ordering::Relaxed);
                reserve.spend();
                if let Ok(Some(s)) = accept_nonblocking(listener) {
                    shared
                        .stats
                        .rejected_busy
                        .fetch_add(1, Ordering::Relaxed);
                    let frame = encode_frame(
                        &Response::err(
                            ErrorCode::Busy,
                            "server out of descriptors",
                        )
                        .encode(),
                    );
                    let _ = write_fd(s.as_raw_fd(), &frame);
                }
                let _ = ep.del(listener.as_raw_fd());
                *paused_at = Some(conns.len());
                return;
            }
            Err(_) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if conns.len() >= shared.opts.max_conns {
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            // Best-effort, nonblocking reject: the frame is far smaller
            // than a fresh socket's send buffer, so one write suffices
            // and a hostile peer cannot stall the reactor.
            let frame = encode_frame(
                &Response::err(ErrorCode::Busy, "connection cap reached")
                    .encode(),
            );
            let _ = write_fd(stream.as_raw_fd(), &frame);
            continue;
        }
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        let mut conn = Conn::new(stream, shared.live());
        if ep.add(conn.stream.as_raw_fd(), EPOLLIN, token).is_err() {
            // Registration failed (ENOMEM): the connection can never be
            // served. Classify the degrade — a best-effort Busy so the
            // peer sees a reason, a counter so the footer shows it.
            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let frame = encode_frame(
                &Response::err(ErrorCode::Busy, "registration failed")
                    .encode(),
            );
            let _ = write_fd(conn.stream.as_raw_fd(), &frame);
            continue;
        }
        conn.rearm(&shared.opts);
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        conns.insert(token, conn);
    }
}

/// Read until the socket would block, then parse whole frames out of the
/// accumulation buffer.
fn handle_readable(conn: &mut Conn, shared: &Arc<Shared>) {
    let fd = conn.stream.as_raw_fd();
    let mut eof = false;
    while !conn.shut_after_flush && conn.rbuf.len() < RBUF_CAP {
        let old = conn.rbuf.len();
        conn.rbuf.resize(old + READ_CHUNK, 0);
        match read_fd(fd, &mut conn.rbuf[old..]) {
            Ok(0) => {
                conn.rbuf.truncate(old);
                eof = true;
                break;
            }
            Ok(n) => conn.rbuf.truncate(old + n),
            Err(e) => {
                conn.rbuf.truncate(old);
                match e.kind() {
                    SysErrorKind::WouldBlock => break,
                    SysErrorKind::Interrupted => continue,
                    kind => {
                        // Peer gone or fatal: nothing to flush to, close.
                        // A disconnect is the peer's business; anything
                        // else is our syscall failing — count it.
                        if kind != SysErrorKind::Disconnected {
                            shared
                                .stats
                                .io_errors
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        conn.shut_after_flush = true;
                        conn.pending.clear();
                        conn.wbuf.clear();
                        conn.woff = 0;
                        return;
                    }
                }
            }
        }
    }
    parse_frames(conn, shared);
    if eof && !conn.shut_after_flush {
        if conn.rbuf.is_empty() {
            // Clean close at a frame boundary: finish queued work, send
            // what is owed, then close silently.
            conn.shut_after_flush = true;
        } else {
            // Mid-frame EOF: a truncated frame.
            shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
            conn.rbuf.clear();
            conn.push_reply(
                Response::err(ErrorCode::BadFrame, "frame damaged").encode(),
            );
            conn.shut_after_flush = true;
        }
    }
}

/// Scan whole frames out of `rbuf`: valid ones become pending work (or a
/// `BadRequest` reply if the intact payload does not decode — framing is
/// still in sync, the connection survives); damage earns a classified
/// reply and closes the connection.
fn parse_frames(conn: &mut Conn, shared: &Arc<Shared>) {
    let mut at = 0usize;
    loop {
        if conn.shut_after_flush {
            break;
        }
        match scan_frame(&conn.rbuf[at..]) {
            Ok(None) => break,
            Ok(Some(total)) => {
                let payload = &conn.rbuf[at + FRAME_HEADER..at + total];
                match Request::decode(payload) {
                    Some(req) => {
                        conn.pending.push_back(PendingItem::Work(req))
                    }
                    None => {
                        shared.stats.served.fetch_add(1, Ordering::Relaxed);
                        conn.push_reply(
                            Response::err(
                                ErrorCode::BadRequest,
                                "undecodable request",
                            )
                            .encode(),
                        );
                    }
                }
                at += total;
            }
            Err(FrameError::TooLarge(n)) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                conn.push_reply(
                    Response::err(
                        ErrorCode::TooLarge,
                        format!("frame length {n} over cap"),
                    )
                    .encode(),
                );
                conn.shut_after_flush = true;
                at = conn.rbuf.len();
            }
            Err(_) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                conn.push_reply(
                    Response::err(ErrorCode::BadFrame, "frame damaged")
                        .encode(),
                );
                conn.shut_after_flush = true;
                at = conn.rbuf.len();
            }
        }
    }
    if at > 0 {
        conn.rbuf.drain(..at);
    }
}

/// Drive one connection forward: answer what can be answered inline,
/// dispatch a job if one is due, flush, update epoll interest, re-arm
/// the deadline, and drop the connection when it is finished or broken.
fn service(
    token: u64,
    conns: &mut HashMap<u64, Conn>,
    ep: &Epoll,
    shared: &Arc<Shared>,
) {
    let Some(conn) = conns.get_mut(&token) else { return };
    let job = pump(token, conn, shared);
    let verdict = flush(conn, shared);
    let gone = match verdict {
        Verdict::Drop => true,
        Verdict::Keep => {
            conn.shut_after_flush
                && !conn.has_unsent()
                && !conn.inflight
                && conn.pending.is_empty()
        }
    };
    if gone {
        let fd = conn.stream.as_raw_fd();
        let _ = ep.del(fd);
        conns.remove(&token);
    } else {
        let want = conn.desired_interest();
        if want != conn.interest {
            match ep.modify(conn.stream.as_raw_fd(), want, token) {
                Ok(()) => conn.interest = want,
                Err(_) => {
                    // Interest unchanged (ENOMEM on epoll_ctl): the old
                    // level-triggered mask still wakes us for what it
                    // covers, and whatever it misses is bounded by the
                    // connection's armed deadline — a counted degrade,
                    // never a reactor failure.
                    shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        conn.rearm(&shared.opts);
    }
    if let Some(job) = job {
        let mut q = lock_or_inner(&shared.jobs);
        if q.closed {
            // Tearing down: the job is dropped; the connection is about
            // to die with the reactor anyway.
            drop(q);
        } else {
            q.queue.push_back(job);
            drop(q);
            shared.jobs_cv.notify_one();
        }
    }
}

/// What the front of the pending queue is, decided without holding a
/// borrow across the mutation that consumes it.
enum Front {
    Empty,
    Reply,
    WorkInline(Vec<u8>),
    WorkJob,
}

/// Move pending items toward the wire in request order: frame ready
/// replies, answer fast-path work inline (`Ping`, cache hits, all-inline
/// batches — no worker round trip, the p50 path), and cut one job for
/// the worker pool at the first request that needs real compute.
fn pump(token: u64, conn: &mut Conn, shared: &Arc<Shared>) -> Option<Job> {
    while !conn.inflight {
        let front = match conn.pending.front() {
            None => Front::Empty,
            Some(PendingItem::Reply(_)) => Front::Reply,
            Some(PendingItem::Work(req)) => {
                match inline_payload(req, &conn.snap, shared) {
                    Some(payload) => Front::WorkInline(payload),
                    None => Front::WorkJob,
                }
            }
        };
        match front {
            Front::Empty => return None,
            Front::Reply => {
                let Some(PendingItem::Reply(payload)) =
                    conn.pending.pop_front()
                else {
                    return None;
                };
                let frame = encode_frame(&payload);
                conn.wbuf.extend_from_slice(&frame);
            }
            Front::WorkInline(payload) => {
                conn.pending.pop_front();
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                let frame = encode_frame(&payload);
                conn.wbuf.extend_from_slice(&frame);
            }
            Front::WorkJob => {
                let mut items = Vec::new();
                while items.len() < JOB_CAP
                    && matches!(
                        conn.pending.front(),
                        Some(PendingItem::Work(_))
                    )
                {
                    let Some(PendingItem::Work(req)) =
                        conn.pending.pop_front()
                    else {
                        break;
                    };
                    items.push(req);
                }
                conn.inflight = true;
                return Some(Job {
                    token,
                    items,
                    snap: Arc::clone(&conn.snap),
                    session: conn.session.take(),
                });
            }
        }
    }
    None
}

/// Write until the socket would block. Compacts the flushed prefix
/// lazily so steady pipelining never memmoves per frame. Short writes
/// (including injected 1-byte ones) advance `woff` and continue — the
/// drain state machine picks up from the exact short position.
fn flush(conn: &mut Conn, shared: &Arc<Shared>) -> Verdict {
    let fd = conn.stream.as_raw_fd();
    while conn.has_unsent() {
        match write_fd(fd, &conn.wbuf[conn.woff..]) {
            Ok(n) => conn.woff += n,
            Err(e) => match e.kind() {
                SysErrorKind::WouldBlock => break,
                SysErrorKind::Interrupted => continue,
                kind => {
                    if kind != SysErrorKind::Disconnected {
                        shared
                            .stats
                            .io_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Verdict::Drop;
                }
            },
        }
    }
    if conn.woff >= WBUF_COMPACT {
        conn.wbuf.drain(..conn.woff);
        conn.woff = 0;
    }
    Verdict::Keep
}

/// Hand each finished job's bytes back to its connection (in request
/// order — one job in flight per connection makes this trivially true)
/// and re-service it, which may immediately cut the next job.
fn deliver_completions(
    conns: &mut HashMap<u64, Conn>,
    ep: &Epoll,
    shared: &Arc<Shared>,
) {
    let dones = std::mem::take(&mut *lock_or_inner(&shared.done));
    for done in dones {
        let Some(conn) = conns.get_mut(&done.token) else {
            // The connection died while its job ran; the session (and
            // its pinned snapshot) drop here.
            continue;
        };
        conn.inflight = false;
        conn.session = done.session;
        conn.wbuf.extend_from_slice(&done.bytes);
        if done.close {
            conn.shut_after_flush = true;
            conn.pending.clear();
        }
        service(done.token, conns, ep, shared);
    }
}

/// Close every connection whose armed deadline has passed, with the same
/// classified farewell the blocking daemon sent (best-effort: the peer
/// blew a deadline, it may not be reading).
fn expire_deadlines(
    conns: &mut HashMap<u64, Conn>,
    ep: &Epoll,
    shared: &Arc<Shared>,
) {
    let now = Instant::now();
    let expired: Vec<(u64, DlKind)> = conns
        .iter()
        .filter_map(|(t, c)| {
            c.deadline
                .and_then(|(at, kind)| (now >= at).then_some((*t, kind)))
        })
        .collect();
    for (token, kind) in expired {
        let Some(conn) = conns.remove(&token) else { continue };
        shared.stats.deadline_closed.fetch_add(1, Ordering::Relaxed);
        let fd = conn.stream.as_raw_fd();
        let _ = ep.del(fd);
        let farewell = match kind {
            DlKind::Idle => Some("idle deadline"),
            DlKind::Request => {
                Some("request deadline while receiving frame")
            }
            // The peer is not draining our bytes; saying goodbye would
            // just be more undrained bytes.
            DlKind::Write => None,
        };
        if let Some(msg) = farewell {
            let frame = encode_frame(
                &Response::err(ErrorCode::Deadline, msg).encode(),
            );
            let _ = write_fd(fd, &frame);
        }
    }
}

// ---------------------------------------------------------------------------
// Query execution: inline fast path + worker pool
// ---------------------------------------------------------------------------

/// Pure queries: deterministic functions of the snapshot alone, so their
/// encoded replies are cacheable (and an `UnknownApi` refusal is just as
/// deterministic as a number).
fn is_pure(req: &Request) -> bool {
    matches!(
        req,
        Request::Importance { .. }
            | Request::Completeness { .. }
            | Request::Suggest { .. }
    )
}

/// The reactor-thread fast path: answers that need no compute and no
/// session — `Ping`, cached pure queries, and batches made entirely of
/// those — skip the worker round trip. Returns the encoded reply payload,
/// or `None` to dispatch a job. Counters are committed only on success,
/// so a half-inlineable batch is not half-counted.
fn inline_payload(
    req: &Request,
    snap: &Arc<Snapshot>,
    shared: &Shared,
) -> Option<Vec<u8>> {
    fn one(req: &Request, snap: &Snapshot, cache_on: bool) -> Option<(Vec<u8>, bool)> {
        match req {
            Request::Ping => Some((pong(snap).encode(), false)),
            r if cache_on && is_pure(r) => {
                snap.cache.get(&r.encode()).map(|payload| (payload, true))
            }
            _ => None,
        }
    }
    let cache_on = shared.opts.cache;
    match req {
        Request::Batch(subs) => {
            let mut payload = vec![9u8];
            payload.extend_from_slice(&(subs.len() as u32).to_le_bytes());
            let mut hits = 0u64;
            for sub in subs {
                let (bytes, hit) = one(sub, snap, cache_on)?;
                payload.extend_from_slice(&bytes);
                hits += u64::from(hit);
            }
            // Whole batch inlined: commit the counters now, atomically
            // with consumption.
            let s = &shared.stats;
            s.batch_frames.fetch_add(1, Ordering::Relaxed);
            s.batch_requests.fetch_add(subs.len() as u64, Ordering::Relaxed);
            s.cache_hits.fetch_add(hits, Ordering::Relaxed);
            Some(payload)
        }
        _ => {
            let (payload, hit) = one(req, snap, cache_on)?;
            if hit {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            Some(payload)
        }
    }
}

fn pong(snap: &Snapshot) -> Response {
    Response::Pong {
        fingerprint: snap.fingerprint,
        generation: snap.generation,
        packages: snap.study.data().packages.len() as u32,
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock_or_inner(&shared.jobs);
            loop {
                if let Some(job) = q.queue.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = match shared.jobs_cv.wait(q) {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
            }
        };
        let Some(job) = job else { return };
        let done = run_job(job, shared);
        shared.push_done(done);
    }
}

/// Answer a job's frames in order, concatenating the encoded reply
/// frames. A `Shutdown` closes the connection and discards any later
/// pipelined frames (matching the blocking daemon, which stopped reading
/// after `Bye`).
fn run_job(job: Job, shared: &Shared) -> Done {
    let Job { token, items, snap, mut session } = job;
    let mut bytes = Vec::new();
    let mut close = false;
    for req in items {
        let (payload, after_close) =
            answer_frame(&req, &snap, &mut session, shared);
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        bytes.extend_from_slice(&encode_frame(&payload));
        if after_close {
            close = true;
            break;
        }
    }
    Done { token, bytes, session, close }
}

/// One top-level frame's encoded reply payload plus a close flag. A
/// batch answers each sub-request in its slot; sub-request failures are
/// classified `Err` slots, never frame failures.
fn answer_frame(
    req: &Request,
    snap: &Arc<Snapshot>,
    session: &mut Option<SessionBox>,
    shared: &Shared,
) -> (Vec<u8>, bool) {
    match req {
        Request::Batch(subs) => {
            let s = &shared.stats;
            s.batch_frames.fetch_add(1, Ordering::Relaxed);
            s.batch_requests.fetch_add(subs.len() as u64, Ordering::Relaxed);
            let mut payload = vec![9u8];
            payload.extend_from_slice(&(subs.len() as u32).to_le_bytes());
            let mut close = false;
            for sub in subs {
                let (bytes, sub_close) =
                    answer_one(sub, snap, session, shared);
                payload.extend_from_slice(&bytes);
                close |= sub_close;
            }
            (payload, close)
        }
        _ => answer_one(req, snap, session, shared),
    }
}

/// One request's encoded reply payload. Pure queries go through the
/// snapshot's cache; the cached value is the encoded payload itself, so
/// hits are bit-identical to misses by construction.
fn answer_one(
    req: &Request,
    snap: &Arc<Snapshot>,
    session: &mut Option<SessionBox>,
    shared: &Shared,
) -> (Vec<u8>, bool) {
    if is_pure(req) {
        if shared.opts.cache {
            let key = req.encode();
            if let Some(payload) = snap.cache.get(&key) {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return (payload, false);
            }
            let payload = pure_answer(req, snap).encode();
            snap.cache.put(&key, &payload);
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            return (payload, false);
        }
        return (pure_answer(req, snap).encode(), false);
    }
    match req {
        Request::Ping => (pong(snap).encode(), false),
        Request::SessionOpen { supported } => {
            if let Some(bad) = first_unknown(snap, supported) {
                return (unknown_api(bad).encode(), false);
            }
            let set: HashSet<u32> = supported.iter().copied().collect();
            let mut sb = SessionBox::open(snap, &set);
            let completeness = sb.engine().completeness();
            *session = Some(sb);
            (
                Response::Session {
                    delta_bits: 0f64.to_bits(),
                    completeness_bits: completeness.to_bits(),
                }
                .encode(),
                false,
            )
        }
        Request::SessionAdd { nr }
        | Request::SessionRemove { nr }
        | Request::SessionProbe { nr } => {
            if let Some(bad) = first_unknown(snap, &[*nr]) {
                return (unknown_api(bad).encode(), false);
            }
            let Some(sb) = session.as_mut() else {
                return (
                    Response::err(
                        ErrorCode::BadRequest,
                        "no session open (send SessionOpen first)",
                    )
                    .encode(),
                    false,
                );
            };
            let api = Api::Syscall(*nr);
            let engine = sb.engine();
            let delta = match req {
                Request::SessionAdd { .. } => engine.add_api(api),
                Request::SessionRemove { .. } => engine.remove_api(api),
                _ => engine.probe_gain(api),
            };
            (
                Response::Session {
                    delta_bits: delta.to_bits(),
                    completeness_bits: engine.completeness().to_bits(),
                }
                .encode(),
                false,
            )
        }
        Request::Reload { expect_fingerprint } => {
            (reload(*expect_fingerprint, shared).encode(), false)
        }
        Request::Shutdown => {
            shared.begin_drain();
            (Response::Bye.encode(), true)
        }
        // Pure requests were handled above; a nested Batch cannot decode,
        // so reaching here is defensive, not reachable from the wire.
        Request::Batch(_) => (
            Response::err(ErrorCode::BadRequest, "nested batch").encode(),
            false,
        ),
        Request::Importance { .. }
        | Request::Completeness { .. }
        | Request::Suggest { .. } => (
            Response::err(ErrorCode::Internal, "pure request fell through")
                .encode(),
            false,
        ),
    }
}

/// Computes a pure query directly against the snapshot (the cache-miss
/// path, and the whole path when the cache is off).
fn pure_answer(req: &Request, snap: &Snapshot) -> Response {
    let metrics = snap.metrics();
    match req {
        Request::Importance { nr } => {
            if let Some(bad) = first_unknown(snap, &[*nr]) {
                return unknown_api(bad);
            }
            let api = Api::Syscall(*nr);
            Response::Importance {
                importance_bits: metrics.importance(api).to_bits(),
                unweighted_bits: metrics.unweighted_importance(api).to_bits(),
            }
        }
        Request::Completeness { supported } => {
            if let Some(bad) = first_unknown(snap, supported) {
                return unknown_api(bad);
            }
            let set: HashSet<u32> = supported.iter().copied().collect();
            Response::Completeness {
                bits: metrics.syscall_completeness(&set).to_bits(),
            }
        }
        Request::Suggest { supported, limit } => {
            if let Some(bad) = first_unknown(snap, supported) {
                return unknown_api(bad);
            }
            let set: HashSet<u32> = supported.iter().copied().collect();
            let n = (*limit as usize).min(MAX_PICKS);
            let picks = greedy_suggestions(&metrics, &set, n)
                .into_iter()
                .map(|(nr, gain)| (nr, gain.to_bits()))
                .collect();
            Response::Suggest { picks }
        }
        _ => Response::err(ErrorCode::Internal, "not a pure request"),
    }
}

/// `Some(nr)` for the first syscall number not in the catalog.
fn first_unknown(snap: &Snapshot, nrs: &[u32]) -> Option<u32> {
    nrs.iter()
        .copied()
        .find(|&nr| snap.study.data().catalog.syscalls.by_number(nr).is_none())
}

fn unknown_api(nr: u32) -> Response {
    Response::err(ErrorCode::UnknownApi, format!("syscall {nr} not in catalog"))
}

/// Clears the one-reload-at-a-time flag on every exit path.
struct ReloadGuard<'a>(&'a AtomicBool);

impl Drop for ReloadGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

fn reload(expect_fingerprint: u64, shared: &Shared) -> Response {
    let Some(rebuild) = shared.rebuild.as_ref() else {
        return Response::err(
            ErrorCode::BadRequest,
            "reload not configured for this server",
        );
    };
    if shared
        .reloading
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Response::err(ErrorCode::Busy, "reload already in progress");
    }
    let _guard = ReloadGuard(&shared.reloading);
    let live = shared.live();
    if live.fingerprint != expect_fingerprint {
        return Response::err(
            ErrorCode::BadRequest,
            format!(
                "fingerprint mismatch: live {:#018x}, expected {:#018x}",
                live.fingerprint, expect_fingerprint
            ),
        );
    }
    let study = match rebuild() {
        Ok(s) => s,
        Err(e) => {
            return Response::err(
                ErrorCode::Internal,
                format!("rebuild failed: {e}"),
            );
        }
    };
    // The swap is the cache invalidation: the fresh snapshot carries a
    // fresh (empty) cache, and the old cache dies with the old world once
    // its pinned connections let go.
    let next = Arc::new(Snapshot::seal(study, live.generation + 1));
    let reply = Response::Reload {
        fingerprint: next.fingerprint,
        generation: next.generation,
    };
    match shared.snapshot.write() {
        Ok(mut g) => *g = next,
        Err(e) => *e.into_inner() = next,
    }
    shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
    reply
}

// ---------------------------------------------------------------------------
// Self-audit: the paper's methodology applied to ourselves
// ---------------------------------------------------------------------------

/// The syscalls the reactor serving path exercises (modern event-driven
/// surface): `eventfd2` is what glibc's flag-bearing `eventfd` wrapper
/// invokes, and `clone` is absent — connections are state machines, not
/// threads.
const REACTOR_SYSCALLS: &[&str] = &[
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "eventfd2",
    "accept4",
    "socket",
    "bind",
    "listen",
    "setsockopt",
    "read",
    "write",
    "close",
];

/// The syscalls the retired thread-per-connection daemon exercised:
/// blocking `accept` plus a `clone` per connection.
const LEGACY_SYSCALLS: &[&str] = &[
    "socket",
    "bind",
    "listen",
    "accept",
    "clone",
    "setsockopt",
    "read",
    "write",
    "close",
];

/// One row of the daemon's syscall self-audit: a syscall the serving
/// path uses, resolved against the snapshot's own catalog and importance
/// metric — the study's methodology applied to the studying daemon.
#[derive(Debug, Clone, Copy)]
pub struct AuditEntry {
    /// Syscall name as audited.
    pub name: &'static str,
    /// Catalog number, if the catalog knows it.
    pub nr: Option<u32>,
    /// The snapshot's API-importance for it, as `f64` bits.
    pub importance_bits: Option<u64>,
    /// Used by the epoll reactor serving path.
    pub reactor: bool,
    /// Used by the retired thread-per-connection serving path.
    pub legacy: bool,
}

/// Audits the daemon's own serving syscall footprint against the served
/// catalog: every syscall the reactor (and the legacy design it
/// replaced) uses, with its catalog number and measured importance.
pub fn self_audit(snap: &Snapshot) -> Vec<AuditEntry> {
    let metrics = snap.metrics();
    let table = &snap.study.data().catalog.syscalls;
    let mut names: Vec<&'static str> = REACTOR_SYSCALLS.to_vec();
    for name in LEGACY_SYSCALLS {
        if !names.contains(name) {
            names.push(name);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let nr = table.by_name(name).map(|def| def.number);
            let importance_bits = nr
                .map(|nr| metrics.importance(Api::Syscall(nr)).to_bits());
            AuditEntry {
                name,
                nr,
                importance_bits,
                reactor: REACTOR_SYSCALLS.contains(&name),
                legacy: LEGACY_SYSCALLS.contains(&name),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Exponential backoff with deterministic jitter for connect and `Busy`
/// retries. Fully seeded: two clients with different seeds desynchronize
/// their retries (the point of jitter) while every run is reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts before giving up.
    pub attempts: u32,
    /// First delay; doubles per attempt.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed (vary per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(1500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

fn xorshift64star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): `base << attempt`
    /// capped at `cap`, plus deterministic jitter in `[0, delay/2)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let half = (exp.as_millis() as u64) / 2;
        if half == 0 {
            return exp;
        }
        let jitter = xorshift64star(
            self.seed ^ (u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F)),
        ) % half;
        exp + Duration::from_millis(jitter)
    }
}

/// Client-side failures, classified.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, send, or receive).
    Io(std::io::Error),
    /// The reply frame was damaged or deadline-expired.
    Frame(FrameError),
    /// The reply frame was intact but not a valid response encoding.
    Protocol,
    /// A batch call was answered with a frame-level classified error
    /// instead of per-slot replies (e.g. `Busy` at admission).
    Rejected(ErrorCode, String),
    /// Retries exhausted; the last failure's description.
    Exhausted(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "reply frame: {e}"),
            ClientError::Protocol => write!(f, "undecodable reply"),
            ClientError::Rejected(code, msg) => {
                write!(f, "batch rejected ({}): {msg}", code.label())
            }
            ClientError::Exhausted(last) => {
                write!(f, "retries exhausted; last failure: {last}")
            }
        }
    }
}

impl ClientError {
    /// Whether reconnect-and-retry can plausibly cure this failure.
    /// Transport trouble (socket errors, the peer gone, a reply that
    /// never arrived, a draining server) is retryable; a **malformed or
    /// classified-fatal reply** (checksum mismatch, oversized frame,
    /// undecodable payload, a batch-level rejection) is not — the
    /// server answered, the answer is wrong, and backoff-and-jitter
    /// would just replay the same failure while hiding it from the
    /// caller.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Frame(e) => e.is_transport(),
            ClientError::Protocol => false,
            ClientError::Rejected(..) => false,
            ClientError::Exhausted(_) => false,
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking daemon client with backoff-and-jitter reconnects. Every
/// call arms a fresh **per-request** absolute deadline — a stalled reply
/// on a reused connection is cut at one request budget, never the idle
/// budget (the old per-connection arming bug).
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    policy: RetryPolicy,
    deadline: Duration,
}

impl Client {
    /// Connects with backoff (a just-restarted or busy daemon is retried
    /// per `policy`). `deadline` bounds every request/reply exchange.
    pub fn connect(
        addr: SocketAddr,
        policy: RetryPolicy,
        deadline: Duration,
    ) -> Result<Self, ClientError> {
        let mut last = String::from("no attempt made");
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match TcpStream::connect_timeout(&addr, deadline) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Self { addr, stream, policy, deadline });
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(ClientError::Exhausted(last))
    }

    fn send_by(
        &self,
        bytes: &[u8],
        deadline_at: Instant,
    ) -> Result<(), ClientError> {
        let remaining = deadline_at
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        self.stream
            .set_write_timeout(Some(remaining))
            .map_err(ClientError::Io)?;
        (&self.stream).write_all(bytes).map_err(ClientError::Io)?;
        (&self.stream).flush().map_err(ClientError::Io)
    }

    fn recv_by(&self, deadline_at: Instant) -> Result<Response, ClientError> {
        let payload = read_frame_by(&self.stream, deadline_at, &|| false)
            .map_err(ClientError::Frame)?;
        Response::decode(&payload).ok_or(ClientError::Protocol)
    }

    /// One request/reply exchange on the current connection, no retry,
    /// under one per-request absolute deadline. Server-side `Err` replies
    /// come back as `Ok(Response::Err { .. })` — the exchange itself
    /// succeeded.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let deadline_at = Instant::now() + self.deadline;
        self.send_by(&encode_frame(&req.encode()), deadline_at)?;
        self.recv_by(deadline_at)
    }

    /// Answers many requests through [`Request::Batch`] frames (chunked
    /// at [`MAX_BATCH`]), returning per-request replies in order. A
    /// frame-level classified error (the whole batch refused) surfaces
    /// as [`ClientError::Rejected`]; per-request failures are `Err`
    /// entries in their slots.
    pub fn call_batch(
        &mut self,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ClientError> {
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(MAX_BATCH) {
            if chunk.len() == 1 {
                out.push(self.call(&chunk[0])?);
                continue;
            }
            match self.call(&Request::Batch(chunk.to_vec()))? {
                Response::Batch(subs) => out.extend(subs),
                Response::Err { code, msg } => {
                    return Err(ClientError::Rejected(code, msg));
                }
                _ => return Err(ClientError::Protocol),
            }
        }
        Ok(out)
    }

    /// Writes every request's frame back-to-back, then reads the replies
    /// in order — pipelining over one connection without batch framing,
    /// so heterogeneous requests (sessions included) amortize round
    /// trips. Each reply gets its own fresh per-request deadline; the
    /// combined write gets one.
    pub fn call_pipelined(
        &mut self,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ClientError> {
        let mut wire = Vec::new();
        for req in reqs {
            wire.extend_from_slice(&encode_frame(&req.encode()));
        }
        self.send_by(&wire, Instant::now() + self.deadline)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.recv_by(Instant::now() + self.deadline)?);
        }
        Ok(out)
    }

    /// [`Client::call`] with reconnect-and-retry on **retryable**
    /// transport failure ([`ClientError::is_retryable`]) and on
    /// `Busy`/`Draining` replies (the admission-control and
    /// crash-restart path). A fatal classified failure — a malformed
    /// reply (checksum, oversize, undecodable) or a batch rejection —
    /// returns immediately: the server answered and retrying the same
    /// wrong answer would only burn the backoff budget. **Not** safe
    /// for session requests — a reconnect silently drops the
    /// per-connection session; callers re-open sessions themselves.
    pub fn call_retrying(
        &mut self,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut last = String::from("no attempt made");
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.delay(attempt - 1));
                if let Ok(stream) =
                    TcpStream::connect_timeout(&self.addr, self.deadline)
                {
                    let _ = stream.set_nodelay(true);
                    self.stream = stream;
                }
            }
            match self.call(req) {
                Ok(Response::Err { code, msg })
                    if matches!(
                        code,
                        ErrorCode::Busy | ErrorCode::Draining
                    ) =>
                {
                    last = format!("{}: {msg}", code.label());
                }
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() => last = e.to_string(),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Exhausted(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame, ReadBudget};
    use apistudy_corpus::Scale;
    use std::io::Read as _;

    fn small_study() -> Study {
        Study::run(Scale { packages: 120, installations: 20_000 }, 3)
    }

    fn test_opts() -> ServeOptions {
        ServeOptions {
            port: 0,
            max_conns: 8,
            request_deadline: Duration::from_secs(2),
            idle_deadline: Duration::from_secs(5),
            ..ServeOptions::default()
        }
    }

    fn client(server: &Server) -> Client {
        Client::connect(
            server.addr(),
            RetryPolicy::default(),
            Duration::from_secs(5),
        )
        .expect("connect")
    }

    #[test]
    fn answers_are_bit_identical_to_direct_library_calls() {
        let study = small_study();
        let reference = small_study();
        let m = reference.metrics();
        let server =
            Server::start(study, None, test_opts()).expect("start");
        let mut c = client(&server);

        let Response::Pong { fingerprint, generation, packages } =
            c.call(&Request::Ping).expect("ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, snapshot_fingerprint(&reference));
        assert_eq!(generation, 0);
        assert_eq!(packages as usize, reference.data().packages.len());

        for nr in [0u32, 1, 2, 60] {
            let Response::Importance { importance_bits, unweighted_bits } =
                c.call(&Request::Importance { nr }).expect("importance")
            else {
                panic!("expected Importance");
            };
            let api = Api::Syscall(nr);
            assert_eq!(importance_bits, m.importance(api).to_bits());
            assert_eq!(
                unweighted_bits,
                m.unweighted_importance(api).to_bits()
            );
        }

        let supported: Vec<u32> =
            m.importance_ranking(apistudy_catalog::ApiKind::Syscall)
                .iter()
                .take(40)
                .filter_map(|(api, _)| match api {
                    Api::Syscall(nr) => Some(*nr),
                    _ => None,
                })
                .collect();
        let set: HashSet<u32> = supported.iter().copied().collect();
        let Response::Completeness { bits } = c
            .call(&Request::Completeness { supported: supported.clone() })
            .expect("completeness")
        else {
            panic!("expected Completeness");
        };
        assert_eq!(bits, m.syscall_completeness(&set).to_bits());

        let Response::Suggest { picks } = c
            .call(&Request::Suggest {
                supported: supported.clone(),
                limit: 5,
            })
            .expect("suggest")
        else {
            panic!("expected Suggest");
        };
        let direct = greedy_suggestions(&m, &set, 5);
        assert_eq!(picks.len(), direct.len());
        for ((nr, bits), (dnr, gain)) in picks.iter().zip(direct.iter()) {
            assert_eq!(nr, dnr);
            assert_eq!(*bits, gain.to_bits());
        }

        // Session: open → probe → add → remove must match a scratch
        // engine op for op, bit for bit.
        let mut engine = CompletenessEngine::for_syscalls(&m, &set);
        let Response::Session { delta_bits, completeness_bits } = c
            .call(&Request::SessionOpen { supported })
            .expect("session open")
        else {
            panic!("expected Session");
        };
        assert_eq!(delta_bits, 0f64.to_bits());
        assert_eq!(completeness_bits, engine.completeness().to_bits());
        let probe_nr = direct.first().map(|(nr, _)| *nr).unwrap_or(231);
        for (req, direct_delta) in [
            (
                Request::SessionProbe { nr: probe_nr },
                engine.probe_gain(Api::Syscall(probe_nr)),
            ),
            (
                Request::SessionAdd { nr: probe_nr },
                engine.add_api(Api::Syscall(probe_nr)),
            ),
            (
                Request::SessionRemove { nr: probe_nr },
                engine.remove_api(Api::Syscall(probe_nr)),
            ),
        ] {
            let Response::Session { delta_bits, completeness_bits } =
                c.call(&req).expect("session op")
            else {
                panic!("expected Session");
            };
            assert_eq!(delta_bits, direct_delta.to_bits(), "{req:?}");
            assert_eq!(
                completeness_bits,
                engine.completeness().to_bits(),
                "{req:?}"
            );
        }

        server.shutdown();
        server.wait();
    }

    #[test]
    fn pipelined_and_batch_replies_are_ordered_and_bit_identical() {
        let study = small_study();
        let reference = small_study();
        let m = reference.metrics();
        let server =
            Server::start(study, None, test_opts()).expect("start");
        let mut c = client(&server);

        // A mixed bundle: cheap and expensive, interleaved, twice (the
        // second pass hits the cache through the same code path).
        let reqs: Vec<Request> = vec![
            Request::Importance { nr: 0 },
            Request::Ping,
            Request::Completeness { supported: vec![0, 1, 60] },
            Request::Suggest { supported: vec![0, 1], limit: 3 },
            Request::Importance { nr: 60 },
        ];
        let expect: Vec<Response> = reqs
            .iter()
            .map(|r| c.call(r).expect("direct call"))
            .collect();
        for pass in 0..2 {
            let batched = c.call_batch(&reqs).expect("batch");
            assert_eq!(batched.len(), reqs.len(), "pass {pass}");
            let piped = c.call_pipelined(&reqs).expect("pipelined");
            assert_eq!(piped.len(), reqs.len(), "pass {pass}");
            for (i, want) in expect.iter().enumerate() {
                assert_eq!(&batched[i], want, "batch slot {i} pass {pass}");
                assert_eq!(&piped[i], want, "pipeline slot {i} pass {pass}");
            }
        }
        // Direct bit-identity of one slot against the library.
        let Response::Importance { importance_bits, .. } = expect[0] else {
            panic!("expected Importance");
        };
        assert_eq!(importance_bits, m.importance(Api::Syscall(0)).to_bits());

        let stats = server.stats();
        assert!(stats.batch_frames >= 2, "batch frames: {stats:?}");
        assert!(
            stats.batch_requests >= 2 * reqs.len() as u64,
            "batch requests: {stats:?}"
        );
        server.shutdown();
        server.wait();
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let study = small_study();
        let server =
            Server::start(study, None, test_opts()).expect("start");
        let mut c = client(&server);
        let req = Request::Suggest { supported: vec![0, 1, 60], limit: 4 };
        let cold = c.call(&req).expect("cold");
        let warm = c.call(&req).expect("warm");
        assert_eq!(cold, warm, "hit must be bit-identical to miss");
        assert_eq!(cold.encode(), warm.encode());
        let stats = server.stats();
        assert!(stats.cache_misses >= 1, "stats: {stats:?}");
        assert!(stats.cache_hits >= 1, "stats: {stats:?}");
        server.shutdown();
        server.wait();

        // The same queries with the cache off produce the same bytes and
        // never touch the counters.
        let opts = ServeOptions { cache: false, ..test_opts() };
        let server =
            Server::start(small_study(), None, opts).expect("start");
        let mut c = client(&server);
        let uncached = c.call(&req).expect("uncached");
        assert_eq!(uncached, cold, "cache off must not change answers");
        let again = c.call(&req).expect("uncached again");
        assert_eq!(again, cold);
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 0, "stats: {stats:?}");
        assert_eq!(stats.cache_misses, 0, "stats: {stats:?}");
        server.shutdown();
        server.wait();
    }

    #[test]
    fn client_deadline_is_armed_per_request() {
        // A server that accepts and then never replies: each call must
        // be cut at its own request deadline, not the connection's
        // accumulated idle budget (the old per-connection arming bug).
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let hold = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            // Swallow everything; never write back.
            let mut sink = [0u8; 1024];
            while let Ok(n) = s.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        });
        let mut c = Client::connect(
            addr,
            RetryPolicy { attempts: 1, ..RetryPolicy::default() },
            Duration::from_millis(300),
        )
        .expect("connect");
        for round in 0..2 {
            let t0 = Instant::now();
            let err = c.call(&Request::Ping).expect_err("no reply must fail");
            let took = t0.elapsed();
            assert!(
                matches!(err, ClientError::Frame(_)),
                "round {round}: {err:?}"
            );
            assert!(
                took >= Duration::from_millis(200),
                "round {round} cut too early: {took:?}"
            );
            assert!(
                took < Duration::from_millis(1500),
                "round {round} waited past its own budget: {took:?}"
            );
        }
        drop(c);
        let _ = hold.join();
    }

    #[test]
    fn self_audit_reports_reactor_and_legacy_sets() {
        let snap = Snapshot::seal(small_study(), 0);
        let audit = self_audit(&snap);
        let find = |name: &str| {
            audit
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} missing from audit"))
        };
        let epoll = find("epoll_create1");
        assert!(epoll.reactor && !epoll.legacy);
        assert!(epoll.nr.is_some(), "epoll_create1 must resolve");
        let accept = find("accept");
        assert!(accept.legacy && !accept.reactor);
        let read = find("read");
        assert!(read.reactor && read.legacy);
        // Every reactor syscall is in the catalog the daemon serves —
        // the study can measure its own server.
        for entry in audit.iter().filter(|e| e.reactor) {
            assert!(
                entry.nr.is_some() && entry.importance_bits.is_some(),
                "{} unresolved",
                entry.name
            );
        }
    }

    #[test]
    fn misuse_gets_classified_errors_not_panics() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");
        let mut c = client(&server);

        // Unknown syscall number.
        let resp = c.call(&Request::Importance { nr: 99_999 }).expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::UnknownApi, .. }
        ));
        // Session op without a session.
        let resp = c.call(&Request::SessionAdd { nr: 0 }).expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Reload on a server with no rebuild recipe.
        let resp = c
            .call(&Request::Reload { expect_fingerprint: 0 })
            .expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Intact frame, garbage payload: classified reply, connection
        // survives.
        write_frame(&c.stream, &[0xFFu8, 1, 2, 3], Duration::from_secs(2))
            .expect("write");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::BadRequest, .. })
        ));
        let resp = c.call(&Request::Ping).expect("still alive");
        assert!(matches!(resp, Response::Pong { .. }));

        server.shutdown();
        server.wait();
    }

    #[test]
    fn damaged_frames_get_classified_replies_and_close() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");

        // Checksum damage.
        let c = client(&server);
        let mut frame = encode_frame(&Request::Ping.encode());
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        (&c.stream).write_all(&frame).expect("send");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::BadFrame, .. })
        ));

        // Oversized length prefix.
        let c = client(&server);
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        (&c.stream).write_all(&frame).expect("send");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::TooLarge, .. })
        ));

        assert!(server.stats().malformed >= 2);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn slowloris_is_cut_at_the_request_deadline() {
        let mut opts = test_opts();
        opts.request_deadline = Duration::from_millis(300);
        let server =
            Server::start(small_study(), None, opts).expect("start");
        let c = client(&server);
        let frame = encode_frame(&Request::Ping.encode());
        // Dribble one byte, then stall past the request deadline.
        (&c.stream).write_all(&frame[..1]).expect("first byte");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(5),
                request: Duration::from_secs(5),
            },
            &|| false,
        )
        .expect("deadline reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::Deadline, .. })
        ));
        assert!(server.stats().deadline_closed >= 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn admission_control_rejects_with_busy_and_client_retries() {
        let mut opts = test_opts();
        opts.max_conns = 1;
        let server =
            Server::start(small_study(), None, opts).expect("start");
        // First client occupies the only slot.
        let mut first = client(&server);
        assert!(matches!(
            first.call(&Request::Ping).expect("ping"),
            Response::Pong { .. }
        ));
        // Second connection is told Busy explicitly.
        let mut second = Client::connect(
            server.addr(),
            RetryPolicy {
                attempts: 4,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(40),
                seed: 7,
            },
            Duration::from_secs(2),
        )
        .expect("tcp connect");
        let payload = read_frame(
            &second.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("busy reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::Busy, .. })
        ));
        // After the first client leaves, retrying succeeds.
        drop(first);
        let resp = second
            .call_retrying(&Request::Ping)
            .expect("retry after slot frees");
        assert!(matches!(resp, Response::Pong { .. }));
        assert!(server.stats().rejected_busy >= 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn reload_swaps_atomically_and_pins_open_connections() {
        let study = small_study();
        let boot_fp = snapshot_fingerprint(&study);
        // The rebuild recipe returns a *different* corpus, so the swap is
        // observable: fingerprints differ across generations.
        let rebuild: Box<Rebuild> = Box::new(|| {
            Ok(Study::run(
                Scale { packages: 130, installations: 25_000 },
                23,
            ))
        });
        let server = Server::start(study, Some(rebuild), test_opts())
            .expect("start");
        let mut pinned = client(&server);
        let Response::Pong { fingerprint: old_fp, .. } =
            pinned.call(&Request::Ping).expect("ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(old_fp, boot_fp);

        let mut admin = Client::connect(
            server.addr(),
            RetryPolicy::default(),
            Duration::from_secs(30),
        )
        .expect("connect admin");
        // Wrong expected fingerprint: refused, nothing swapped.
        let resp = admin
            .call(&Request::Reload { expect_fingerprint: old_fp ^ 1 })
            .expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Correct fingerprint: swapped, generation bumps.
        let Response::Reload { fingerprint: new_fp, generation } = admin
            .call(&Request::Reload { expect_fingerprint: old_fp })
            .expect("reload")
        else {
            panic!("expected Reload");
        };
        assert_ne!(new_fp, old_fp);
        assert_eq!(generation, 1);

        // The connection opened before the swap still answers from its
        // pinned snapshot; a fresh connection sees the new world.
        let Response::Pong { fingerprint, generation, .. } =
            pinned.call(&Request::Ping).expect("pinned ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, old_fp);
        assert_eq!(generation, 0);
        let mut fresh = client(&server);
        let Response::Pong { fingerprint, generation, .. } =
            fresh.call(&Request::Ping).expect("fresh ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, new_fp);
        assert_eq!(generation, 1);
        assert_eq!(server.stats().reloads, 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_request_drains_gracefully() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");
        let mut c = client(&server);
        let resp = c.call(&Request::Shutdown).expect("shutdown");
        assert!(matches!(resp, Response::Bye));
        // wait() must return (bounded drain), and the port must refuse
        // new work afterwards.
        let stats = server.wait();
        assert!(stats.served >= 1);
    }

    #[test]
    fn backoff_delays_grow_and_jitter_deterministically() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(400),
            seed: 42,
        };
        let d: Vec<Duration> = (0..5).map(|a| p.delay(a)).collect();
        // Monotone envelope: each delay's floor doubles until the cap.
        assert!(d[1] >= Duration::from_millis(20));
        assert!(d[2] >= Duration::from_millis(40));
        assert!(d[4] <= Duration::from_millis(400 + 200));
        // Deterministic: same policy, same delays.
        let again: Vec<Duration> = (0..5).map(|a| p.delay(a)).collect();
        assert_eq!(d, again);
        // Different seeds desynchronize.
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(
            (0..5).map(|a| p.delay(a)).collect::<Vec<_>>(),
            (0..5).map(|a| q.delay(a)).collect::<Vec<_>>()
        );
    }
}
